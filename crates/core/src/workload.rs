//! Workload-level optimization: all statements in ONE e-graph.
//!
//! The per-statement pipeline ([`Optimizer::optimize`]) pays a full
//! translate → saturate → extract → lower pass per statement and cannot
//! see sharing *across* statements — PNMF's `W %*% H` appears in three
//! statements and is re-derived (and re-paid) three times. This module
//! adds the workload mode:
//!
//! 1. translate every statement of a [`WorkloadExpr`] with one
//!    translator ([`translate_workload`]), so repeated LA sub-DAGs map
//!    to identical RA fragments;
//! 2. saturate **once** over a single e-graph holding every statement
//!    root — one rule-matching pass over the union instead of N passes
//!    over overlapping graphs;
//! 3. extract one multi-root plan whose DAG cost pays each shared
//!    e-class once across roots ([`extract_greedy_multi`] /
//!    [`extract_ilp_multi`]);
//! 4. lower into one shared arena where common subplans are bound once
//!    ([`lower_workload`]) — `spores-exec`'s `run_many` then computes
//!    them once per pass.

use crate::analysis::{MathGraph, MetaAnalysis, VarMeta};
use crate::cost::NnzCost;
use crate::extract::{extract_greedy_multi, extract_ilp_multi, IlpStats};
use crate::lower::lower_workload;
use crate::optimizer::{plan_cost, ExtractorKind, Optimizer, PhaseTimings, SaturationStats};
use crate::rules::default_rules;
use crate::translate::{translate_workload, TranslateError};
use spores_egraph::{Extractor, Id, Runner};
use spores_ir::{ExprArena, NodeId, Symbol, WorkloadExpr};
use std::collections::HashMap;
use std::time::Instant;

/// The workload optimizer's output: one shared multi-root plan.
#[derive(Clone, Debug)]
pub struct WorkloadOptimized {
    /// The shared plan arena; subplans common to several statements are
    /// single nodes referenced by every consuming root.
    pub arena: ExprArena,
    /// Per-statement `(name, plan root)`, in input order.
    pub roots: Vec<(Symbol, NodeId)>,
    pub timings: PhaseTimings,
    /// Statistics of the single shared saturation run.
    pub saturation: SaturationStats,
    /// Summed per-statement cost estimate of the *input* plans.
    pub cost_before: f64,
    /// DAG cost of the extracted multi-root plan: each shared e-class
    /// paid once across all roots.
    pub cost_after: f64,
    pub ilp: Option<IlpStats>,
    /// True when extraction or lowering failed and the input bundle was
    /// returned as-is.
    pub fell_back: bool,
    /// See [`crate::Optimized::size_polymorphic`].
    pub size_polymorphic: bool,
}

impl WorkloadOptimized {
    /// Estimated cost improvement factor (≥ 1 when the optimizer helped).
    pub fn speedup_estimate(&self) -> f64 {
        if self.cost_after > 0.0 {
            self.cost_before / self.cost_after
        } else {
            f64::INFINITY
        }
    }
}

impl Optimizer {
    /// Optimize a whole workload bundle in one shared e-graph. See the
    /// module docs. `vars` must cover every leaf the bundle reads,
    /// including version symbols defined by earlier roots of an SSA
    /// bundle.
    pub fn optimize_workload(
        &self,
        workload: &WorkloadExpr,
        vars: &HashMap<Symbol, VarMeta>,
    ) -> Result<WorkloadOptimized, TranslateError> {
        let cfg = &self.config;
        if cfg.telemetry {
            spores_telemetry::set_enabled(true);
        }

        // ---- translate (one translator for all statements) -------------
        let span = spores_telemetry::span!("optimize.translate", roots = workload.roots.len());
        let t0 = Instant::now();
        let wt = translate_workload(&workload.arena, &workload.roots, vars)?;
        let t_translate = t0.elapsed();
        drop(span);

        // ---- saturate (one e-graph, every statement a root) ------------
        let span = spores_telemetry::span!("optimize.saturate");
        let t0 = Instant::now();
        let rules = match &self.rules {
            Some(r) => r.clone(),
            None => default_rules(),
        };
        // The sampling scheduler caps match applications *per rule per
        // iteration*; a union graph of N statements has ~N× the match
        // surface, so an unscaled cap would need ~N× the iterations —
        // and every extra iteration re-searches the whole union. With
        // region freezing (the default) the runner scales the cap by
        // the number of *active* statement regions each iteration — the
        // per-statement application rate of the per-statement pipeline
        // while every statement is live, shrinking as statements
        // converge — and drops converged regions' classes from every
        // rule's candidate set. With freezing disabled we recover the
        // old crude behaviour: cap scaled by the statement count for
        // the whole run, every class searched every iteration.
        let scheduler = if cfg.region_freezing {
            cfg.scheduler.clone()
        } else {
            match cfg.scheduler.clone() {
                spores_egraph::Scheduler::Sampling { match_limit, seed } => {
                    spores_egraph::Scheduler::Sampling {
                        match_limit: match_limit * workload.roots.len().max(1),
                        seed,
                    }
                }
                s => s,
            }
        };
        let mut runner = Runner::new(MetaAnalysis::new(wt.ctx.clone()))
            .with_scheduler(scheduler)
            .with_iter_limit(cfg.iter_limit)
            .with_node_limit(cfg.node_limit)
            .with_time_limit(cfg.time_limit)
            .with_parallel(cfg.parallel)
            .with_matching(cfg.matching);
        if cfg.region_freezing {
            runner = runner.with_regions(spores_egraph::RegionConfig::default());
        }
        if let Some(priors) = cfg.rule_priors.clone() {
            runner = runner.with_rule_priors(priors);
        }
        for rt in &wt.roots {
            runner = runner.with_expr(&rt.expr);
        }
        let runner = runner.run(&rules);
        let t_saturate = t0.elapsed();
        drop(span);
        let saturation = SaturationStats {
            iterations: runner.iterations.len(),
            e_nodes: runner.egraph.total_number_of_nodes(),
            e_classes: runner.egraph.number_of_classes(),
            // RegionsConverged is workload mode's saturation: every
            // statement region reached the same per-region fixpoint the
            // per-statement pipeline stops on.
            converged: matches!(
                runner.stop_reason,
                Some(spores_egraph::StopReason::Saturated)
                    | Some(spores_egraph::StopReason::RegionsConverged)
            ),
            stop_reason: runner.stop_reason.clone(),
            candidates_visited: runner
                .iterations
                .iter()
                .flat_map(|it| &it.rules)
                .map(|r| r.candidates)
                .sum(),
            matches_found: runner.iterations.iter().map(|it| it.matches_found).sum(),
            region_frozen_iters: runner
                .iterations
                .iter()
                .map(|it| it.frozen_regions.iter().filter(|&&f| f).count())
                .sum(),
        };
        let eroots = runner.roots.clone();
        let egraph = runner.egraph;

        // summed cost of the input plans (the before/after reference)
        let cost_before = {
            let mut pre = MathGraph::new(MetaAnalysis::new(wt.ctx.clone()));
            let ids: Vec<Id> = wt.roots.iter().map(|rt| pre.add_expr(&rt.expr)).collect();
            pre.rebuild();
            let ext = Extractor::new(&pre, NnzCost);
            ids.iter()
                .map(|&id| ext.best_cost(id).unwrap_or(f64::INFINITY))
                .sum()
        };

        // ---- extract one multi-root plan --------------------------------
        let t0 = Instant::now();
        let mut ilp_stats = None;
        let extracted = match cfg.extractor {
            ExtractorKind::Greedy => {
                let _span = spores_telemetry::span!("optimize.extract.greedy");
                extract_greedy_multi(&egraph, &eroots)
            }
            ExtractorKind::Ilp => {
                let mut span =
                    spores_telemetry::span!("optimize.extract.ilp", e_nodes = saturation.e_nodes,);
                let solver = spores_ilp::Solver {
                    time_limit: cfg.ilp_time_limit,
                    ..spores_ilp::Solver::default()
                };
                extract_ilp_multi(&egraph, &eroots, &solver).map(|(c, e, ids, s)| {
                    span.arg("n_vars", s.n_vars);
                    span.arg("rounds", s.rounds);
                    span.arg("optimal", s.optimal);
                    if let Some(w) = s.warm_start {
                        span.arg("warm_start", w);
                    }
                    ilp_stats = Some(s);
                    (c, e, ids)
                })
            }
        };
        let t_extract = t0.elapsed();

        // ---- lower into one shared arena --------------------------------
        let span = spores_telemetry::span!("optimize.lower");
        let t0 = Instant::now();
        let lowered = extracted.as_ref().and_then(|(_, expr, ids)| {
            let specs: Vec<(Id, Option<Symbol>, Option<Symbol>)> = ids
                .iter()
                .zip(&wt.roots)
                .map(|(&id, rt)| (id, rt.row, rt.col))
                .collect();
            lower_workload(expr, &specs, &wt.ctx).ok()
        });
        let t_lower = t0.elapsed();
        drop(span);

        let timings = PhaseTimings {
            translate: t_translate,
            saturate: t_saturate,
            extract: t_extract,
            lower: t_lower,
        };

        let names: Vec<Symbol> = workload.roots.iter().map(|&(n, _)| n).collect();
        match (extracted, lowered) {
            (Some((cost_after, _, _)), Some(low)) => Ok(WorkloadOptimized {
                arena: low.arena,
                roots: names.into_iter().zip(low.roots).collect(),
                timings,
                saturation,
                cost_before,
                cost_after,
                ilp: ilp_stats,
                fell_back: false,
                size_polymorphic: !low.dim_constants,
            }),
            _ => {
                // extraction or lowering failed: return the input bundle
                Ok(WorkloadOptimized {
                    arena: workload.arena.clone(),
                    roots: workload.roots.clone(),
                    timings,
                    saturation,
                    cost_before,
                    cost_after: cost_before,
                    ilp: ilp_stats,
                    fell_back: true,
                    size_polymorphic: false,
                })
            }
        }
    }
}

/// Summed [`plan_cost`] of a workload plan's roots, priced as-is under
/// the caller's metadata — the workload analogue of the plan cache's hit
/// re-check (shared subplans appear in each consuming root's term, so
/// this is a consistent upper bound on both sides of the comparison).
pub fn workload_plan_cost(
    arena: &ExprArena,
    roots: &[(Symbol, NodeId)],
    vars: &HashMap<Symbol, VarMeta>,
) -> Result<f64, TranslateError> {
    let mut total = 0.0;
    for &(_, root) in roots {
        total += plan_cost(arena, root, vars)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_la, Tensor};
    use crate::optimizer::OptimizerConfig;
    use spores_ir::parse_expr;

    fn vars(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, VarMeta> {
        list.iter()
            .map(|&(n, (r, c), s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
            .collect()
    }

    fn bundle(stmts: &[(&str, &str)]) -> WorkloadExpr {
        let mut arena = ExprArena::new();
        let roots = stmts
            .iter()
            .map(|&(name, src)| (Symbol::new(name), parse_expr(&mut arena, src).unwrap()))
            .collect();
        WorkloadExpr::new(arena, roots).unwrap()
    }

    fn optimizer(kind: ExtractorKind) -> Optimizer {
        Optimizer::new(OptimizerConfig {
            extractor: kind,
            node_limit: 8_000,
            iter_limit: 15,
            ..OptimizerConfig::default()
        })
    }

    #[test]
    fn workload_mode_shares_subplans_across_statements() {
        // `W %*% H` is needed by both statements (under `/` and `log` it
        // cannot be rewritten away); the shared plan must bind it once.
        let w = bundle(&[
            ("num", "t(W) %*% (X / (W %*% H))"),
            ("obj", "sum(X * log(W %*% H))"),
        ]);
        let vs = vars(&[
            ("W", (60, 4), 1.0),
            ("H", (4, 50), 1.0),
            ("X", (60, 50), 0.05),
        ]);
        let got = optimizer(ExtractorKind::Greedy)
            .optimize_workload(&w, &vs)
            .unwrap();
        assert!(!got.fell_back);
        assert_eq!(got.roots.len(), 2);
        // the product appears exactly once in the shared arena …
        let all: Vec<NodeId> = got
            .arena
            .postorder_multi(&got.roots.iter().map(|&(_, r)| r).collect::<Vec<_>>());
        let products: Vec<NodeId> = all
            .iter()
            .copied()
            .filter(|&id| got.arena.display(id) == "W %*% H")
            .collect();
        assert_eq!(products.len(), 1, "plan: {:?}", plans(&got));
        // … and is reachable from both statement roots
        for &(_, root) in &got.roots {
            assert!(
                got.arena.postorder(root).contains(&products[0]),
                "root does not share the product: {:?}",
                plans(&got)
            );
        }
    }

    fn plans(got: &WorkloadOptimized) -> Vec<String> {
        got.roots
            .iter()
            .map(|&(n, r)| format!("{n} = {}", got.arena.display(r)))
            .collect()
    }

    #[test]
    fn workload_mode_cost_never_exceeds_per_statement_sum() {
        let stmts = [
            ("gu", "(U %*% t(V) - X) %*% V"),
            ("loss", "sum((X - U %*% t(V))^2)"),
        ];
        let vs = vars(&[
            ("X", (500, 300), 0.001),
            ("U", (500, 8), 1.0),
            ("V", (300, 8), 1.0),
        ]);
        let opt = optimizer(ExtractorKind::Greedy);
        let whole = opt.optimize_workload(&bundle(&stmts), &vs).unwrap();
        assert!(!whole.fell_back);
        let mut per_statement = 0.0;
        for (name, src) in stmts {
            let got = opt.optimize_workload(&bundle(&[(name, src)]), &vs).unwrap();
            assert!(!got.fell_back);
            per_statement += got.cost_after;
        }
        // 1% relative slack: greedy tie-breaking between equal-cost
        // members follows symbol-interning order, which depends on which
        // tests ran earlier in the process — the same scheduler noise
        // tests/workload_cse.rs documents. A genuine double-pay would be
        // plan-sized, far beyond the slack.
        assert!(
            whole.cost_after <= per_statement * 1.01 + 1e-6,
            "workload {} > per-statement sum {per_statement}",
            whole.cost_after
        );
    }

    #[test]
    fn workload_plans_preserve_semantics() {
        let w = bundle(&[
            ("g", "(U %*% t(V) - X) %*% V"),
            ("loss", "sum((X - U %*% t(V))^2)"),
        ]);
        let vs = vars(&[("X", (6, 5), 1.0), ("U", (6, 2), 1.0), ("V", (5, 2), 1.0)]);
        let got = optimizer(ExtractorKind::Greedy)
            .optimize_workload(&w, &vs)
            .unwrap();
        assert!(!got.fell_back);
        let mk = |rows: usize, cols: usize, seed: u64| {
            let mut v = Vec::with_capacity(rows * cols);
            let mut state = seed;
            for _ in 0..rows * cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v.push(((state >> 33) % 1000) as f64 / 100.0 - 5.0);
            }
            Tensor::new(rows, cols, v)
        };
        let tensors = HashMap::from([
            (Symbol::new("X"), mk(6, 5, 1)),
            (Symbol::new("U"), mk(6, 2, 2)),
            (Symbol::new("V"), mk(5, 2, 3)),
        ]);
        for (i, &(name, root)) in got.roots.iter().enumerate() {
            let (_, input_root) = w.roots[i];
            assert_eq!(w.roots[i].0, name);
            let want = eval_la(&w.arena, input_root, &tensors).unwrap();
            let have = eval_la(&got.arena, root, &tensors).unwrap();
            assert!(
                want.approx_eq(&have, 1e-6),
                "{name} diverged: {} vs {:?} / {:?}",
                got.arena.display(root),
                want,
                have
            );
        }
    }

    #[test]
    fn ilp_workload_extraction_runs_end_to_end() {
        let w = bundle(&[
            ("a", "sum(X * (u %*% t(v)))"),
            ("b", "colSums(X * (u %*% t(v)))"),
        ]);
        let vs = vars(&[
            ("X", (80, 60), 0.01),
            ("u", (80, 1), 1.0),
            ("v", (60, 1), 1.0),
        ]);
        let got = optimizer(ExtractorKind::Ilp)
            .optimize_workload(&w, &vs)
            .unwrap();
        assert!(!got.fell_back);
        let stats = got.ilp.expect("ilp stats recorded");
        assert!(stats.n_vars > 0);
        // greedy multi-root warm start is threaded through
        assert!(stats.warm_start.is_some());
    }

    #[test]
    fn single_statement_workload_matches_optimize() {
        let src = "sum((X - u %*% t(v))^2)";
        let vs = vars(&[
            ("X", (1000, 500), 0.001),
            ("u", (1000, 1), 1.0),
            ("v", (500, 1), 1.0),
        ]);
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let opt = optimizer(ExtractorKind::Greedy);
        let single = opt.optimize(&arena, root, &vs).unwrap();
        let whole = opt
            .optimize_workload(&bundle(&[("loss", src)]), &vs)
            .unwrap();
        assert!(!whole.fell_back);
        // same pipeline, same plan
        assert_eq!(
            whole.arena.display(whole.roots[0].1),
            single.arena.display(single.root)
        );
    }

    /// Per-region convergence freezing: statement `a` (a bare
    /// transpose) saturates within a couple of iterations while the
    /// headline statement `b` needs many more. The fast region must
    /// freeze (visible in `region_frozen_iters`), the run must converge
    /// region-by-region, and the extracted multi-root plan must match
    /// the non-freezing run: same per-root plans, same DAG cost.
    #[test]
    fn converged_statement_region_freezes_without_changing_the_plan() {
        let stmts = [("a", "t(t(Y))"), ("b", "sum(W %*% H)")];
        let vs = vars(&[
            ("Y", (40, 30), 1.0),
            ("W", (5000, 10), 1.0),
            ("H", (10, 3000), 1.0),
        ]);
        let run = |freeze: bool| {
            let opt = Optimizer::new(OptimizerConfig {
                extractor: ExtractorKind::Greedy,
                node_limit: 8_000,
                iter_limit: 30,
                region_freezing: freeze,
                ..OptimizerConfig::default()
            });
            opt.optimize_workload(&bundle(&stmts), &vs).unwrap()
        };
        let frozen = run(true);
        assert!(!frozen.fell_back);
        assert!(frozen.saturation.converged, "workload must converge");
        // statement a freezes within a few iterations and never thaws
        // while statement b keeps working: from then on a's region
        // contributes zero candidates, so every remaining iteration's
        // frozen count includes it
        assert!(
            frozen.saturation.region_frozen_iters + 5 >= frozen.saturation.iterations,
            "statement a's region froze for only {} of {} iterations",
            frozen.saturation.region_frozen_iters,
            frozen.saturation.iterations
        );
        let plain = run(false);
        assert!(!plain.fell_back);
        assert_eq!(plain.saturation.region_frozen_iters, 0);
        // freezing changes how much is searched, never what is planned
        for (f, p) in frozen.roots.iter().zip(&plain.roots) {
            assert_eq!(f.0, p.0);
            assert_eq!(
                frozen.arena.display(f.1),
                plain.arena.display(p.1),
                "statement {} plan changed under freezing",
                f.0
            );
        }
        let rel = (frozen.cost_after - plain.cost_after).abs() / plain.cost_after.max(1.0);
        assert!(
            rel < 1e-9,
            "plan cost changed under freezing: {} vs {}",
            frozen.cost_after,
            plain.cost_after
        );
    }

    #[test]
    fn workload_plan_cost_sums_roots() {
        let w = bundle(&[("a", "sum(X^2)"), ("b", "rowSums(X)")]);
        let vs = vars(&[("X", (100, 50), 0.1)]);
        let total = workload_plan_cost(&w.arena, &w.roots, &vs).unwrap();
        let a = plan_cost(&w.arena, w.roots[0].1, &vs).unwrap();
        let b = plan_cost(&w.arena, w.roots[1].1, &vs).unwrap();
        assert!((total - (a + b)).abs() < 1e-9);
    }
}
