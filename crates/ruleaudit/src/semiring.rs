//! Semiring-requirement inference: the weakest algebraic structure under
//! which each rule's equation holds.
//!
//! The RA core is sum-product over `(+, ×)`; the ROADMAP's
//! semiring-generic workloads (min-plus shortest paths, bool-or
//! reachability, max-times Viterbi — "Correct Compilation of Semiring
//! Contractions") need to know which rewrites survive the swap of
//! carrier. This pass normalizes both sides of every rule to a
//! polynomial normal form and finds the weakest level of the ladder
//!
//! `Semiring < CommutativeSemiring < Ring < Field < Real`
//!
//! at which the normal forms coincide, plus an orthogonal
//! "idempotent `⊕` required" flag (`x + x = x`, as in min-plus).
//!
//! Conventions, which the table's consumers must share:
//!
//! * Integer literals denote canonical ℕ/ℤ-images: `2` is `1 ⊕ 1`, so
//!   `x + x = 2·x` is sound in *any* semiring (and `2 = 1` under
//!   idempotence). Negative integers need additive inverses → Ring.
//!   Non-integer literals only exist over ℝ.
//! * `dim i` is a natural-number scalar, hence central: it commutes
//!   with everything even in a noncommutative semiring.
//! * `Σ` is a formal linear operator: it distributes over `⊕`
//!   unconditionally, and factors through `⊗` only for operands a
//!   declared `i ∉ Attr(·)` hypothesis makes `i`-independent (from the
//!   left/right edge in a noncommutative semiring, from anywhere in a
//!   commutative one). Adjacent `Σ`-binders commute (finite sums in a
//!   commutative monoid).
//! * Operators with no semiring reading (`exp`, `sigmoid`,
//!   comparisons, …) pin the rule to ℝ; such rules are *definitional*
//!   (they unfold an operator's definition) rather than algebraically
//!   verified.

use crate::schema::IndexRef;
use spores_core::lang::Math;
use spores_core::rules::MathRewrite;
use spores_egraph::{ConditionMeta, ENodeOrVar, Id, RecExpr, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The algebraic-structure ladder. `Ord` is the "requires at least"
/// order; `Ring` above `CommutativeSemiring` means a rule needing both
/// commutativity and additive inverses reports `Ring` (read: commutative
/// ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Structure {
    Semiring,
    CommutativeSemiring,
    Ring,
    Field,
    Real,
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Structure::Semiring => "semiring",
            Structure::CommutativeSemiring => "commutative-semiring",
            Structure::Ring => "ring",
            Structure::Field => "field",
            Structure::Real => "real",
        };
        write!(f, "{s}")
    }
}

/// How the requirement was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// Both sides normalize to the same polynomial at this level.
    Algebraic,
    /// The rule unfolds/fuses an operator with no semiring reading
    /// (`sigmoid`, `inv`, comparisons, …); it holds by definition over
    /// its native carrier and is excluded from weaker structures.
    Definitional,
    /// The normal forms differ at every level — the pass cannot certify
    /// the equation (reported as a warning; the rule is pinned to ℝ).
    Unverified,
}

impl fmt::Display for Verification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verification::Algebraic => "algebraic",
            Verification::Definitional => "definitional",
            Verification::Unverified => "unverified",
        };
        write!(f, "{s}")
    }
}

/// The per-rule entry of the semiring-requirement table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemiringReq {
    pub structure: Structure,
    /// The equation additionally needs `x ⊕ x = x` (e.g. min-plus,
    /// bool-or). Orthogonal to `structure`.
    pub idempotent_add: bool,
    pub verified: Verification,
}

// ---------------------------------------------------------------------
// polynomial normal form
// ---------------------------------------------------------------------

/// A central scalar factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SAtom {
    Dim(IndexRef),
    /// A non-integer literal, by bit pattern (only reachable for rules
    /// already pinned to ℝ).
    LitBits(u64),
}

/// A (possibly noncommutative) value factor.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum VAtom {
    Var(Var),
    Sym(spores_ir::Symbol),
    /// `Σ` over a set of binders of a residual polynomial. Adjacent
    /// binders are flattened into one set (sum swap).
    Sum(BTreeSet<IndexRef>, Poly),
    /// A structurally-compared subterm (bind/unbind, LA operators).
    Opaque(String),
}

/// One monomial: integer coefficient × central scalars × ordered factors.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Mono {
    scalars: BTreeMap<SAtom, u32>,
    factors: Vec<VAtom>,
    coeff: i64,
}

impl Mono {
    fn key(&self) -> (&BTreeMap<SAtom, u32>, &Vec<VAtom>) {
        (&self.scalars, &self.factors)
    }
}

/// Canonical sum of monomials: sorted by key, coefficients combined,
/// zero terms dropped.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
struct Poly {
    monos: Vec<Mono>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mode {
    commutative: bool,
    idempotent: bool,
}

impl Poly {
    fn zero() -> Poly {
        Poly::default()
    }

    fn constant(c: i64) -> Poly {
        Poly::canon(
            vec![Mono {
                scalars: BTreeMap::new(),
                factors: Vec::new(),
                coeff: c,
            }],
            Mode {
                commutative: false,
                idempotent: false,
            },
        )
    }

    fn atom(a: VAtom) -> Poly {
        Poly {
            monos: vec![Mono {
                scalars: BTreeMap::new(),
                factors: vec![a],
                coeff: 1,
            }],
        }
    }

    fn canon(mut monos: Vec<Mono>, mode: Mode) -> Poly {
        if mode.commutative {
            for m in &mut monos {
                m.factors.sort();
            }
        }
        monos.sort_by(|a, b| a.key().cmp(&b.key()));
        let mut out: Vec<Mono> = Vec::new();
        for m in monos {
            match out.last_mut() {
                Some(prev) if prev.key() == m.key() => {
                    prev.coeff = prev.coeff.saturating_add(m.coeff);
                }
                _ => out.push(m),
            }
        }
        if mode.idempotent {
            // ℕ-image collapse: n·x = x for every n ≥ 1
            for m in &mut out {
                if m.coeff > 1 {
                    m.coeff = 1;
                }
            }
        }
        out.retain(|m| m.coeff != 0);
        Poly { monos: out }
    }

    fn add(self, other: Poly, mode: Mode) -> Poly {
        let mut monos = self.monos;
        monos.extend(other.monos);
        Poly::canon(monos, mode)
    }

    fn mul(&self, other: &Poly, mode: Mode) -> Poly {
        let mut monos = Vec::new();
        for a in &self.monos {
            for b in &other.monos {
                let mut scalars = a.scalars.clone();
                for (&s, &e) in &b.scalars {
                    *scalars.entry(s).or_insert(0) += e;
                }
                let mut factors = a.factors.clone();
                factors.extend(b.factors.iter().cloned());
                monos.push(Mono {
                    scalars,
                    factors,
                    coeff: a.coeff.saturating_mul(b.coeff),
                });
            }
        }
        Poly::canon(monos, mode)
    }
}

// ---------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------

struct Norm<'a> {
    nodes: &'a [ENodeOrVar<Math>],
    ast: &'a RecExpr<ENodeOrVar<Math>>,
    mode: Mode,
    /// Declared `i ∉ Attr(v)` hypotheses.
    free: &'a [(IndexRef, Var)],
    /// Declared-zero variables.
    zeros: &'a [Var],
}

impl<'a> Norm<'a> {
    fn index_ref(&self, id: Id) -> Result<IndexRef, String> {
        match &self.nodes[id.index()] {
            ENodeOrVar::Var(v) => Ok(IndexRef::Var(*v)),
            ENodeOrVar::ENode(Math::Sym(s)) => Ok(IndexRef::Sym(*s)),
            other => Err(format!("expected an index, found {other:?}")),
        }
    }

    fn opaque(&self, id: Id) -> VAtom {
        VAtom::Opaque(RecExpr::extract(self.ast, id).to_string())
    }

    fn eval(&self, id: Id) -> Result<Poly, String> {
        let node = self.nodes[id.index()].clone();
        match node {
            ENodeOrVar::Var(v) => Ok(if self.zeros.contains(&v) {
                Poly::zero()
            } else {
                Poly::atom(VAtom::Var(v))
            }),
            ENodeOrVar::ENode(n) => match n {
                Math::Lit(x) => {
                    let v = x.get();
                    if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 {
                        let mut p = Poly::constant(v as i64);
                        if self.mode.idempotent && v > 1.0 {
                            p = Poly::constant(1);
                        }
                        Ok(p)
                    } else {
                        Ok(Poly {
                            monos: vec![Mono {
                                scalars: BTreeMap::from([(SAtom::LitBits(v.to_bits()), 1)]),
                                factors: Vec::new(),
                                coeff: 1,
                            }],
                        })
                    }
                }
                Math::Sym(s) => Ok(Poly::atom(VAtom::Sym(s))),
                Math::NoIdx => Err("`_` in value position".to_owned()),
                Math::Add([a, b]) | Math::LAdd([a, b]) => {
                    Ok(self.eval(a)?.add(self.eval(b)?, self.mode))
                }
                Math::Mul([a, b]) | Math::LMul([a, b]) => {
                    Ok(self.eval(a)?.mul(&self.eval(b)?, self.mode))
                }
                Math::LSub([a, b]) => {
                    let neg = Poly::constant(-1).mul(&self.eval(b)?, self.mode);
                    Ok(self.eval(a)?.add(neg, self.mode))
                }
                Math::Pow([x, k]) => {
                    // small nonnegative integer exponents unfold into
                    // repeated ⊗; anything else was pinned to ℝ by the
                    // operator scan
                    let exp = match &self.nodes[k.index()] {
                        ENodeOrVar::ENode(Math::Lit(n))
                            if n.get().fract() == 0.0 && (0.0..=4.0).contains(&n.get()) =>
                        {
                            n.get() as u32
                        }
                        _ => return Ok(Poly::atom(self.opaque(id))),
                    };
                    let base = self.eval(x)?;
                    let mut out = Poly::constant(1);
                    for _ in 0..exp {
                        out = out.mul(&base, self.mode);
                    }
                    Ok(out)
                }
                Math::Dim(i) => {
                    let idx = self.index_ref(i)?;
                    Ok(Poly {
                        monos: vec![Mono {
                            scalars: BTreeMap::from([(SAtom::Dim(idx), 1)]),
                            factors: Vec::new(),
                            coeff: 1,
                        }],
                    })
                }
                Math::Agg([i, body]) => {
                    let idx = self.index_ref(i)?;
                    let p = self.eval(body)?;
                    let mut out = Poly::zero();
                    for mono in p.monos {
                        out = out.add(self.sum_mono(idx, mono), self.mode);
                    }
                    Ok(out)
                }
                // everything else is compared structurally
                _ => Ok(Poly::atom(self.opaque(id))),
            },
        }
    }

    fn independent(&self, idx: IndexRef, f: &VAtom) -> bool {
        matches!(f, VAtom::Var(v) if self.free.contains(&(idx, *v)))
    }

    /// `Σ_idx` of one monomial: coefficient and central scalars always
    /// pull out; `idx`-independent factors pull out from the edges (or
    /// anywhere, given commutativity); the residual stays under a
    /// `Sum` atom, flattening directly nested sums.
    fn sum_mono(&self, idx: IndexRef, mono: Mono) -> Poly {
        let Mono {
            mut scalars,
            mut factors,
            coeff,
        } = mono;
        let mut prefix: Vec<VAtom> = Vec::new();
        let mut suffix: Vec<VAtom> = Vec::new();
        if self.mode.commutative {
            let (ind, rest): (Vec<_>, Vec<_>) =
                factors.into_iter().partition(|f| self.independent(idx, f));
            prefix = ind;
            factors = rest;
        } else {
            while factors.first().is_some_and(|f| self.independent(idx, f)) {
                prefix.push(factors.remove(0));
            }
            while factors.last().is_some_and(|f| self.independent(idx, f)) {
                suffix.insert(0, factors.pop().expect("nonempty"));
            }
        }
        if factors.is_empty() {
            // Σ_i c = c · dim(i)
            *scalars.entry(SAtom::Dim(idx)).or_insert(0) += 1;
            prefix.extend(suffix);
            return Poly::canon(
                vec![Mono {
                    scalars,
                    factors: prefix,
                    coeff,
                }],
                self.mode,
            );
        }
        let sum_atom = match factors.as_slice() {
            [VAtom::Sum(binders, inner)] if !binders.contains(&idx) => {
                let mut binders = binders.clone();
                binders.insert(idx);
                VAtom::Sum(binders, inner.clone())
            }
            _ => VAtom::Sum(
                BTreeSet::from([idx]),
                Poly::canon(
                    vec![Mono {
                        scalars: BTreeMap::new(),
                        factors,
                        coeff: 1,
                    }],
                    self.mode,
                ),
            ),
        };
        prefix.push(sum_atom);
        prefix.extend(suffix);
        Poly::canon(
            vec![Mono {
                scalars,
                factors: prefix,
                coeff,
            }],
            self.mode,
        )
    }
}

// ---------------------------------------------------------------------
// classification
// ---------------------------------------------------------------------

/// The floor a pattern's operators impose, before any algebra runs.
fn op_floor(ast: &RecExpr<ENodeOrVar<Math>>) -> Structure {
    let mut floor = Structure::Semiring;
    let nodes = ast.nodes();
    for node in nodes {
        let ENodeOrVar::ENode(n) = node else { continue };
        let here = match n {
            Math::LSub(_) => Structure::Ring,
            Math::Inv(_) | Math::LDiv(_) => Structure::Field,
            Math::Exp(_)
            | Math::Log(_)
            | Math::Sqrt(_)
            | Math::Abs(_)
            | Math::Sign(_)
            | Math::Sigmoid(_)
            | Math::Sprop(_)
            | Math::Gt(_)
            | Math::Lt(_)
            | Math::Ge(_)
            | Math::Le(_)
            | Math::BMin(_)
            | Math::BMax(_) => Structure::Real,
            Math::Lit(x) => {
                let v = x.get();
                if v.fract() != 0.0 {
                    Structure::Real
                } else if v < 0.0 {
                    Structure::Ring
                } else {
                    Structure::Semiring
                }
            }
            Math::Pow([_, k]) => match &nodes[k.index()] {
                ENodeOrVar::ENode(Math::Lit(n))
                    if n.get().fract() == 0.0 && (0.0..=4.0).contains(&n.get()) =>
                {
                    Structure::Semiring
                }
                _ => Structure::Real,
            },
            _ => Structure::Semiring,
        };
        floor = floor.max(here);
    }
    floor
}

/// Infer the weakest structure for one rule. Returns `None` (with no
/// table entry) only when the rule has no rhs pattern to compare.
pub fn infer(rule: &MathRewrite) -> Option<SemiringReq> {
    let rhs = rule.rhs_pattern()?;
    let floor = op_floor(rule.searcher.ast()).max(op_floor(rhs.ast()));
    if floor >= Structure::Field {
        // no semiring reading of the operators involved: the rule is an
        // operator definition over its native carrier
        return Some(SemiringReq {
            structure: floor,
            idempotent_add: false,
            verified: Verification::Definitional,
        });
    }

    let free: Vec<(IndexRef, Var)> = rule
        .condition_metas()
        .filter_map(|m| match m {
            ConditionMeta::IndexNotInSchema { index, of } => Some((IndexRef::Var(*index), *of)),
            _ => None,
        })
        .collect();
    let zeros: Vec<Var> = rule
        .condition_metas()
        .filter_map(|m| match m {
            ConditionMeta::IsZero { var } => Some(*var),
            _ => None,
        })
        .collect();

    let ladder = [
        (false, false, Structure::Semiring),
        (true, false, Structure::CommutativeSemiring),
        (false, true, Structure::Semiring),
        (true, true, Structure::CommutativeSemiring),
    ];
    for (commutative, idempotent, level) in ladder {
        let mode = Mode {
            commutative,
            idempotent,
        };
        let norm = |ast: &RecExpr<ENodeOrVar<Math>>| {
            Norm {
                nodes: ast.nodes(),
                ast,
                mode,
                free: &free,
                zeros: &zeros,
            }
            .eval(ast.root())
        };
        match (norm(rule.searcher.ast()), norm(rhs.ast())) {
            (Ok(l), Ok(r)) if l == r => {
                return Some(SemiringReq {
                    structure: floor.max(level),
                    idempotent_add: idempotent,
                    verified: Verification::Algebraic,
                });
            }
            (Err(_), _) | (_, Err(_)) => break,
            _ => {}
        }
    }
    Some(SemiringReq {
        structure: Structure::Real,
        idempotent_add: false,
        verified: Verification::Unverified,
    })
}
