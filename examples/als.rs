//! ALS under the three optimizer configurations (§4.2's first analysis).
//!
//! ```text
//! cargo run --release --example als
//! ```
//!
//! The inner-loop gradient `(U Vᵀ − X) %*% V` is the expression SPORES
//! expands to `U Vᵀ V − X V`: counter-intuitive (it *distributes* a
//! multiplication) but a large win when X is sparse, because `X V` is
//! cheap and `U (Vᵀ V)` is a skinny chain. SystemML's baseline never
//! considers it.

use spores::ml::{run, workloads, Mode};

fn main() {
    let w = workloads::als(2000, 1000, 10, 42);
    println!(
        "ALS {} rank 10, {} iterations — X sparsity {:.3}",
        w.size_label,
        w.iterations,
        w.inputs[&spores::ir::Symbol::new("X")].sparsity()
    );
    println!();
    let mut base_time = None;
    for mode in [Mode::Base, Mode::Opt2, Mode::spores()] {
        let r = run(&w, &mode).expect("runs");
        let secs = r.exec_time.as_secs_f64();
        if base_time.is_none() {
            base_time = Some(secs);
        }
        println!(
            "{:9}  exec {:8.1} ms   flops {:>12}   alloc {:>12}   loss {:.2}   ({:.2}x)",
            r.mode,
            secs * 1e3,
            r.stats.flops,
            r.stats.cells_allocated,
            r.scalars[&spores::ir::Symbol::new("loss")],
            base_time.unwrap() / secs,
        );
    }
}
