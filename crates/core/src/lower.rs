//! RA → LA back-translation (the final `translate` step of Figure 13).
//!
//! After extraction the plan is a relational expression whose classes all
//! have at most two free attributes (§3.2). This module compiles it back
//! onto the LA surface:
//!
//! * joins with matching schemas become element-wise multiplies
//!   (with SystemML-style vector broadcasting),
//! * aggregated joins become matrix multiplies — including multi-way
//!   contractions (`Σ_jk A·B·C`), which are scheduled pairwise exactly
//!   like SystemML's fused `mmchain` operator,
//! * `Σ_k P(a,k)·Q(k,a)` (a "trace-shaped" contraction) becomes
//!   `rowSums(P * t(Q))`,
//! * leftover aggregates become `rowSums`/`colSums`/`sum`,
//! * `x + (-1)·y` and `(-1)·y` are cleaned back into `x - y` / `-y`.
//!
//! Every lowering carries an explicit target orientation
//! `(row attr, col attr)`; transposes are inserted exactly where the
//! orientation flips, so the output is deterministic.

use crate::analysis::Context;
use crate::lang::{Math, MathExpr};
use spores_egraph::{FxHashMap, Id, Language};
use spores_ir::{BinOp, ExprArena, LaNode, NodeId, Symbol, UnOp};
use std::fmt;

/// Lowering failure: the plan contains a shape the compiler cannot map
/// onto LA operators (the optimizer falls back to the input plan).
#[derive(Clone, Debug)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

type Attrs = Vec<Symbol>;

/// An LA value with its attribute orientation.
#[derive(Copy, Clone, Debug)]
struct LFac {
    la: NodeId,
    row: Option<Symbol>,
    col: Option<Symbol>,
}

impl LFac {
    fn attrs(&self) -> Attrs {
        self.row.iter().chain(self.col.iter()).copied().collect()
    }

    fn has(&self, s: Symbol) -> bool {
        self.row == Some(s) || self.col == Some(s)
    }
}

struct Lower<'a> {
    expr: &'a MathExpr,
    ctx: &'a Context,
    arena: ExprArena,
    schemas: Vec<Attrs>,
    cache: FxHashMap<(Id, Option<Symbol>, Option<Symbol>), NodeId>,
    /// Set when the emitted plan embeds a *concrete* index dimension as a
    /// constant (a `dim` literal, a broadcast ones-vector, or a Σ-over-
    /// absent-index scale). Such plans are only valid for the exact input
    /// sizes they were lowered for — the optimizer service must not
    /// re-instantiate them at other dimensions.
    dim_constants: bool,
}

/// A lowered LA plan plus provenance facts about it.
#[derive(Clone, Debug)]
pub struct Lowered {
    pub arena: ExprArena,
    pub root: NodeId,
    /// True when the plan embeds concrete index dimensions as constants
    /// (see [`lower_with_info`]); such plans are not size-polymorphic.
    pub dim_constants: bool,
}

/// Lower `expr` (a pure-RA plan) into an [`ExprArena`], materializing the
/// result with the given `(row, col)` orientation.
pub fn lower(
    expr: &MathExpr,
    row: Option<Symbol>,
    col: Option<Symbol>,
    ctx: &Context,
) -> Result<(ExprArena, NodeId), LowerError> {
    lower_with_info(expr, row, col, ctx).map(|l| (l.arena, l.root))
}

/// [`lower`], additionally reporting whether the plan embeds concrete
/// dimension constants (and is therefore pinned to the input sizes).
pub fn lower_with_info(
    expr: &MathExpr,
    row: Option<Symbol>,
    col: Option<Symbol>,
    ctx: &Context,
) -> Result<Lowered, LowerError> {
    let lw = lower_workload(expr, &[(expr.root(), row, col)], ctx)?;
    Ok(Lowered {
        arena: lw.arena,
        root: lw.roots[0],
        dim_constants: lw.dim_constants,
    })
}

/// A multi-root shared LA plan: all statements lowered into ONE
/// hash-consed arena, so a sub-plan extraction shared across statements
/// is bound to a single [`NodeId`] referenced by every consuming root —
/// the executor computes it once per pass.
#[derive(Clone, Debug)]
pub struct LoweredWorkload {
    pub arena: ExprArena,
    /// Per-statement plan roots, in input order.
    pub roots: Vec<NodeId>,
    /// True when any statement's plan embeds concrete dimension
    /// constants (see [`lower_with_info`]).
    pub dim_constants: bool,
}

/// Lower every root of a multi-root RA plan into one shared arena.
///
/// `roots` pairs each root's node id in `expr` with its target
/// orientation. The lowering cache and the output arena are shared
/// across roots, so RA sub-plans the extractor shared come out as shared
/// LA nodes (common subplans bound once), and the final peephole cleanup
/// runs with one memo so that sharing survives it.
pub fn lower_workload(
    expr: &MathExpr,
    roots: &[(Id, Option<Symbol>, Option<Symbol>)],
    ctx: &Context,
) -> Result<LoweredWorkload, LowerError> {
    let schemas = compute_schemas(expr)?;
    let mut lw = Lower {
        expr,
        ctx,
        arena: ExprArena::new(),
        schemas,
        cache: FxHashMap::default(),
        dim_constants: false,
    };
    let mut oriented = Vec::with_capacity(roots.len());
    for &(id, row, col) in roots {
        let root_schema = lw.schemas[id.index()].clone();
        let want: Attrs = row.iter().chain(col.iter()).copied().collect();
        if sorted(&root_schema) != sorted(&want) {
            return Err(LowerError(format!(
                "root schema {root_schema:?} does not match requested orientation ({row:?}, {col:?})"
            )));
        }
        let fac = lw.lower_id(id, row, col)?;
        oriented.push(lw.orient(fac, row, col)?);
    }
    let mut memo: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    let cleaned = oriented
        .into_iter()
        .map(|r| clean_rec(&mut lw.arena, r, &mut memo))
        .collect();
    Ok(LoweredWorkload {
        arena: lw.arena,
        roots: cleaned,
        dim_constants: lw.dim_constants,
    })
}

fn sorted(v: &Attrs) -> Attrs {
    let mut v = v.clone();
    v.sort_unstable();
    v
}

/// Free attributes of every node (bottom-up), erroring on non-RA nodes.
fn compute_schemas(expr: &MathExpr) -> Result<Vec<Attrs>, LowerError> {
    let mut schemas: Vec<Attrs> = Vec::with_capacity(expr.len());
    for (i, node) in expr.nodes().iter().enumerate() {
        use Math::*;
        let s: Attrs = match node {
            Lit(_) | Dim(_) => vec![],
            Sym(_) | NoIdx => vec![], // only meaningful via parents
            Bind([a, b, _]) => {
                let mut s = Attrs::new();
                for idx in [a, b] {
                    if let Sym(sym) = expr.node(*idx) {
                        s.push(*sym);
                    }
                }
                s.sort_unstable();
                s
            }
            Unbind(_) => {
                return Err(LowerError("unbind in extracted plan".into()));
            }
            Agg([i, body]) => {
                let sym = match expr.node(*i) {
                    Sym(s) => *s,
                    other => return Err(LowerError(format!("bad aggregate index {other:?}"))),
                };
                schemas[body.index()]
                    .iter()
                    .copied()
                    .filter(|&s| s != sym)
                    .collect()
            }
            other if other.is_la_op() => {
                return Err(LowerError(format!("LA node {other:?} in RA plan")));
            }
            other => {
                // point-wise / union / join: union of child schemas
                let mut s = Attrs::new();
                for &c in other.children() {
                    for &a in &schemas[c.index()] {
                        if !s.contains(&a) {
                            s.push(a);
                        }
                    }
                }
                s.sort_unstable();
                s
            }
        };
        debug_assert_eq!(i, schemas.len());
        schemas.push(s);
    }
    Ok(schemas)
}

impl<'a> Lower<'a> {
    fn dim(&self, s: Symbol) -> Result<u64, LowerError> {
        self.ctx
            .index_dims
            .get(&s)
            .copied()
            .ok_or_else(|| LowerError(format!("unknown index {s}")))
    }

    fn schema(&self, id: Id) -> &Attrs {
        &self.schemas[id.index()]
    }

    /// Insert transposes to orient `f` as `(row, col)`.
    fn orient(
        &mut self,
        f: LFac,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<NodeId, LowerError> {
        if (f.row, f.col) == (row, col) {
            return Ok(f.la);
        }
        if (f.col, f.row) == (row, col) {
            return Ok(self.arena.t(f.la));
        }
        Err(LowerError(format!(
            "cannot orient ({:?},{:?}) as ({row:?},{col:?})",
            f.row, f.col
        )))
    }

    /// Split the wanted orientation onto a child with schema `schema`.
    fn child_wants(
        &self,
        schema: &Attrs,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> (Option<Symbol>, Option<Symbol>) {
        let r = row.filter(|s| schema.contains(s));
        let c = col.filter(|s| schema.contains(s));
        (r, c)
    }

    fn lower_id(
        &mut self,
        id: Id,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<LFac, LowerError> {
        if let Some(&la) = self.cache.get(&(id, row, col)) {
            return Ok(LFac { la, row, col });
        }
        let fac = self.lower_uncached(id, row, col)?;
        let la = self.orient(fac, row, col)?;
        self.cache.insert((id, row, col), la);
        Ok(LFac { la, row, col })
    }

    fn lower_uncached(
        &mut self,
        id: Id,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<LFac, LowerError> {
        use Math::*;
        match self.expr.node(id).clone() {
            Lit(n) => Ok(LFac {
                la: self.arena.lit(n.get()),
                row: None,
                col: None,
            }),
            Dim(i) => {
                let sym = self.index_sym(i)?;
                let d = self.dim(sym)?;
                self.dim_constants = true;
                Ok(LFac {
                    la: self.arena.lit(d as f64),
                    row: None,
                    col: None,
                })
            }
            Bind([i, j, x]) => {
                let name = match self.expr.node(x) {
                    Sym(s) => *s,
                    other => return Err(LowerError(format!("bind of non-variable {other:?}"))),
                };
                let ri = self.opt_index_sym(i)?;
                let ci = self.opt_index_sym(j)?;
                let la = self.arena.var(name);
                Ok(LFac {
                    la,
                    row: ri,
                    col: ci,
                })
            }
            Add([a, b]) => self.lower_pointwise2(BinOp::Add, a, b, row, col),
            Mul([a, b]) => {
                // element-wise multiply; outer products (disjoint vector
                // schemas) become rank-1 matmuls
                let (sa, sb) = (self.schema(a).clone(), self.schema(b).clone());
                if row.is_some() && col.is_some() && sa.len() == 1 && sb.len() == 1 && sa != sb {
                    // u(i) * v(j) = u %*% t(v)
                    let (ra, ca) = self.child_wants(&sa, row, col);
                    let (rb, cb) = self.child_wants(&sb, row, col);
                    // ensure a is the row side
                    let (a, b, sa2) = if ra.is_some() {
                        (a, b, (ra, ca))
                    } else {
                        (b, a, (rb, cb))
                    };
                    let _ = sa2;
                    let fa = self.lower_id(a, row, None)?;
                    let fb = self.lower_id(b, None, col)?;
                    let la = self.arena.matmul(fa.la, fb.la);
                    return Ok(LFac { la, row, col });
                }
                self.lower_pointwise2(BinOp::Mul, a, b, row, col)
            }
            Agg(_) => self.lower_contraction(id, row, col),
            Pow([a, k]) => self.lower_pointwise2(BinOp::Pow, a, k, row, col),
            Inv(a) => {
                let (r, c) = self.child_wants(&self.schema(a).clone(), row, col);
                let fa = self.lower_id(a, r, c)?;
                let one = self.arena.lit(1.0);
                let la = self.arena.div(one, fa.la);
                Ok(LFac { la, row: r, col: c })
            }
            Exp(a) => self.lower_unary(UnOp::Exp, a, row, col),
            Log(a) => self.lower_unary(UnOp::Log, a, row, col),
            Sqrt(a) => self.lower_unary(UnOp::Sqrt, a, row, col),
            Abs(a) => self.lower_unary(UnOp::Abs, a, row, col),
            Sign(a) => self.lower_unary(UnOp::Sign, a, row, col),
            Sigmoid(a) => self.lower_unary(UnOp::Sigmoid, a, row, col),
            Sprop(a) => self.lower_unary(UnOp::Sprop, a, row, col),
            Gt([a, b]) => self.lower_pointwise2(BinOp::Gt, a, b, row, col),
            Lt([a, b]) => self.lower_pointwise2(BinOp::Lt, a, b, row, col),
            Ge([a, b]) => self.lower_pointwise2(BinOp::Ge, a, b, row, col),
            Le([a, b]) => self.lower_pointwise2(BinOp::Le, a, b, row, col),
            BMin([a, b]) => self.lower_pointwise2(BinOp::Min, a, b, row, col),
            BMax([a, b]) => self.lower_pointwise2(BinOp::Max, a, b, row, col),
            other => Err(LowerError(format!("cannot lower {other:?}"))),
        }
    }

    fn index_sym(&self, id: Id) -> Result<Symbol, LowerError> {
        match self.expr.node(id) {
            Math::Sym(s) => Ok(*s),
            other => Err(LowerError(format!("expected index, got {other:?}"))),
        }
    }

    fn opt_index_sym(&self, id: Id) -> Result<Option<Symbol>, LowerError> {
        match self.expr.node(id) {
            Math::Sym(s) => Ok(Some(*s)),
            Math::NoIdx => Ok(None),
            other => Err(LowerError(format!("expected index, got {other:?}"))),
        }
    }

    fn lower_unary(
        &mut self,
        op: UnOp,
        a: Id,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<LFac, LowerError> {
        let (r, c) = self.child_wants(&self.schema(a).clone(), row, col);
        let fa = self.lower_id(a, r, c)?;
        let la = self.arena.un(op, fa.la);
        Ok(LFac { la, row: r, col: c })
    }

    fn lower_pointwise2(
        &mut self,
        op: BinOp,
        a: Id,
        b: Id,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<LFac, LowerError> {
        let sa = self.schema(a).clone();
        let sb = self.schema(b).clone();
        let (ra, ca) = self.child_wants(&sa, row, col);
        let (rb, cb) = self.child_wants(&sb, row, col);
        // Outer-shaped union of two disjoint vectors needs materialized
        // broadcasts: u(i) + v(j) = u %*% ones(1,n) + ones(m,1) %*% v.
        if row.is_some() && col.is_some() && sa.len() == 1 && sb.len() == 1 && sa != sb {
            let fa = self.broadcast_vector(a, row, col)?;
            let fb = self.broadcast_vector(b, row, col)?;
            let la = self.arena.bin(op, fa, fb);
            return Ok(LFac { la, row, col });
        }
        let fa = self.lower_id(a, ra, ca)?;
        let fb = self.lower_id(b, rb, cb)?;
        let la = self.arena.bin(op, fa.la, fb.la);
        Ok(LFac { la, row, col })
    }

    /// Materialize a 1-attr operand to the full `(row, col)` space via a
    /// rank-1 matmul with a ones vector.
    fn broadcast_vector(
        &mut self,
        v: Id,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<NodeId, LowerError> {
        let s = self.schema(v).clone();
        let attr = s[0];
        let (row, col) = (row.unwrap(), col.unwrap());
        if attr == row {
            let f = self.lower_id(v, Some(row), None)?;
            self.dim_constants = true;
            let ones = self.arena.fill(1.0, 1, self.dim(col)?);
            Ok(self.arena.matmul(f.la, ones))
        } else if attr == col {
            let f = self.lower_id(v, None, Some(col))?;
            self.dim_constants = true;
            let ones = self.arena.fill(1.0, self.dim(row)?, 1);
            Ok(self.arena.matmul(ones, f.la))
        } else {
            Err(LowerError(format!(
                "operand attr {attr} not in output ({row}, {col})"
            )))
        }
    }

    /// Lower `Σ … Σ (f1 * f2 * …)`: collect aggregated indices and join
    /// factors, then schedule the contraction pairwise.
    fn lower_contraction(
        &mut self,
        id: Id,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<LFac, LowerError> {
        // gather nested aggregates
        let mut sums: Vec<Symbol> = Vec::new();
        let mut body = id;
        while let Math::Agg([i, b]) = self.expr.node(body) {
            sums.push(self.index_sym(*i)?);
            body = *b;
        }
        // flatten the join tree under the aggregates
        let mut factor_ids: Vec<Id> = Vec::new();
        let mut stack = vec![body];
        while let Some(n) = stack.pop() {
            match self.expr.node(n) {
                Math::Mul([a, b]) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                _ => factor_ids.push(n),
            }
        }

        // a sum index that does not occur in the body multiplies by dim
        let mut scale = 1.0;
        sums.retain(|&s| {
            if self.schema(body).contains(&s) {
                true
            } else {
                scale *= self.dim(s).unwrap_or(1) as f64;
                false
            }
        });
        if scale != 1.0 {
            // a concrete dimension product ends up in the plan (dim-1
            // indexes are pinned by the leaf shape classes, so only a
            // non-trivial scale makes the plan size-specific)
            self.dim_constants = true;
        }

        // lower every factor with its *natural* orientation (the bind's
        // own row/col roles), so `W %*% H` comes out instead of
        // `t(t(H) %*% t(W))`
        let mut factors: Vec<LFac> = Vec::new();
        let mut scalars: Vec<NodeId> = Vec::new();
        for fid in factor_ids {
            let schema = self.schema(fid).clone();
            match schema.len() {
                0 => {
                    let f = self.lower_id(fid, None, None)?;
                    scalars.push(f.la);
                }
                1 | 2 => {
                    let (r, c) = self.natural_orientation(fid);
                    let f = self.lower_id(fid, r, c)?;
                    factors.push(f);
                }
                n => {
                    return Err(LowerError(format!(
                        "factor with {n} attributes survived extraction"
                    )))
                }
            }
        }

        // point-wise pre-merge: factors with identical attribute sets
        // always combine element-wise (keeps `sum(X * log(WH))` intact
        // for the executor's wcemm kernel)
        let mut i = 0;
        while i < factors.len() {
            let mut j = i + 1;
            while j < factors.len() {
                if sorted(&factors[i].attrs()) == sorted(&factors[j].attrs()) {
                    let b = factors.remove(j);
                    let a = factors.remove(i);
                    let k = a.attrs().first().copied();
                    let merged = match k {
                        Some(k) => self.pointwise_pair(a, b, k)?,
                        None => {
                            let la = self.arena.mul(a.la, b.la);
                            LFac {
                                la,
                                row: None,
                                col: None,
                            }
                        }
                    };
                    factors.insert(i, merged);
                } else {
                    j += 1;
                }
            }
            i += 1;
        }

        // full-sum special case: a single factor whose attrs are all
        // aggregated lowers to a plain `sum(...)`
        if factors.len() == 1 {
            let attrs = sorted(&factors[0].attrs());
            let summed: Attrs = sums.clone();
            if !attrs.is_empty() && attrs == sorted(&summed) {
                let f = factors.pop().expect("one factor");
                let s = self.arena.sum(f.la);
                factors.push(LFac {
                    la: s,
                    row: None,
                    col: None,
                });
                sums.clear();
            }
        }

        // contraction loop: eliminate each summed index in turn
        while let Some(&k) = sums.first() {
            self.eliminate_index(k, &mut factors, (row, col))?;
            sums.remove(0);
        }

        // multiply the remaining factors point-wise (broadcasting)
        let mut result = self.pointwise_product(factors, row, col)?;

        // apply scalar factors and the dim scale
        if scale != 1.0 {
            let s = self.arena.lit(scale);
            result.la = self.arena.mul(result.la, s);
        }
        for s in scalars {
            result.la = self.arena.mul(result.la, s);
        }
        Ok(result)
    }

    /// Eliminate summed index `k` from `factors` (pair-wise contraction).
    /// `prefer` is the final output orientation, used to break ties.
    fn eliminate_index(
        &mut self,
        k: Symbol,
        factors: &mut Vec<LFac>,
        prefer: (Option<Symbol>, Option<Symbol>),
    ) -> Result<(), LowerError> {
        // point-wise merge factors with identical attr sets containing k
        loop {
            let with_k: Vec<usize> = (0..factors.len()).filter(|&i| factors[i].has(k)).collect();
            match with_k.len() {
                0 => {
                    // Σ_k over something without k: scale by dim(k).
                    // dim-1 indexes are pinned by the leaf shape classes,
                    // so only a non-trivial scale pins the plan's sizes.
                    let d = self.dim(k)? as f64;
                    if d != 1.0 {
                        self.dim_constants = true;
                    }
                    let lit = self.arena.lit(d);
                    if let Some(f) = factors.first_mut() {
                        f.la = self.arena.mul(f.la, lit);
                    } else {
                        factors.push(LFac {
                            la: lit,
                            row: None,
                            col: None,
                        });
                    }
                    return Ok(());
                }
                1 => {
                    // aggregate k away from the lone factor
                    let i = with_k[0];
                    let f = factors.remove(i);
                    let reduced = self.aggregate_away(f, k)?;
                    factors.push(reduced);
                    return Ok(());
                }
                2 => {
                    let (i, j) = (with_k[0], with_k[1]);
                    let fb = factors.remove(j);
                    let fa = factors.remove(i);
                    let merged = self.contract_pair(fa, fb, k, prefer)?;
                    factors.push(merged);
                    return Ok(());
                }
                _ => {
                    // merge two of them point-wise first: prefer a pair
                    // with identical attr sets, else a (vector, matrix)
                    // pair sharing k via broadcasting
                    let i = with_k[0];
                    let mut merged = None;
                    for &j in &with_k[1..] {
                        if sorted(&factors[i].attrs()) == sorted(&factors[j].attrs()) {
                            merged = Some(j);
                            break;
                        }
                    }
                    let j = merged.unwrap_or_else(|| {
                        // pick a vector to fold into a matrix (broadcast)
                        *with_k[1..]
                            .iter()
                            .find(|&&j| {
                                factors[i].attrs().len() == 1 || factors[j].attrs().len() == 1
                            })
                            .unwrap_or(&with_k[1])
                    });
                    let fb = factors.remove(j.max(i));
                    let fa = factors.remove(j.min(i));
                    let folded = self.pointwise_pair(fa, fb, k)?;
                    factors.push(folded);
                    // loop again: count of k-factors decreased by one
                }
            }
        }
    }

    /// `Σ_k f` for a single factor.
    fn aggregate_away(&mut self, f: LFac, k: Symbol) -> Result<LFac, LowerError> {
        if f.row == Some(k) && f.col.is_some() {
            // Σ over rows: colSums, oriented as a row vector; keep the
            // remaining attr in row position via transpose for uniformity
            let cs = self.arena.col_sums(f.la);
            let t = self.arena.t(cs);
            Ok(LFac {
                la: t,
                row: f.col,
                col: None,
            })
        } else if f.col == Some(k) && f.row.is_some() {
            let rs = self.arena.row_sums(f.la);
            Ok(LFac {
                la: rs,
                row: f.row,
                col: None,
            })
        } else if f.row == Some(k) && f.col.is_none() {
            let s = self.arena.sum(f.la);
            Ok(LFac {
                la: s,
                row: None,
                col: None,
            })
        } else {
            Err(LowerError(format!("factor does not carry index {k}")))
        }
    }

    /// Contract two factors over shared index `k`.
    fn contract_pair(
        &mut self,
        a: LFac,
        b: LFac,
        k: Symbol,
        prefer: (Option<Symbol>, Option<Symbol>),
    ) -> Result<LFac, LowerError> {
        let mut a = a;
        let mut b = b;
        let mut a_other = a.attrs().into_iter().find(|&s| s != k);
        let mut b_other = b.attrs().into_iter().find(|&s| s != k);
        // canonical order: the factor keeping an output attr goes on the
        // row side, so `X %*% v` comes out instead of `t(t(v) %*% t(X))`
        if a_other.is_none() && b_other.is_some() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut a_other, &mut b_other);
        } else {
            // both orders valid: pick the one inserting fewer transposes
            // (×2) and, as a tie-break, the output orientation closest to
            // what the caller ultimately wants (×1)
            let t_cost = |f: &LFac, row: Option<Symbol>, col: Option<Symbol>| -> u32 {
                u32::from((f.row, f.col) != (row, col))
            };
            let r_cost = |row: Option<Symbol>, col: Option<Symbol>| -> u32 {
                u32::from(row.is_some() && prefer.0.is_some() && row != prefer.0)
                    + u32::from(col.is_some() && prefer.1.is_some() && col != prefer.1)
            };
            let cost_ab = 2 * (t_cost(&a, a_other, Some(k)) + t_cost(&b, Some(k), b_other))
                + r_cost(a_other, b_other);
            let cost_ba = 2 * (t_cost(&b, b_other, Some(k)) + t_cost(&a, Some(k), a_other))
                + r_cost(b_other, a_other);
            if cost_ba < cost_ab {
                std::mem::swap(&mut a, &mut b);
                std::mem::swap(&mut a_other, &mut b_other);
            }
        }
        match (a_other, b_other) {
            // trace-shaped: Σ_k P(x,k) Q(k,x) = rowSums(P * t(Q)) — and
            // the degenerate vector·vector dot product
            (xa, xb) if xa == xb => {
                let (r, c) = (xa, Some(k));
                let la = self.lower_oriented(a, r, c)?;
                let lb = self.lower_oriented(b, r, c)?;
                let prod = self.arena.mul(la, lb);
                if xa.is_some() {
                    let rs = self.arena.row_sums(prod);
                    Ok(LFac {
                        la: rs,
                        row: xa,
                        col: None,
                    })
                } else {
                    let s = self.arena.sum(prod);
                    Ok(LFac {
                        la: s,
                        row: None,
                        col: None,
                    })
                }
            }
            // standard matmul: (x, k) · (k, y)
            (x, y) => {
                let la = self.lower_oriented(a, x, Some(k))?;
                let lb = self.lower_oriented(b, Some(k), y)?;
                let mm = self.arena.matmul(la, lb);
                Ok(LFac {
                    la: mm,
                    row: x,
                    col: y,
                })
            }
        }
    }

    /// Point-wise multiply two factors sharing `k` (broadcast as needed).
    fn pointwise_pair(&mut self, a: LFac, b: LFac, k: Symbol) -> Result<LFac, LowerError> {
        // choose the factor with more attrs as the shape donor
        let (big, small) = if a.attrs().len() >= b.attrs().len() {
            (a, b)
        } else {
            (b, a)
        };
        let (r, c) = (big.row, big.col);
        let lb = self.lower_oriented(big, r, c)?;
        // orient the small factor consistently with the big one
        let ls = if small.attrs().len() == 2 {
            self.lower_oriented(small, r, c)?
        } else {
            let attr = small.attrs()[0];
            if r == Some(attr) {
                self.lower_oriented(small, Some(attr), None)?
            } else if c == Some(attr) {
                // column-attr vector broadcasts as a row vector
                self.lower_oriented(small, None, Some(attr))?
            } else {
                return Err(LowerError(format!(
                    "cannot broadcast factor over ({r:?},{c:?})"
                )));
            }
        };
        let prod = self.arena.mul(lb, ls);
        let _ = k;
        Ok(LFac {
            la: prod,
            row: r,
            col: c,
        })
    }

    fn lower_oriented(
        &mut self,
        f: LFac,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<NodeId, LowerError> {
        self.orient(f, row, col)
    }

    /// The orientation a sub-term "wants" — the one requiring the fewest
    /// transposes when lowered. Each `bind` in the sub-term votes for its
    /// attributes' roles (its first index is a row, its second a column);
    /// the orientation maximizing agreement with the votes wins.
    fn natural_orientation(&self, id: Id) -> (Option<Symbol>, Option<Symbol>) {
        let schema = self.schema(id).clone();
        let mut votes: std::collections::HashMap<Symbol, (u32, u32)> =
            std::collections::HashMap::new();
        self.collect_role_votes(id, &mut votes);
        let rv = |s: Symbol| votes.get(&s).map_or(0, |v| v.0);
        let cv = |s: Symbol| votes.get(&s).map_or(0, |v| v.1);
        match schema.len() {
            0 => (None, None),
            1 => {
                let a = schema[0];
                if cv(a) > rv(a) {
                    (None, Some(a))
                } else {
                    (Some(a), None)
                }
            }
            _ => {
                let (a, b) = (schema[0], schema[1]);
                if rv(b) + cv(a) > rv(a) + cv(b) {
                    (Some(b), Some(a))
                } else {
                    (Some(a), Some(b))
                }
            }
        }
    }

    fn collect_role_votes(
        &self,
        id: Id,
        votes: &mut std::collections::HashMap<Symbol, (u32, u32)>,
    ) {
        match self.expr.node(id) {
            Math::Bind([i, j, _]) => {
                if let Math::Sym(s) = self.expr.node(*i) {
                    votes.entry(*s).or_default().0 += 1;
                }
                if let Math::Sym(s) = self.expr.node(*j) {
                    votes.entry(*s).or_default().1 += 1;
                }
            }
            node => {
                for &c in node.children() {
                    self.collect_role_votes(c, votes);
                }
            }
        }
    }

    /// Multiply the remaining (un-summed) factors point-wise and orient.
    fn pointwise_product(
        &mut self,
        factors: Vec<LFac>,
        row: Option<Symbol>,
        col: Option<Symbol>,
    ) -> Result<LFac, LowerError> {
        if factors.is_empty() {
            return Ok(LFac {
                la: self.arena.lit(1.0),
                row: None,
                col: None,
            });
        }
        // bucket the factors by the attributes they carry; LA broadcast
        // combines a full matrix with either vector kind, but two
        // *disjoint* vectors need a rank-1 matmul (outer product), not an
        // element-wise multiply
        let mut fulls: Vec<NodeId> = Vec::new();
        let mut rowvecs: Vec<NodeId> = Vec::new(); // (row, None) — m×1
        let mut colvecs: Vec<NodeId> = Vec::new(); // (None, col) — 1×n
        let mut scalars: Vec<NodeId> = Vec::new();
        for f in factors {
            match f.attrs().as_slice() {
                [] => scalars.push(f.la),
                [a, b] => {
                    debug_assert!(row == Some(*a) || row == Some(*b) || col == Some(*a));
                    fulls.push(self.lower_oriented(f, row, col)?);
                }
                [attr] => {
                    if row == Some(*attr) {
                        rowvecs.push(self.lower_oriented(f, Some(*attr), None)?);
                    } else if col == Some(*attr) {
                        colvecs.push(self.lower_oriented(f, None, Some(*attr))?);
                    } else {
                        return Err(LowerError(format!(
                            "residual factor attr {attr} outside output schema"
                        )));
                    }
                }
                _ => unreachable!("factors carry at most two attrs"),
            }
        }
        let fold = |arena: &mut ExprArena, v: Vec<NodeId>| -> Option<NodeId> {
            v.into_iter().reduce(|a, b| arena.mul(a, b))
        };
        let full = fold(&mut self.arena, fulls);
        let rv = fold(&mut self.arena, rowvecs);
        let cv = fold(&mut self.arena, colvecs);
        let mut acc = match (full, rv, cv) {
            // no full matrix but both vector kinds: rank-1 outer product
            (None, Some(r), Some(c)) => Some(self.arena.matmul(r, c)),
            (f, r, c) => {
                let mut acc = f;
                for v in [r, c].into_iter().flatten() {
                    acc = Some(match acc {
                        None => v,
                        Some(prev) => self.arena.mul(prev, v),
                    });
                }
                acc
            }
        };
        for s in scalars {
            acc = Some(match acc {
                None => s,
                Some(prev) => self.arena.mul(prev, s),
            });
        }
        // the result's logical orientation: vectors-only products keep a
        // vector shape unless both kinds were present
        let (out_row, out_col) = match (&acc, row, col) {
            (Some(_), r, c) => (r, c),
            (None, _, _) => (None, None),
        };
        Ok(LFac {
            la: acc.expect("non-empty"),
            row: out_row,
            col: out_col,
        })
    }
}

// Peephole cleanup: `x + (-1)·y → x − y`, `(-1)·y → -y`, `x · 1 → x`.
// (Run via `clean_rec` with a caller-owned memo so multi-root plans keep
// their sharing through the cleanup.)

fn is_neg_one(arena: &ExprArena, id: NodeId) -> bool {
    matches!(arena.node(id), LaNode::Scalar(n) if n.get() == -1.0)
}

fn neg_factor(arena: &ExprArena, id: NodeId) -> Option<NodeId> {
    match arena.node(id) {
        LaNode::Bin(BinOp::Mul, a, b) if is_neg_one(arena, *a) => Some(*b),
        LaNode::Bin(BinOp::Mul, a, b) if is_neg_one(arena, *b) => Some(*a),
        // children are cleaned first, so `(-1)·y` may already be `-y`
        LaNode::Un(UnOp::Neg, a) => Some(*a),
        _ => None,
    }
}

fn clean_rec(arena: &mut ExprArena, id: NodeId, memo: &mut FxHashMap<NodeId, NodeId>) -> NodeId {
    if let Some(&done) = memo.get(&id) {
        return done;
    }
    let node = *arena.node(id);
    let result = match node {
        LaNode::Bin(BinOp::Add, a, b) => {
            let ca = clean_rec(arena, a, memo);
            let cb = clean_rec(arena, b, memo);
            if let Some(y) = neg_factor(arena, cb) {
                arena.sub(ca, y)
            } else if let Some(y) = neg_factor(arena, ca) {
                arena.sub(cb, y)
            } else {
                arena.add(ca, cb)
            }
        }
        LaNode::Bin(BinOp::Mul, a, b) => {
            let ca = clean_rec(arena, a, memo);
            let cb = clean_rec(arena, b, memo);
            let one = |arena: &ExprArena, id: NodeId| matches!(arena.node(id), LaNode::Scalar(n) if n.get() == 1.0);
            // a reciprocal factor folds back into a division, keeping
            // SystemML's sparse-division kernels (wdivmm) applicable
            let recip = |arena: &ExprArena, id: NodeId| -> Option<NodeId> {
                match arena.node(id) {
                    LaNode::Bin(BinOp::Div, n, d) if one(arena, *n) => Some(*d),
                    _ => None,
                }
            };
            if one(arena, ca) {
                cb
            } else if one(arena, cb) {
                ca
            } else if is_neg_one(arena, ca) {
                arena.un(UnOp::Neg, cb)
            } else if is_neg_one(arena, cb) {
                arena.un(UnOp::Neg, ca)
            } else if let Some(d) = recip(arena, cb) {
                arena.div(ca, d)
            } else if let Some(d) = recip(arena, ca) {
                arena.div(cb, d)
            } else {
                arena.mul(ca, cb)
            }
        }
        LaNode::Bin(op, a, b) => {
            let ca = clean_rec(arena, a, memo);
            let cb = clean_rec(arena, b, memo);
            arena.bin(op, ca, cb)
        }
        LaNode::Un(op, a) => {
            let ca = clean_rec(arena, a, memo);
            // t(t(x)) → x
            if op == UnOp::T {
                if let LaNode::Un(UnOp::T, inner) = arena.node(ca) {
                    return {
                        let r = *inner;
                        memo.insert(id, r);
                        r
                    };
                }
            }
            arena.un(op, ca)
        }
        leaf => arena.insert(leaf),
    };
    memo.insert(id, result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::VarMeta;
    use crate::eval::{eval_la, Tensor};
    use crate::translate::translate;
    use spores_ir::parse_expr;
    use std::collections::HashMap;

    /// translate → lower must round-trip LA semantics exactly.
    fn roundtrip_check(src: &str, inputs: &[(&str, Tensor)]) -> String {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let tensors: HashMap<Symbol, Tensor> = inputs
            .iter()
            .map(|(n, t)| (Symbol::new(n), t.clone()))
            .collect();
        let vars: HashMap<Symbol, VarMeta> = inputs
            .iter()
            .map(|(n, t)| (Symbol::new(n), VarMeta::dense(t.rows as u64, t.cols as u64)))
            .collect();
        let expected = eval_la(&arena, root, &tensors).unwrap();

        let tr = translate(&arena, root, &vars).unwrap();
        let (la2, root2) = lower(&tr.expr, tr.row, tr.col, &tr.ctx)
            .unwrap_or_else(|e| panic!("{src}: {e} (plan {})", tr.expr));
        let got = eval_la(&la2, root2, &tensors).unwrap();
        assert!(
            expected.approx_eq(&got, 1e-9),
            "{src}: expected {expected:?}, got {got:?} via {}",
            la2.display(root2)
        );
        la2.display(root2)
    }

    fn t(rows: usize, cols: usize, data: &[f64]) -> Tensor {
        Tensor::new(rows, cols, data.to_vec())
    }

    fn corpus_inputs() -> Vec<(&'static str, Tensor)> {
        vec![
            (
                "X",
                t(3, 4, &[1., -2., 3., 0., 0., 5., -1., 2., 4., 0., 0., 1.]),
            ),
            (
                "Y",
                t(3, 4, &[2., 0., 1., 1., -3., 1., 0., 0., 2., 2., 1., -1.]),
            ),
            ("u", t(3, 1, &[1., -1., 2.])),
            ("v", t(4, 1, &[0.5, 2., -1., 1.])),
            ("s", Tensor::scalar(3.0)),
        ]
    }

    #[test]
    fn roundtrips_semantics_on_corpus() {
        let inputs = corpus_inputs();
        for src in [
            "X + Y",
            "X - Y",
            "X * Y",
            "X %*% t(Y)",
            "t(X) %*% X",
            "X %*% v",
            "t(u) %*% X",
            "u %*% t(v)",
            "sum(X)",
            "rowSums(X * Y)",
            "colSums(X)",
            "sum((X - u %*% t(v))^2)",
            "X * u",
            "X + s",
            "sigmoid(X)",
            "-X",
            "sum(t(X))",
            "colSums(X %*% t(Y))",
            "sum(u) * sum(v)",
            "(X %*% t(Y)) %*% u",
            "t(v) %*% t(X)",
            "X / (Y + 10)",
            "exp(X * 0.1)",
            "min(X, Y) + max(X, Y)",
            "sum(X %*% t(Y))",
            "t(u) %*% X %*% v",
        ] {
            roundtrip_check(src, &inputs);
        }
    }

    #[test]
    fn matmul_roundtrip_is_clean() {
        let shown = roundtrip_check("X %*% v", &corpus_inputs());
        assert_eq!(shown, "X %*% v");
    }

    #[test]
    fn subtraction_is_restored() {
        let shown = roundtrip_check("X - Y", &corpus_inputs());
        assert_eq!(shown, "X - Y");
    }

    #[test]
    fn transpose_orientation_restored() {
        let shown = roundtrip_check("t(X)", &corpus_inputs());
        assert_eq!(shown, "t(X)");
    }

    #[test]
    fn trace_shaped_contraction() {
        // Σ_ik X(i,k)·Y(i,k) as sum(X * Y) — and the optimizer-shaped
        // variant via matmul: sum over diag(X Yᵀ)
        roundtrip_check("sum(X * Y)", &corpus_inputs());
    }

    #[test]
    fn outer_sum_broadcasts() {
        // u(i) + v(j) has no direct LA op; lowering must synthesize
        // rank-1 broadcasts
        let expr = crate::lang::parse_math("(+ (b i _ u) (b j _ v))").unwrap();
        let ctx = crate::analysis::Context::new()
            .with_var("u", VarMeta::dense(3, 1))
            .with_var("v", VarMeta::dense(4, 1))
            .with_index("i", 3)
            .with_index("j", 4);
        let (arena, root) =
            lower(&expr, Some(Symbol::new("i")), Some(Symbol::new("j")), &ctx).unwrap();
        let tensors = HashMap::from([
            (Symbol::new("u"), t(3, 1, &[1., 2., 3.])),
            (Symbol::new("v"), t(4, 1, &[10., 20., 30., 40.])),
        ]);
        let got = eval_la(&arena, root, &tensors).unwrap();
        assert_eq!(got.get(1, 2), 2. + 30.);
        assert_eq!(got.rows, 3);
        assert_eq!(got.cols, 4);
    }

    #[test]
    fn multiway_contraction_lowers_like_mmchain() {
        // Σ_j Σ_k A(i,j) B(j,k) C(k,l) — the three-factor contraction an
        // extracted plan may contain (wide joins fuse, §DESIGN)
        let expr = crate::lang::parse_math("(sum j (sum k (* (b i j A) (* (b j k B) (b k l C)))))")
            .unwrap();
        let ctx = crate::analysis::Context::new()
            .with_var("A", VarMeta::dense(2, 3))
            .with_var("B", VarMeta::dense(3, 4))
            .with_var("C", VarMeta::dense(4, 5))
            .with_index("i", 2)
            .with_index("j", 3)
            .with_index("k", 4)
            .with_index("l", 5);
        let (arena, root) =
            lower(&expr, Some(Symbol::new("i")), Some(Symbol::new("l")), &ctx).unwrap();
        // reference: A %*% B %*% C
        let mut ref_arena = ExprArena::new();
        let ref_root = parse_expr(&mut ref_arena, "A %*% B %*% C").unwrap();
        let tensors = HashMap::from([
            (Symbol::new("A"), t(2, 3, &[1., 2., 3., 4., 5., 6.])),
            (
                Symbol::new("B"),
                t(3, 4, &[1., 0., 2., -1., 3., 1., 0., 2., 0., 1., 1., 1.]),
            ),
            (
                Symbol::new("C"),
                t(
                    4,
                    5,
                    &[
                        1., 2., 0., 1., -1., 0., 1., 1., 0., 2., 2., 0., 1., 1., 0., 1., 1., 0.,
                        2., 1.,
                    ],
                ),
            ),
        ]);
        let want = eval_la(&ref_arena, ref_root, &tensors).unwrap();
        let got = eval_la(&arena, root, &tensors).unwrap();
        assert!(want.approx_eq(&got, 1e-9), "{}", arena.display(root));
    }

    #[test]
    fn vector_in_contraction_broadcasts() {
        // Σ_k u(k) A(k,j) with an extra diagonal-ish vector factor:
        // Σ_k w(k) u(k) A(k,j)
        let expr =
            crate::lang::parse_math("(sum k (* (b k _ w) (* (b k _ u) (b k j A))))").unwrap();
        let ctx = crate::analysis::Context::new()
            .with_var("w", VarMeta::dense(3, 1))
            .with_var("u", VarMeta::dense(3, 1))
            .with_var("A", VarMeta::dense(3, 4))
            .with_index("k", 3)
            .with_index("j", 4);
        let (arena, root) = lower(&expr, None, Some(Symbol::new("j")), &ctx).unwrap();
        let tensors = HashMap::from([
            (Symbol::new("w"), t(3, 1, &[1., 2., 0.5])),
            (Symbol::new("u"), t(3, 1, &[2., 1., 4.])),
            (
                Symbol::new("A"),
                t(3, 4, &[1., 0., 2., 1., 1., 1., 0., 0., 2., 1., 1., 1.]),
            ),
        ]);
        let got = eval_la(&arena, root, &tensors).unwrap();
        // manual: Σ_k w_k u_k A_kj
        let want = |j: usize| {
            (0..3)
                .map(|k| {
                    tensors[&Symbol::new("w")].get(k, 0)
                        * tensors[&Symbol::new("u")].get(k, 0)
                        * tensors[&Symbol::new("A")].get(k, j)
                })
                .sum::<f64>()
        };
        for j in 0..4 {
            assert!((got.bget(0, j) - want(j)).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_la_nodes_in_plan() {
        let expr = crate::lang::parse_math("(l+ X Y)").unwrap();
        let ctx = crate::analysis::Context::new();
        assert!(lower(&expr, None, None, &ctx).is_err());
    }
}
