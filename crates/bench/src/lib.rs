//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (see DESIGN.md's per-experiment index):
//!
//! * `fig14` — derivability of all hand-coded SystemML rewrites
//! * `fig15` — run time of the 5 programs under base/opt2/saturation
//! * `fig16` — compile-time breakdown per saturation/extraction strategy
//! * `fig17` — performance impact of extraction strategies
//! * `ablation` — sampling-limit sweep, greedy-vs-ILP gap, rule-set
//!   ablations (the design-choice experiments DESIGN.md calls out)

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// Fixed-width text table writer (the tables the binaries print).
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}");
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Milliseconds with 1 decimal.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Human count (1.2M etc).
pub fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn human_formats() {
        assert_eq!(human(532), "532");
        assert_eq!(human(1_500), "1.5K");
        assert_eq!(human(2_000_000), "2.0M");
    }
}
