//! Compile-and-run harness for the workloads.
//!
//! Reproduces the three configurations of §4.2:
//!
//! * [`Mode::Base`]   — SystemML optimization level 1: local rewrites
//!   only, no operator fusion.
//! * [`Mode::Opt2`]   — level 2 (SystemML's default): all hand-coded
//!   sum-product rewrites + fusion.
//! * [`Mode::Spores`] — the SPORES optimizer (saturation + extraction),
//!   running inside the same pipeline and executor.
//!
//! Compilation walks the statements in order, maintaining shape/sparsity
//! metadata for assigned variables; execution then loops the compiled
//! statements with persistent state, accumulating wall-clock time and
//! the deterministic [`ExecStats`] counters.

use crate::workloads::Workload;
use spores_core::{
    ExtractorKind, Optimizer, OptimizerConfig, PhaseTimings, SaturationStats, VarMeta,
    WorkloadOptimized,
};
use spores_egraph::Scheduler;
use spores_exec::{ExecConfig, ExecError, ExecStats, Executor};
use spores_ir::{ExprArena, NodeId, Symbol, WorkloadExpr};
use spores_systemml::{HeuristicRewriter, OptLevel, VarInfo};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which optimizer compiles the program.
#[derive(Clone, Debug)]
pub enum Mode {
    Base,
    Opt2,
    Spores {
        scheduler: Scheduler,
        extractor: ExtractorKind,
    },
}

impl Mode {
    /// The default SPORES configuration (sampling + greedy, the paper's
    /// recommended setting after §4.3).
    pub fn spores() -> Mode {
        Mode::Spores {
            scheduler: Scheduler::default(),
            extractor: ExtractorKind::Greedy,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Mode::Base => "base",
            Mode::Opt2 => "opt2",
            Mode::Spores {
                extractor: ExtractorKind::Greedy,
                scheduler: Scheduler::Sampling { .. },
            } => "S+greedy",
            Mode::Spores {
                extractor: ExtractorKind::Ilp,
                scheduler: Scheduler::Sampling { .. },
            } => "S+ILP",
            Mode::Spores {
                extractor: ExtractorKind::Greedy,
                scheduler: Scheduler::DepthFirst,
            } => "D+greedy",
            Mode::Spores {
                extractor: ExtractorKind::Ilp,
                scheduler: Scheduler::DepthFirst,
            } => "D+ILP",
        }
    }

    fn fusion(&self) -> bool {
        !matches!(self, Mode::Base)
    }
}

/// A compiled program: one optimized DAG per statement.
pub struct Compiled {
    pub statements: Vec<(Symbol, ExprArena, NodeId)>,
    pub report: CompileReport,
}

/// Compile-time measurements (Figure 16).
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    pub total: Duration,
    /// Per-phase breakdown summed over statements (SPORES modes only).
    pub phases: Option<PhaseTimings>,
    /// Did saturation converge on every statement?
    pub converged: bool,
    /// Compile-time timeout tripped (depth-first on large programs).
    pub timed_out: bool,
    /// Peak e-graph size over the statements.
    pub max_e_nodes: usize,
}

/// Execution measurements (Figures 15/17).
#[derive(Clone, Debug)]
pub struct RunReport {
    pub mode: &'static str,
    pub compile: CompileReport,
    pub exec_time: Duration,
    pub stats: ExecStats,
    /// Final values of scalar (1×1) variables, for cross-mode validation.
    pub scalars: HashMap<Symbol, f64>,
}

/// Saturation budget used by the SPORES modes (the paper's 2.5 s cap).
pub const SATURATION_TIMEOUT: Duration = Duration::from_millis(2500);

/// The compilation context of one statement: its target, its root in the
/// shared arena, and the variable metadata visible at that point of the
/// program (inputs plus earlier targets, which get a dense estimate —
/// the single place that rule lives).
struct StatementCtx {
    target: Symbol,
    root: spores_ir::NodeId,
    meta: HashMap<Symbol, VarMeta>,
}

/// Walk the statements in program order, threading shape/sparsity
/// metadata for assigned variables exactly as compilation sees it.
fn statement_contexts(workload: &Workload) -> (ExprArena, Vec<StatementCtx>) {
    let (arena, roots) = workload.parse();
    let mut meta: HashMap<Symbol, VarMeta> = workload
        .input_meta()
        .into_iter()
        .map(|(s, (shape, sparsity))| (s, VarMeta { shape, sparsity }))
        .collect();
    let mut contexts = Vec::with_capacity(roots.len());
    for (target, root) in roots {
        let shape_env: spores_ir::ShapeEnv = meta.iter().map(|(&s, m)| (s, m.shape)).collect();
        let out_shape = arena
            .shape_of(root, &shape_env)
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        contexts.push(StatementCtx {
            target,
            root,
            meta: meta.clone(),
        });
        // computed variables: dense estimate unless already known
        meta.entry(target).or_insert(VarMeta {
            shape: out_shape,
            sparsity: 1.0,
        });
    }
    (arena, contexts)
}

/// Compile `workload` under `mode`.
pub fn compile(workload: &Workload, mode: &Mode) -> Compiled {
    let _span =
        spores_telemetry::span!("ml.compile", workload = workload.name, mode = mode.label(),);
    let t0 = Instant::now();
    let (arena, contexts) = statement_contexts(workload);

    let mut statements = Vec::with_capacity(contexts.len());
    let mut phases = PhaseTimings::default();
    let mut converged = true;
    let mut timed_out = false;
    let mut max_e_nodes = 0;

    for StatementCtx { target, root, meta } in contexts {
        let (new_arena, new_root) = match mode {
            Mode::Base | Mode::Opt2 => {
                let level = if matches!(mode, Mode::Base) {
                    OptLevel::Base
                } else {
                    OptLevel::Opt2
                };
                let vars: HashMap<Symbol, VarInfo> = meta
                    .iter()
                    .map(|(&s, m)| {
                        (
                            s,
                            VarInfo {
                                shape: m.shape,
                                sparsity: m.sparsity,
                            },
                        )
                    })
                    .collect();
                let r = HeuristicRewriter::new(level).rewrite(&arena, root, &vars);
                (r.arena, r.root)
            }
            Mode::Spores {
                scheduler,
                extractor,
            } => {
                let opt = Optimizer::new(OptimizerConfig {
                    scheduler: scheduler.clone(),
                    extractor: *extractor,
                    time_limit: SATURATION_TIMEOUT,
                    // sampling spreads match applications across rules, so
                    // it needs more iterations than depth-first to reach
                    // the fixpoint (§4.3: "sampling takes longer to
                    // converge when full saturation is possible")
                    iter_limit: 100,
                    ilp_time_limit: std::time::Duration::from_secs(2),
                    ..OptimizerConfig::default()
                });
                let got = opt
                    .optimize(&arena, root, &meta)
                    .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
                phases.translate += got.timings.translate;
                phases.saturate += got.timings.saturate;
                phases.extract += got.timings.extract;
                phases.lower += got.timings.lower;
                converged &= got.saturation.converged;
                timed_out |= matches!(
                    got.saturation.stop_reason,
                    Some(spores_egraph::StopReason::TimeLimit(_))
                );
                max_e_nodes = max_e_nodes.max(got.saturation.e_nodes);
                (got.arena, got.root)
            }
        };
        statements.push((target, new_arena, new_root));
    }

    let report = CompileReport {
        total: t0.elapsed(),
        phases: matches!(mode, Mode::Spores { .. }).then_some(phases),
        converged,
        timed_out,
        max_e_nodes,
    };
    Compiled { statements, report }
}

/// Execute a compiled program for the workload's iteration count.
pub fn execute(
    workload: &Workload,
    compiled: &Compiled,
    mode: &Mode,
) -> Result<RunReport, ExecError> {
    let _span =
        spores_telemetry::span!("ml.execute", workload = workload.name, mode = mode.label(),);
    let mut exec = Executor::new(ExecConfig {
        fusion: mode.fusion(),
    });
    let mut env = workload.inputs.clone();
    let t0 = Instant::now();
    for _ in 0..workload.iterations {
        for (target, arena, root) in &compiled.statements {
            let value = exec.run(arena, *root, &env)?;
            env.insert(*target, value);
        }
    }
    let exec_time = t0.elapsed();
    let scalars = env
        .iter()
        .filter(|(_, m)| m.is_scalar())
        .map(|(&s, m)| (s, m.as_scalar()))
        .collect();
    Ok(RunReport {
        mode: mode.label(),
        compile: compiled.report.clone(),
        exec_time,
        stats: exec.stats,
        scalars,
    })
}

/// Compile + execute in one call.
pub fn run(workload: &Workload, mode: &Mode) -> Result<RunReport, ExecError> {
    let compiled = compile(workload, mode);
    execute(workload, &compiled, mode)
}

/// A workload program converted to a pure SSA expression bundle.
///
/// Sequential programs reassign variables (`U = U - 0.0001 * GU`), which
/// is unsound to merge into one e-graph naively: two occurrences of `U`
/// before and after the assignment denote different values. The bundle
/// builder version-renames every assignment target (`U@1`, `U@2`, …) so
/// each root binds a fresh name and later statements read exactly the
/// version they mean — making all syntactic sharing in the bundle
/// genuine value sharing.
#[derive(Clone, Debug)]
pub struct WorkloadBundle {
    pub expr: WorkloadExpr,
    /// Metadata for every leaf the bundle reads: the workload inputs
    /// (original names) plus the version symbols of computed targets
    /// (with the same estimates per-statement compilation uses).
    pub vars: HashMap<Symbol, VarMeta>,
    /// `target ← final version symbol`, applied after each pass.
    pub writebacks: Vec<(Symbol, Symbol)>,
}

/// Build the SSA bundle of a workload's statements. See [`WorkloadBundle`].
pub fn workload_bundle(workload: &Workload) -> WorkloadBundle {
    let (parse_arena, roots) = workload.parse();
    let mut vars: HashMap<Symbol, VarMeta> = workload
        .input_meta()
        .into_iter()
        .map(|(s, (shape, sparsity))| (s, VarMeta { shape, sparsity }))
        .collect();
    let mut arena = ExprArena::new();
    let mut cur: HashMap<Symbol, Symbol> = HashMap::new();
    let mut versions: HashMap<Symbol, usize> = HashMap::new();
    let mut bundle_roots = Vec::with_capacity(roots.len());
    let mut writeback_order: Vec<Symbol> = Vec::new();
    for (target, root) in roots {
        // reads resolve through the *current* version map (the target's
        // own RHS still reads the previous version)
        let root_b = arena.graft(&parse_arena, root, &cur);
        let shape_env: spores_ir::ShapeEnv = vars.iter().map(|(&s, m)| (s, m.shape)).collect();
        let shape = arena
            .shape_of(root_b, &shape_env)
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        let k = versions.entry(target).and_modify(|k| *k += 1).or_insert(1);
        let version = Symbol::new(&format!("{target}@{k}"));
        // computed versions: keep the input's metadata when the target is
        // an input of matching shape (the single rule statement_contexts
        // applies), else a dense estimate
        let meta = match vars.get(&target) {
            Some(m) if m.shape == shape => *m,
            _ => VarMeta {
                shape,
                sparsity: 1.0,
            },
        };
        vars.insert(version, meta);
        if !writeback_order.contains(&target) {
            writeback_order.push(target);
        }
        cur.insert(target, version);
        bundle_roots.push((version, root_b));
    }
    let writebacks = writeback_order.into_iter().map(|t| (t, cur[&t])).collect();
    let expr =
        WorkloadExpr::new(arena, bundle_roots).unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    WorkloadBundle {
        expr,
        vars,
        writebacks,
    }
}

/// A workload compiled in workload mode: ONE shared multi-root plan.
pub struct WorkloadCompiled {
    /// The shared plan arena (common subplans bound once).
    pub arena: ExprArena,
    /// Per-statement `(version symbol, plan root)`, in program order.
    pub roots: Vec<(Symbol, NodeId)>,
    /// `target ← final version` write-backs after each pass.
    pub writebacks: Vec<(Symbol, Symbol)>,
    pub report: CompileReport,
    /// Statistics of the single shared saturation run (`None` when the
    /// plan came from a service cache hit).
    pub saturation: Option<SaturationStats>,
}

/// Compile a workload in workload mode: every statement saturated in one
/// shared e-graph, one multi-root plan extracted (the ROADMAP's
/// cross-statement CSE step).
pub fn compile_workload(workload: &Workload) -> WorkloadCompiled {
    let t0 = Instant::now();
    let bundle = workload_bundle(workload);
    let opt = Optimizer::new(workload_optimizer_config());
    let got: WorkloadOptimized = opt
        .optimize_workload(&bundle.expr, &bundle.vars)
        .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    let report = CompileReport {
        total: t0.elapsed(),
        phases: Some(got.timings),
        converged: got.saturation.converged,
        timed_out: matches!(
            got.saturation.stop_reason,
            Some(spores_egraph::StopReason::TimeLimit(_))
        ),
        max_e_nodes: got.saturation.e_nodes,
    };
    WorkloadCompiled {
        arena: got.arena,
        roots: got.roots,
        writebacks: bundle.writebacks,
        report,
        saturation: Some(got.saturation),
    }
}

/// The optimizer configuration workload mode runs under (the same
/// budgets `Mode::spores` uses per statement, spent once per workload).
pub fn workload_optimizer_config() -> OptimizerConfig {
    OptimizerConfig {
        scheduler: Scheduler::default(),
        extractor: ExtractorKind::Greedy,
        time_limit: SATURATION_TIMEOUT,
        iter_limit: 100,
        ilp_time_limit: Duration::from_secs(2),
        ..OptimizerConfig::default()
    }
}

/// Execute a workload-mode compiled program for the workload's iteration
/// count: each pass evaluates the shared plan's roots with one memo
/// (shared subplans computed once), then writes final versions back to
/// the original target names.
pub fn execute_workload(
    workload: &Workload,
    compiled: &WorkloadCompiled,
) -> Result<RunReport, ExecError> {
    let mut exec = Executor::new(ExecConfig { fusion: true });
    let mut env = workload.inputs.clone();
    let t0 = Instant::now();
    for _ in 0..workload.iterations {
        exec.run_many(&compiled.arena, &compiled.roots, &mut env)?;
        // move (not copy) each final version onto its target name
        for (target, version) in &compiled.writebacks {
            if let Some(v) = env.remove(version) {
                env.insert(*target, v);
            }
        }
        // drop the remaining version bindings so the next pass
        // recomputes them
        for (version, _) in &compiled.roots {
            env.remove(version);
        }
    }
    let exec_time = t0.elapsed();
    let scalars = env
        .iter()
        .filter(|(_, m)| m.is_scalar())
        .map(|(&s, m)| (s, m.as_scalar()))
        .collect();
    Ok(RunReport {
        mode: "workload",
        compile: compiled.report.clone(),
        exec_time,
        stats: exec.stats,
        scalars,
    })
}

/// Compile + execute a workload in workload mode.
pub fn run_workload_mode(workload: &Workload) -> Result<RunReport, ExecError> {
    let compiled = compile_workload(workload);
    execute_workload(workload, &compiled)
}

/// Compile a workload in workload mode *through* an
/// [`spores_service::OptimizerService`]: the whole bundle is one request
/// keyed by its workload-level fingerprint, so a repeated workload is
/// served from the cache as a single entry (one α-instantiation instead
/// of one saturation per statement — or even N cache probes).
pub fn compile_workload_with_service(
    workload: &Workload,
    service: &spores_service::OptimizerService,
) -> WorkloadCompiled {
    let t0 = Instant::now();
    let bundle = workload_bundle(workload);
    let served = service
        .optimize_workload(spores_service::WorkloadRequest::new(
            bundle.expr,
            bundle.vars,
        ))
        .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    let report = CompileReport {
        total: t0.elapsed(),
        // for cache hits these describe the *cached* pipeline run
        phases: Some(served.timings),
        converged: served.converged,
        timed_out: served.timed_out,
        max_e_nodes: served.e_nodes,
    };
    WorkloadCompiled {
        arena: served.arena,
        roots: served.roots,
        writebacks: bundle.writebacks,
        report,
        saturation: None,
    }
}

/// The per-statement service requests of a workload, in statement order,
/// paired with the statement targets. The metadata threading is shared
/// with [`compile`] (via the same statement walk), so service-compiled
/// plans see exactly the metadata `Mode::spores` compilation sees. Each
/// request carries only the statement's own reachable sub-DAG and the
/// metadata of its free variables, not the whole program.
pub fn statement_requests(workload: &Workload) -> Vec<(Symbol, spores_service::Request)> {
    let (arena, contexts) = statement_contexts(workload);
    contexts
        .into_iter()
        .map(|StatementCtx { target, root, meta }| {
            let (sub, sub_root) = arena.rename_vars(root, &HashMap::new());
            let free: Vec<Symbol> = sub.free_vars(sub_root);
            let vars = meta.into_iter().filter(|(s, _)| free.contains(s)).collect();
            (target, spores_service::Request::new(sub, sub_root, vars))
        })
        .collect()
}

/// Compile `workload` through an [`OptimizerService`]: every statement
/// becomes a service request (batched, so misses fan out across the
/// worker pool), and repeated compilations of the same workload are
/// served from the plan cache without re-running saturation.
///
/// The resulting plans execute under [`Mode::spores`]'s executor
/// configuration (fusion on), so `execute(workload, &compiled,
/// &Mode::spores())` works unchanged.
pub fn compile_with_service(
    workload: &Workload,
    service: &spores_service::OptimizerService,
) -> Compiled {
    let t0 = Instant::now();
    let (targets, requests): (Vec<_>, Vec<_>) = statement_requests(workload).into_iter().unzip();

    let mut statements = Vec::with_capacity(targets.len());
    let mut phases = PhaseTimings::default();
    let mut converged = true;
    let mut timed_out = false;
    let mut max_e_nodes = 0;
    for (target, served) in targets.into_iter().zip(service.optimize_batch(requests)) {
        let served: spores_service::Served =
            served.unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        phases.translate += served.timings.translate;
        phases.saturate += served.timings.saturate;
        phases.extract += served.timings.extract;
        phases.lower += served.timings.lower;
        converged &= served.converged;
        timed_out |= served.timed_out;
        max_e_nodes = max_e_nodes.max(served.e_nodes);
        statements.push((target, served.arena, served.root));
    }

    let report = CompileReport {
        total: t0.elapsed(),
        // for cache hits, phase timings and saturation facts describe the
        // *cached* pipeline run, not time spent in this call
        phases: Some(phases),
        converged,
        timed_out,
        max_e_nodes,
    };
    Compiled { statements, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn check_modes_agree(w: &Workload) {
        let base = run(w, &Mode::Base).unwrap();
        let opt2 = run(w, &Mode::Opt2).unwrap();
        let spores = run(w, &Mode::spores()).unwrap();
        for (name, v) in &base.scalars {
            let o = opt2.scalars[name];
            let s = spores.scalars[name];
            let tol = 1e-6 * (1.0 + v.abs());
            assert!(
                (v - o).abs() < tol,
                "{} {name}: base {v} vs opt2 {o}",
                w.name
            );
            assert!(
                (v - s).abs() < tol,
                "{} {name}: base {v} vs spores {s}",
                w.name
            );
        }
        assert!(!base.scalars.is_empty(), "{} must track a scalar", w.name);
    }

    #[test]
    fn als_modes_agree() {
        check_modes_agree(&workloads::als(60, 40, 4, 11));
    }

    #[test]
    fn glm_modes_agree() {
        check_modes_agree(&workloads::glm(80, 12, 12));
    }

    #[test]
    fn svm_modes_agree() {
        check_modes_agree(&workloads::svm(80, 12, 13));
    }

    #[test]
    fn mlr_modes_agree() {
        check_modes_agree(&workloads::mlr(80, 10, 14));
    }

    #[test]
    fn pnmf_modes_agree() {
        check_modes_agree(&workloads::pnmf(50, 40, 4, 15));
    }

    #[test]
    fn spores_beats_base_on_als_flops() {
        let w = workloads::als(400, 300, 8, 21);
        let base = run(&w, &Mode::Base).unwrap();
        let spores = run(&w, &Mode::spores()).unwrap();
        assert!(
            spores.stats.flops < base.stats.flops,
            "spores {} vs base {}",
            spores.stats.flops,
            base.stats.flops
        );
    }

    #[test]
    fn pnmf_spores_avoids_dense_product_allocation() {
        let w = workloads::pnmf(300, 400, 6, 22);
        let opt2 = run(&w, &Mode::Opt2).unwrap();
        let spores = run(&w, &Mode::spores()).unwrap();
        assert!(
            spores.stats.cells_allocated < opt2.stats.cells_allocated,
            "spores {} vs opt2 {}",
            spores.stats.cells_allocated,
            opt2.stats.cells_allocated
        );
    }

    #[test]
    fn workload_bundle_is_ssa_and_tracks_versions() {
        let w = workloads::als(40, 30, 3, 9);
        let b = workload_bundle(&w);
        assert_eq!(b.expr.len(), w.statements.len());
        // U is assigned once → final version U@1; every target written back
        let wb: HashMap<String, String> = b
            .writebacks
            .iter()
            .map(|(t, v)| (t.to_string(), v.to_string()))
            .collect();
        assert_eq!(wb["U"], "U@1");
        assert_eq!(wb["V"], "V@1");
        assert_eq!(wb["loss"], "loss@1");
        // statement 3 (GV) reads the *new* U: the version symbol is a leaf
        let (_, gv_root) = b.expr.roots[2];
        assert!(b
            .expr
            .arena
            .free_vars(gv_root)
            .contains(&Symbol::new("U@1")));
        // and the bundle carries metadata for every read leaf
        for leaf in b.expr.read_vars() {
            assert!(b.vars.contains_key(&leaf), "no metadata for {leaf}");
        }
    }

    fn check_workload_mode_agrees(w: &Workload) {
        let base = run(w, &Mode::Base).unwrap();
        let wl = run_workload_mode(w).unwrap();
        for (name, v) in &base.scalars {
            let s = wl.scalars[name];
            let tol = 1e-6 * (1.0 + v.abs());
            assert!(
                (v - s).abs() < tol,
                "{} {name}: base {v} vs workload {s}",
                w.name
            );
        }
        assert!(!base.scalars.is_empty());
    }

    #[test]
    fn als_workload_mode_agrees() {
        check_workload_mode_agrees(&workloads::als(60, 40, 4, 11));
    }

    #[test]
    fn glm_workload_mode_agrees() {
        check_workload_mode_agrees(&workloads::glm(80, 12, 12));
    }

    #[test]
    fn svm_workload_mode_agrees() {
        check_workload_mode_agrees(&workloads::svm(80, 12, 13));
    }

    #[test]
    fn mlr_workload_mode_agrees() {
        check_workload_mode_agrees(&workloads::mlr(80, 10, 14));
    }

    #[test]
    fn pnmf_workload_mode_agrees() {
        check_workload_mode_agrees(&workloads::pnmf(50, 40, 4, 15));
    }

    #[test]
    fn workload_mode_saturates_once_for_all_statements() {
        // ALS: the loss statement shares U Vᵀ with the gradients, and the
        // shared pass's scaled sampling budget converges it in far fewer
        // iterations than it needs alone (the per-statement run spends
        // its whole iteration budget on it)
        let w = workloads::als(60, 40, 4, 11);
        let c = compile_workload(&w);
        let sat = c.saturation.as_ref().expect("direct compile records stats");
        assert!(sat.e_nodes > 0);
        assert_eq!(c.roots.len(), w.statements.len());
        // one shared pass must visit fewer candidates than the sum of
        // independent per-statement passes (shared classes probed once)
        let mut per_statement = 0usize;
        let opt = Optimizer::new(workload_optimizer_config());
        let bundle = workload_bundle(&w);
        for ix in 0..bundle.expr.len() {
            let single = bundle.expr.single_statement(ix);
            let got = opt.optimize_workload(&single, &bundle.vars).unwrap();
            per_statement += got.saturation.candidates_visited;
        }
        assert!(
            sat.candidates_visited < per_statement,
            "one-pass saturation must amortize matching: {} vs {per_statement}",
            sat.candidates_visited
        );
    }

    #[test]
    fn service_compile_agrees_with_direct_spores_compile() {
        use spores_service::{OptimizerService, ServiceConfig};
        let svc = OptimizerService::new(ServiceConfig::default());
        let mode = Mode::spores();
        for w in [
            workloads::als(60, 40, 4, 11),
            workloads::pnmf(50, 40, 4, 15),
        ] {
            let direct = run(&w, &mode).unwrap();
            let compiled = compile_with_service(&w, &svc);
            let via_service = execute(&w, &compiled, &mode).unwrap();
            for (name, v) in &direct.scalars {
                let s = via_service.scalars[name];
                let tol = 1e-6 * (1.0 + v.abs());
                assert!(
                    (v - s).abs() < tol,
                    "{} {name}: direct {v} vs service {s}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn workload_mode_via_service_agrees_and_caches_as_one_entry() {
        use spores_service::{OptimizerService, ServiceConfig};
        let svc = OptimizerService::new(ServiceConfig {
            optimizer: workload_optimizer_config(),
            ..ServiceConfig::default()
        });
        let w = workloads::pnmf(50, 40, 4, 15);
        let direct = run_workload_mode(&w).unwrap();
        let compiled = compile_workload_with_service(&w, &svc);
        let via_service = execute_workload(&w, &compiled).unwrap();
        for (name, v) in &direct.scalars {
            let s = via_service.scalars[name];
            let tol = 1e-6 * (1.0 + v.abs());
            assert!((v - s).abs() < tol, "{name}: direct {v} vs service {s}");
        }
        let cold = svc.stats();
        assert_eq!(cold.misses, 1, "the whole workload is ONE cache entry");
        assert_eq!(cold.hits, 0);
        // epoch 2: one hit for the whole program
        let compiled2 = compile_workload_with_service(&w, &svc);
        let warm = svc.stats();
        assert_eq!(warm.misses, 1, "warm compile re-ran the pipeline");
        assert_eq!(warm.hits, 1);
        let rerun = execute_workload(&w, &compiled2).unwrap();
        for (name, v) in &direct.scalars {
            let s = rerun.scalars[name];
            assert!((v - s).abs() < 1e-6 * (1.0 + v.abs()), "{name} after hit");
        }
    }

    #[test]
    fn recompiling_a_workload_is_served_from_the_cache() {
        use spores_service::{OptimizerService, ServiceConfig};
        let svc = OptimizerService::new(ServiceConfig::default());
        let w = workloads::glm(80, 12, 12);
        let n_statements = w.statements.len() as u64;
        compile_with_service(&w, &svc);
        let cold = svc.stats();
        assert_eq!(cold.hits, 0);
        assert!(cold.misses >= 1);
        // epoch 2: same statements, same metadata — all hits
        compile_with_service(&w, &svc);
        let warm = svc.stats();
        assert_eq!(warm.misses, cold.misses, "warm compile re-ran the pipeline");
        assert_eq!(warm.hits, n_statements);
    }

    #[test]
    fn compile_report_records_phases_for_spores_only() {
        let w = workloads::glm(50, 8, 31);
        let c = compile(&w, &Mode::spores());
        assert!(c.report.phases.is_some());
        assert!(c.report.max_e_nodes > 0);
        let c2 = compile(&w, &Mode::Opt2);
        assert!(c2.report.phases.is_none());
    }
}
