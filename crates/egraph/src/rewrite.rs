//! Rewrite rules: a searcher pattern, an applier, and optional conditions.
//!
//! Conditions implement the paper's schema-guarded rules (§3.2): e.g. rule
//! 3 of Figure 3 only applies when index `i` is not in the schema of the
//! matched sub-expression, which a plain syntactic pattern cannot express.
//!
//! Each condition carries a [`ConditionMeta`] describing *what* it checks
//! in machine-readable form, alongside the closure that checks it at
//! rewrite time. Static analyses (the `spores-ruleaudit` crate) consume
//! the metadata to prove that every rule whose schemas only unify under a
//! hypothesis actually declares the matching hypothesis; the runtime only
//! ever evaluates the closure. A rule built through [`Rewrite::with_condition`]
//! gets [`ConditionMeta::Opaque`] metadata, which the auditor reports as
//! unanalyzable rather than silently trusting.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language};
use crate::pattern::{Pattern, SearchMatches, Subst, Var};
use std::fmt;
use std::sync::Arc;

/// A side condition evaluated against the matched class and substitution.
pub type Condition<L, A> = dyn Fn(&EGraph<L, A>, Id, &Subst) -> bool + Send + Sync;

/// Which side of a rewrite a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternSide {
    Lhs,
    Rhs,
}

impl fmt::Display for PatternSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternSide::Lhs => write!(f, "lhs"),
            PatternSide::Rhs => write!(f, "rhs"),
        }
    }
}

/// Typed error from [`Rewrite`] construction and ruleset validation.
///
/// Shared with the static auditor so CLI diagnostics and library errors
/// agree on shape and wording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// A pattern side failed to parse.
    Parse {
        rule: String,
        side: PatternSide,
        message: String,
    },
    /// An rhs variable is not bound by the lhs.
    UnboundVar { rule: String, var: Var },
    /// Two rules in one ruleset share a name.
    DuplicateName { name: String },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Parse {
                rule,
                side,
                message,
            } => {
                write!(f, "rule {rule}, {side}: {message}")
            }
            RewriteError::UnboundVar { rule, var } => {
                write!(f, "rule {rule}: rhs variable {var} not bound by lhs")
            }
            RewriteError::DuplicateName { name } => {
                write!(f, "duplicate rule name {name}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Machine-readable description of what a side condition checks.
///
/// The vocabulary covers the paper's §3.2 schema guards: index-freeness
/// (`i ∉ Attr(A)`, Figure 3 rules 3/6), schema containment and additive
/// zeros (the sparsity-driven `A + 0ᵣₑₗ = A` closure rule). Conditions
/// attached through [`Rewrite::with_condition`] are [`ConditionMeta::Opaque`].
/// The e-graph never interprets this metadata; it exists for static
/// analysis and reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConditionMeta {
    /// `σ(index) ∉ Attr(σ(of))`: the index bound to `index` does not occur
    /// in the schema of the expression bound to `of`.
    IndexNotInSchema { index: Var, of: Var },
    /// `Attr(σ(sub)) ⊆ Attr(σ(sup))`: schema containment between two
    /// matched sub-expressions.
    SchemaSubset { sub: Var, sup: Var },
    /// `σ(var)` is the additive zero (e.g. a relation of sparsity 0).
    IsZero { var: Var },
    /// A closure with no declared semantics. The auditor reports rules
    /// carrying one of these as not statically analyzable.
    Opaque { description: String },
}

impl fmt::Display for ConditionMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionMeta::IndexNotInSchema { index, of } => {
                write!(f, "{index} ∉ Attr({of})")
            }
            ConditionMeta::SchemaSubset { sub, sup } => {
                write!(f, "Attr({sub}) ⊆ Attr({sup})")
            }
            ConditionMeta::IsZero { var } => write!(f, "{var} = 0"),
            ConditionMeta::Opaque { description } => write!(f, "<opaque: {description}>"),
        }
    }
}

/// A side condition: the runtime closure plus its declared metadata.
pub struct DeclaredCondition<L: Language, A: Analysis<L>> {
    pub meta: ConditionMeta,
    pub check: Arc<Condition<L, A>>,
}

impl<L: Language, A: Analysis<L>> Clone for DeclaredCondition<L, A> {
    fn clone(&self) -> Self {
        DeclaredCondition {
            meta: self.meta.clone(),
            check: Arc::clone(&self.check),
        }
    }
}

/// Something that can produce new ids to union with a matched class.
pub trait Applier<L: Language, A: Analysis<L>>: Send + Sync {
    /// Instantiate for one match; return the ids to union with `eclass`.
    fn apply_one(&self, egraph: &mut EGraph<L, A>, eclass: Id, subst: &Subst) -> Vec<Id>;

    /// For diagnostics.
    fn describe(&self) -> String {
        "<dynamic applier>".to_owned()
    }

    /// The rhs pattern, when this applier is a plain pattern
    /// instantiation. Dynamic appliers return `None` and are reported as
    /// unanalyzable by static passes.
    fn as_pattern(&self) -> Option<&Pattern<L>> {
        None
    }
}

impl<L: Language + Send + Sync, A: Analysis<L>> Applier<L, A> for Pattern<L> {
    fn apply_one(&self, egraph: &mut EGraph<L, A>, _eclass: Id, subst: &Subst) -> Vec<Id> {
        vec![self.apply(egraph, subst)]
    }

    fn describe(&self) -> String {
        self.to_string()
    }

    fn as_pattern(&self) -> Option<&Pattern<L>> {
        Some(self)
    }
}

/// A named rewrite rule.
pub struct Rewrite<L: Language, A: Analysis<L>> {
    pub name: String,
    pub searcher: Pattern<L>,
    pub applier: Arc<dyn Applier<L, A>>,
    pub conditions: Vec<DeclaredCondition<L, A>>,
    /// True when a repeated lhs variable (a non-linear pattern such as
    /// `(* ?x ?x)`) is intentional. The linearity audit flags repeated
    /// lhs variables on rules that do not declare this.
    nonlinear_lhs: bool,
}

impl<L: Language, A: Analysis<L>> Clone for Rewrite<L, A> {
    fn clone(&self) -> Self {
        Rewrite {
            name: self.name.clone(),
            searcher: self.searcher.clone(),
            applier: Arc::clone(&self.applier),
            conditions: self.conditions.clone(),
            nonlinear_lhs: self.nonlinear_lhs,
        }
    }
}

impl<L: Language, A: Analysis<L>> fmt::Debug for Rewrite<L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} => {}",
            self.name,
            self.searcher,
            self.applier.describe()
        )
    }
}

impl<L: Language + Send + Sync + 'static, A: Analysis<L>> Rewrite<L, A> {
    /// Build a `lhs => rhs` rule from pattern strings.
    pub fn new(name: impl Into<String>, lhs: &str, rhs: &str) -> Result<Self, RewriteError> {
        let name = name.into();
        let searcher: Pattern<L> = lhs.parse().map_err(|e| RewriteError::Parse {
            rule: name.clone(),
            side: PatternSide::Lhs,
            message: e,
        })?;
        let applier: Pattern<L> = rhs.parse().map_err(|e| RewriteError::Parse {
            rule: name.clone(),
            side: PatternSide::Rhs,
            message: e,
        })?;
        // every rhs variable must be bound by the lhs
        let lhs_vars = searcher.vars();
        for v in applier.vars() {
            if !lhs_vars.contains(&v) {
                return Err(RewriteError::UnboundVar { rule: name, var: v });
            }
        }
        Ok(Rewrite {
            name,
            searcher,
            applier: Arc::new(applier),
            conditions: Vec::new(),
            nonlinear_lhs: false,
        })
    }

    /// Add an undeclared side condition; the rule only fires when it
    /// returns true. Prefer [`Rewrite::with_declared_condition`]: rules
    /// built through this method carry [`ConditionMeta::Opaque`] metadata
    /// and cannot be statically audited.
    pub fn with_condition(
        self,
        cond: impl Fn(&EGraph<L, A>, Id, &Subst) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.with_declared_condition(
            ConditionMeta::Opaque {
                description: "<dynamic condition>".to_owned(),
            },
            cond,
        )
    }

    /// Add a side condition together with machine-readable metadata
    /// stating what it checks. The closure remains the runtime authority;
    /// the metadata is what static analysis cross-checks.
    pub fn with_declared_condition(
        mut self,
        meta: ConditionMeta,
        cond: impl Fn(&EGraph<L, A>, Id, &Subst) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.conditions.push(DeclaredCondition {
            meta,
            check: Arc::new(cond),
        });
        self
    }

    /// Declare that this rule's repeated lhs variables are intentional
    /// equality constraints (e.g. `(+ ?x ?x) => (* 2 ?x)`).
    pub fn with_nonlinear_lhs(mut self) -> Self {
        self.nonlinear_lhs = true;
        self
    }

    /// Replace the applier with a dynamic one (for rules that must compute
    /// their output rather than instantiate a pattern).
    pub fn with_applier(mut self, applier: impl Applier<L, A> + 'static) -> Self {
        self.applier = Arc::new(applier);
        self
    }
}

impl<L: Language, A: Analysis<L>> Rewrite<L, A> {
    /// Declared metadata of every side condition, in evaluation order.
    pub fn condition_metas(&self) -> impl Iterator<Item = &ConditionMeta> {
        self.conditions.iter().map(|c| &c.meta)
    }

    /// Whether repeated lhs variables were declared intentional.
    pub fn nonlinear_lhs_declared(&self) -> bool {
        self.nonlinear_lhs
    }

    /// The rhs as a pattern, when the applier is a plain pattern.
    pub fn rhs_pattern(&self) -> Option<&Pattern<L>> {
        self.applier.as_pattern()
    }

    /// Search the whole e-graph for matches of this rule's lhs.
    pub fn search(&self, egraph: &EGraph<L, A>) -> Vec<SearchMatches> {
        self.searcher.search(egraph)
    }

    /// Search, also reporting how many candidate classes the op-head
    /// index proposed for this rule's lhs (for scheduler statistics).
    pub fn search_with_stats(&self, egraph: &EGraph<L, A>) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_with_stats(egraph)
    }

    /// Delta search: only candidate classes in `dirty` are visited.
    /// See [`Pattern::search_delta_with_stats`].
    pub fn search_delta_with_stats(
        &self,
        egraph: &EGraph<L, A>,
        dirty: &crate::hash::FxHashSet<Id>,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_delta_with_stats(egraph, dirty)
    }

    /// Full sweep minus the classes in `excluded` (frozen regions).
    /// See [`Pattern::search_except_with_stats`].
    pub fn search_except_with_stats(
        &self,
        egraph: &EGraph<L, A>,
        excluded: &crate::hash::FxHashSet<Id>,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_except_with_stats(egraph, excluded)
    }

    /// The candidate list a delta search of this rule visits.
    /// See [`Pattern::delta_candidate_ids`].
    pub fn delta_candidate_ids(&self, egraph: &EGraph<L, A>, dirty_sorted: &[Id]) -> Vec<Id> {
        self.searcher.delta_candidate_ids(egraph, dirty_sorted)
    }

    /// The candidate list a frozen-filtered full sweep of this rule
    /// visits. See [`Pattern::except_candidate_ids`].
    pub fn except_candidate_ids(
        &self,
        egraph: &EGraph<L, A>,
        excluded: &crate::hash::FxHashSet<Id>,
    ) -> Vec<Id> {
        self.searcher.except_candidate_ids(egraph, excluded)
    }

    /// Run this rule's compiled matcher over an explicit candidate id
    /// list (one search shard). See [`Pattern::search_ids_with_stats`].
    pub fn search_ids_with_stats(
        &self,
        egraph: &EGraph<L, A>,
        ids: &[Id],
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_ids_with_stats(egraph, ids)
    }

    /// Like [`Rewrite::search_ids_with_stats`], with an explicit
    /// e-matching backend. See [`Pattern::search_ids_with_stats_mode`].
    pub fn search_ids_with_stats_mode(
        &self,
        egraph: &EGraph<L, A>,
        ids: &[Id],
        mode: crate::relational::MatchingMode,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_ids_with_stats_mode(egraph, ids, mode)
    }

    /// Full sweep on the relational (generic-join) backend.
    /// See [`Pattern::search_relational_with_stats`].
    pub fn search_relational_with_stats(
        &self,
        egraph: &EGraph<L, A>,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_relational_with_stats(egraph)
    }

    /// Apply this rule to one (class, subst) match. Returns the number of
    /// unions actually performed.
    pub fn apply_match(&self, egraph: &mut EGraph<L, A>, eclass: Id, subst: &Subst) -> usize {
        for cond in &self.conditions {
            if !(cond.check)(egraph, eclass, subst) {
                return 0;
            }
        }
        let ids = self.applier.apply_one(egraph, eclass, subst);
        let mut unions = 0;
        for id in ids {
            let (_, changed) = egraph.union(eclass, id);
            unions += usize::from(changed);
        }
        unions
    }
}

/// Validate that every rule in a set has a distinct name.
///
/// Duplicate names would make scheduler statistics, backoff priors, and
/// audit reports ambiguous; both the runner's callers and the static
/// auditor check through this one helper.
pub fn check_unique_names<L: Language, A: Analysis<L>>(
    rules: &[Rewrite<L, A>],
) -> Result<(), RewriteError> {
    let mut seen = crate::hash::FxHashSet::default();
    for r in rules {
        if !seen.insert(r.name.as_str()) {
            return Err(RewriteError::DuplicateName {
                name: r.name.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    type EG = EGraph<Arith, ()>;

    #[test]
    fn rule_applies_and_unions() {
        let mut eg = EG::default();
        let root = eg.add_expr(&parse_rec_expr("(+ x y)").unwrap());
        eg.rebuild();
        let rule: Rewrite<Arith, ()> = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
        let matches = rule.search(&eg);
        assert_eq!(matches.len(), 1);
        let unions = rule.apply_match(&mut eg, matches[0].eclass, &matches[0].substs[0]);
        assert_eq!(unions, 1);
        eg.rebuild();
        let flipped = parse_rec_expr::<Arith>("(+ y x)").unwrap();
        assert_eq!(eg.lookup_expr(&flipped), Some(eg.find(root)));
    }

    #[test]
    fn unbound_rhs_var_rejected() {
        let r: Result<Rewrite<Arith, ()>, _> = Rewrite::new("bad", "(+ ?a ?b)", "(+ ?a ?c)");
        match r {
            Err(RewriteError::UnboundVar { rule, var }) => {
                assert_eq!(rule, "bad");
                assert_eq!(var, Var::new("c"));
            }
            other => panic!("expected UnboundVar, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_is_typed() {
        let r: Result<Rewrite<Arith, ()>, _> = Rewrite::new("bad", "(+ ?a", "?a");
        match r {
            Err(RewriteError::Parse { rule, side, .. }) => {
                assert_eq!(rule, "bad");
                assert_eq!(side, PatternSide::Lhs);
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_detected() {
        let r: Rewrite<Arith, ()> = Rewrite::new("same", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
        let rules = vec![r.clone(), r];
        match check_unique_names(&rules) {
            Err(RewriteError::DuplicateName { name }) => assert_eq!(name, "same"),
            other => panic!("expected DuplicateName, got {other:?}"),
        }
    }

    #[test]
    fn condition_blocks_application() {
        let mut eg = EG::default();
        eg.add_expr(&parse_rec_expr("(+ x y)").unwrap());
        eg.rebuild();
        let rule: Rewrite<Arith, ()> = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")
            .unwrap()
            .with_condition(|_, _, _| false);
        let matches = rule.search(&eg);
        let unions = rule.apply_match(&mut eg, matches[0].eclass, &matches[0].substs[0]);
        assert_eq!(unions, 0);
        // undeclared closures surface as opaque metadata
        assert!(matches!(
            rule.condition_metas().next(),
            Some(ConditionMeta::Opaque { .. })
        ));
    }

    #[test]
    fn declared_condition_metadata_is_introspectable() {
        let rule: Rewrite<Arith, ()> = Rewrite::new("guarded", "(+ ?a ?b)", "(+ ?b ?a)")
            .unwrap()
            .with_declared_condition(
                ConditionMeta::IndexNotInSchema {
                    index: Var::new("i"),
                    of: Var::new("a"),
                },
                |_, _, _| true,
            );
        let metas: Vec<_> = rule.condition_metas().collect();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].to_string(), "?i ∉ Attr(?a)");
        assert!(rule.rhs_pattern().is_some());
        assert!(!rule.nonlinear_lhs_declared());
    }

    #[test]
    fn reapplying_is_idempotent() {
        let mut eg = EG::default();
        eg.add_expr(&parse_rec_expr("(+ x y)").unwrap());
        eg.rebuild();
        let rule: Rewrite<Arith, ()> = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
        for _ in 0..3 {
            let matches = rule.search(&eg);
            for m in matches {
                for s in &m.substs {
                    rule.apply_match(&mut eg, m.eclass, s);
                }
            }
            eg.rebuild();
        }
        // (+ x y) and (+ y x) in one class; x, y separate: 3 classes
        assert_eq!(eg.number_of_classes(), 3);
        assert_eq!(eg.total_number_of_nodes(), 4);
    }
}
