//! Figure 16: compile-time breakdown (translate / saturate / extract)
//! for the saturation+extraction strategies, vs the heuristic baseline's
//! total compile time.
//!
//! Strategies (as in the paper): depth-first + greedy, sampling + greedy,
//! sampling + ILP. Saturation runs under the paper's 2.5 s timeout;
//! depth-first is expected to hit it on the programs with deeply nested
//! `*`/`+` (GLM, SVM in the paper). Convergence per program (§4.3) is
//! reported alongside.

use spores_bench::{ms, Table};
use spores_core::ExtractorKind;
use spores_egraph::Scheduler;
use spores_ml::{compile, Mode, Scale};

fn main() {
    println!("Figure 16: compile time breakdown [ms] per strategy (timeout 2.5 s)");
    println!();
    let sampling = || Scheduler::Sampling {
        match_limit: 40,
        seed: 0xC0FFEE,
    };
    let strategies: Vec<(&str, Mode)> = vec![
        (
            "DFS, greedy",
            Mode::Spores {
                scheduler: Scheduler::DepthFirst,
                extractor: ExtractorKind::Greedy,
            },
        ),
        (
            "sampling, greedy",
            Mode::Spores {
                scheduler: sampling(),
                extractor: ExtractorKind::Greedy,
            },
        ),
        (
            "sampling, ILP",
            Mode::Spores {
                scheduler: sampling(),
                extractor: ExtractorKind::Ilp,
            },
        ),
        ("SystemML (opt2)", Mode::Opt2),
    ];
    let mut table = Table::new(&[
        "Strategy",
        "Program",
        "Translate",
        "Saturate",
        "Extract",
        "Total",
        "Converged",
        "Timeout",
        "E-nodes",
    ]);
    for (label, mode) in &strategies {
        for workload in spores_ml::figure15_suite(Scale::Small) {
            let compiled = compile(&workload, mode);
            let r = &compiled.report;
            match &r.phases {
                Some(p) => table.row(&[
                    label.to_string(),
                    workload.name.to_string(),
                    ms(p.translate),
                    ms(p.saturate),
                    ms(p.extract),
                    ms(r.total),
                    if r.converged { "yes" } else { "no" }.into(),
                    if r.timed_out { "YES" } else { "-" }.into(),
                    r.max_e_nodes.to_string(),
                ]),
                None => table.row(&[
                    label.to_string(),
                    workload.name.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    ms(r.total),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    table.print();
}
