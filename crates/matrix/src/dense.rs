//! Row-major dense matrices.

use std::fmt;

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Dense {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl Dense {
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Dense {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Dense { rows, cols, data }
    }

    pub fn zeros(rows: usize, cols: usize) -> Dense {
        Dense {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn filled(rows: usize, cols: usize, v: f64) -> Dense {
        Dense {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    pub fn scalar(v: f64) -> Dense {
        Dense::new(1, 1, vec![v])
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Broadcast-aware access: size-1 dimensions repeat.
    #[inline]
    pub fn bget(&self, r: usize, c: usize) -> f64 {
        let r = if self.rows == 1 { 0 } else { r };
        let c = if self.cols == 1 { 0 } else { c };
        self.get(r, c)
    }

    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Dense::zeros(m, n);
        // i-k-j loop order: streams over `other`'s rows
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    pub fn map(&self, f: impl Fn(f64) -> f64) -> Dense {
        Dense {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combine with broadcasting.
    pub fn zip(&self, other: &Dense, f: impl Fn(f64, f64) -> f64) -> Dense {
        let rows = self.rows.max(other.rows);
        let cols = self.cols.max(other.cols);
        let mut out = Dense::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                out.set(r, c, f(self.bget(r, c), other.bget(r, c)));
            }
        }
        out
    }

    pub fn row_sums(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    pub fn col_sums(&self) -> Dense {
        let mut out = Dense::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    pub fn approx_eq(&self, other: &Dense, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dense {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Dense::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Dense::new(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Dense::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn broadcast_zip() {
        let a = Dense::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let col = Dense::new(2, 1, vec![10., 20.]);
        let row = Dense::new(1, 3, vec![1., 2., 3.]);
        let s = Dense::scalar(100.);
        assert_eq!(
            a.zip(&col, |x, y| x + y).data,
            vec![11., 12., 13., 24., 25., 26.]
        );
        assert_eq!(
            a.zip(&row, |x, y| x * y).data,
            vec![1., 4., 9., 4., 10., 18.]
        );
        assert_eq!(a.zip(&s, |x, y| x + y).get(1, 2), 106.0);
    }

    #[test]
    fn aggregates() {
        let a = Dense::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row_sums().data, vec![6., 15.]);
        assert_eq!(a.col_sums().data, vec![5., 7., 9.]);
        assert_eq!(a.sum(), 21.0);
    }

    #[test]
    fn nnz_counts_exact_zeros() {
        let a = Dense::new(2, 2, vec![0., 1., 0., 2.]);
        assert_eq!(a.nnz(), 2);
    }
}
