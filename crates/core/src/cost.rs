//! The sparsity-aware cost model (§3.1, Figure 12).
//!
//! "Each operation usually has cost proportional to the output size in
//! terms of memory allocation and computation. Since the size of a matrix
//! is proportional to its number of non-zeroes (nnz), we use [the]
//! estimate of nnz as the cost for each operation."
//!
//! The estimate itself is the class invariant maintained by
//! [`crate::analysis::MetaAnalysis`]; this module turns it into a
//! per-e-node cost and encodes which classes are *extractable*:
//!
//! * structural nodes (leaves, `bind`/`unbind`, `dim`, indexes) are free;
//! * operator nodes cost the estimated nnz of their output class (plus 1,
//!   so that plans with fewer operators win ties);
//! * joins whose schema exceeds two attributes cost nothing themselves —
//!   they can only be consumed by an enclosing aggregate, and the pair
//!   lowers to a fused contraction (`mmchain`-style) that never
//!   materializes the wide intermediate;
//! * non-join nodes with more than two attributes are *inextricable*
//!   (infinite cost): the paper generates ILP variables only for classes
//!   with at most two schema attributes (§3.2), since only those can be
//!   translated back to LA.

use crate::analysis::{Kind, Meta, MetaAnalysis};
use crate::lang::Math;
use spores_egraph::{CostFunction, EGraph, Id, Language};

/// How many schema attributes a class has, when it is relational.
/// `Scalar` counts as 0; LA shapes count their non-1 dimensions.
pub fn attr_count(meta: &Meta) -> Option<usize> {
    match &meta.kind {
        Kind::Scalar => Some(0),
        Kind::Rel(schema) => Some(schema.len()),
        Kind::Mat(s) => Some(usize::from(s.rows > 1) + usize::from(s.cols > 1)),
        Kind::Index { .. } => Some(0),
        Kind::Unknown => None,
    }
}

/// Is this class allowed to appear in an extracted plan?
/// (≤ 2 attributes, §3.2 — except wide joins, which fuse upward.)
pub fn class_extractable(meta: &Meta, enode: &Math) -> bool {
    match attr_count(meta) {
        None => false,
        Some(n) if n <= 2 => true,
        // wide intermediates are only allowed for joins and aggregates,
        // which lower into fused contractions
        Some(_) => matches!(enode, Math::Mul(_) | Math::Agg(_)),
    }
}

/// Per-node cost of the SPORES cost model. See the module docs.
pub fn node_cost(meta: &Meta, enode: &Math) -> f64 {
    use Math::*;
    match enode {
        // structural / zero-cost nodes
        Lit(_) | Sym(_) | NoIdx | Dim(_) | Bind(_) | Unbind(_) => 0.0,
        // transpose is pure metadata in our runtime as well
        LTrs(_) => 0.0,
        _ => {
            if !class_extractable(meta, enode) {
                return f64::INFINITY;
            }
            match attr_count(meta) {
                // wide join: fused into the enclosing contraction
                Some(n) if n > 2 => 1.0,
                _ => meta.nnz() + 1.0,
            }
        }
    }
}

/// The greedy cost function: total = own + Σ children (tree semantics,
/// which double-counts shared sub-plans — exactly the deficiency of
/// Figure 10 that ILP extraction fixes).
#[derive(Clone, Copy, Debug, Default)]
pub struct NnzCost;

impl CostFunction<Math, MetaAnalysis> for NnzCost {
    fn cost(
        &self,
        egraph: &EGraph<Math, MetaAnalysis>,
        class: Id,
        enode: &Math,
        child_cost: &dyn Fn(Id) -> f64,
    ) -> f64 {
        let own = node_cost(&egraph.class(class).data, enode);
        if !own.is_finite() {
            return f64::INFINITY;
        }
        own + enode.children().iter().map(|&c| child_cost(c)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Context, MathGraph, MetaAnalysis, VarMeta};
    use crate::lang::parse_math;
    use spores_egraph::Extractor;

    fn ctx() -> Context {
        Context::new()
            .with_var("X", VarMeta::sparse(1000, 500, 0.001))
            .with_var("U", VarMeta::dense(1000, 1))
            .with_var("V", VarMeta::dense(500, 1))
            .with_index("i", 1000)
            .with_index("j", 500)
            .with_index("k", 20)
    }

    fn cost_of(src: &str) -> f64 {
        let mut eg = MathGraph::new(MetaAnalysis::new(ctx()));
        let id = eg.add_expr(&parse_math(src).unwrap());
        eg.rebuild();
        let ext = Extractor::new(&eg, NnzCost);
        ext.best_cost(id).unwrap()
    }

    #[test]
    fn leaves_are_free() {
        assert_eq!(cost_of("(b i j X)"), 0.0);
        assert_eq!(cost_of("5"), 0.0);
        assert_eq!(cost_of("(dim i)"), 0.0);
    }

    #[test]
    fn sparse_join_order_beats_dense_intermediate() {
        // X * (U ⊗ V): the U⊗V intermediate is dense (500k nnz)
        let bad_order = cost_of("(* (b i j X) (* (b i _ U) (b j _ V)))");
        // (X * U) * V: every intermediate inherits X's sparsity (500 nnz)
        let good_order = cost_of("(* (* (b i j X) (b i _ U)) (b j _ V))");
        assert!(
            good_order * 100.0 < bad_order,
            "good {good_order} vs bad {bad_order}"
        );
    }

    #[test]
    fn aggregated_wide_join_is_fused() {
        // Σ_j X(i,j)·V(j) — matvec; the 2-attr product is materialized
        let matvec = cost_of("(sum j (* (b i j X) (b j _ V)))");
        assert!(matvec.is_finite());
        // a 3-attr product under two aggregates (matmul chain) must also
        // be extractable, with the wide join costing ~nothing
        let chain = cost_of("(sum j (* (b i j X) (* (b j k Y3) (b k _ W3))))");
        assert!(chain.is_finite());
    }

    #[test]
    fn wide_nonjoin_is_inextricable() {
        let mut eg = MathGraph::new(MetaAnalysis::new(ctx().with_index("l", 7)));
        // a 3-attr union cannot be translated back to LA
        let id = eg.add_expr(
            &parse_math("(+ (* (b i j X) (b k _ V2)) (* (b i j X) (b k _ V2)))").unwrap(),
        );
        eg.rebuild();
        let ext = Extractor::new(&eg, NnzCost);
        assert_eq!(ext.best_cost(id), None);
    }

    #[test]
    fn zero_sparsity_means_free() {
        // multiplying by a zero literal drives sparsity (and cost) to ~1
        let c = cost_of("(* (b i j X) 0)");
        assert!(c <= 1.0 + 1e-9, "{c}");
    }
}
