//! The heuristic baseline optimizer and the Figure 14 rewrite corpus.
//!
//! Reproduces SystemML's hand-coded algebraic rewrite pass — the system
//! the paper compares against — including the heuristic guards whose
//! failure modes motivate SPORES (§3): conflicting rewrites, phase
//! ordering, CSE-preservation guards, and non-compositionality.

#![forbid(unsafe_code)]

pub mod patterns;
pub mod rewriter;

pub use patterns::{RewritePattern, Validation, CORPUS};
pub use rewriter::{HeuristicRewriter, OptLevel, Rewritten, VarInfo};
