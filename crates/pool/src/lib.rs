//! Shared thread-pool primitives for SPORES' concurrent components.
//!
//! Two shapes of parallelism recur in the workspace and each used to be
//! hand-rolled where it was needed:
//!
//! * [`scoped_map`] — a fork-join map over an indexed task set whose
//!   closures *borrow* caller data (`std::thread::scope`). This is what
//!   the saturation runner's parallel search phase uses: tasks share
//!   `&EGraph` and return per-task match buffers.
//! * [`WorkerPool`] — long-lived named worker threads draining a channel
//!   of owned jobs (`'static`). This is the optimizer service's request
//!   pool, extracted here so the workspace has one pool implementation
//!   instead of one per crate.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, SendError, Sender, SyncSender, TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Run `f(0..tasks)` across up to `threads` scoped worker threads and
/// collect the results in task order.
///
/// Tasks are claimed from a shared atomic counter (work stealing), so an
/// uneven task-cost distribution still balances. With `threads <= 1` or
/// fewer than two tasks the map runs inline on the caller's thread —
/// zero spawn overhead, identical results — which is the hot path for
/// single-core hosts and tiny fan-outs.
///
/// A panicking task propagates the panic to the caller after all worker
/// threads have joined (the guarantee `std::thread::scope` provides).
pub fn scoped_map<T, F>(threads: usize, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(tasks);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                if ix >= tasks {
                    break;
                }
                let out = f(ix);
                *slots[ix].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every task index was claimed and completed")
        })
        .collect()
}

/// Why [`WorkerPool::try_submit`] did not enqueue a job. The job is
/// handed back in both cases so the caller can retry, run it inline, or
/// surface backpressure to its own caller.
#[derive(Debug)]
pub enum TrySubmitError<J> {
    /// The bounded queue is at capacity (backpressure signal).
    Full(J),
    /// The pool has shut down.
    Shutdown(J),
}

enum Queue<J> {
    Unbounded(Sender<J>),
    Bounded(SyncSender<J>),
}

/// Long-lived worker threads draining a channel of jobs.
///
/// Jobs are owned (`'static`) values; the handler runs on whichever
/// worker dequeues the job first. Dropping the pool closes the channel
/// and joins every worker, so queued jobs are drained before shutdown
/// completes.
///
/// * [`WorkerPool::new`] builds an **unbounded** queue; [`WorkerPool::bounded`]
///   caps it, making [`WorkerPool::try_submit`] an explicit backpressure
///   signal ([`TrySubmitError::Full`]) instead of buffering without limit.
/// * [`WorkerPool::queue_depth`] reports jobs enqueued but not yet picked
///   up by a worker — the gauge a serving front-end exports.
/// * A panicking handler no longer kills its worker: the pool catches the
///   unwind, counts it ([`WorkerPool::handler_panics`]) and keeps the
///   thread serving. Handlers that must *resolve* per-job state (wake
///   waiters, release tickets) still need their own `catch_unwind`,
///   because the pool-level catch cannot know what a lost job was
///   supposed to signal.
pub struct WorkerPool<J: Send + 'static> {
    tx: Option<Queue<J>>,
    workers: Vec<JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
    panics: Arc<AtomicU64>,
    capacity: Option<usize>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawn `workers.max(1)` threads named `{name}-{i}` running
    /// `handler` on each received job, with an unbounded queue.
    pub fn new<F>(name: &str, workers: usize, handler: F) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let (tx, rx) = channel::<J>();
        Self::build(name, workers, Queue::Unbounded(tx), rx, None, handler)
    }

    /// Like [`WorkerPool::new`] but with a bounded queue of `capacity`
    /// jobs: once full, [`WorkerPool::try_submit`] reports
    /// [`TrySubmitError::Full`] and [`WorkerPool::submit`] blocks.
    pub fn bounded<F>(name: &str, workers: usize, capacity: usize, handler: F) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let capacity = capacity.max(1);
        let (tx, rx) = sync_channel::<J>(capacity);
        Self::build(
            name,
            workers,
            Queue::Bounded(tx),
            rx,
            Some(capacity),
            handler,
        )
    }

    fn build<F>(
        name: &str,
        workers: usize,
        tx: Queue<J>,
        rx: Receiver<J>,
        capacity: Option<usize>,
        handler: F,
    ) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let rx = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicUsize::new(0));
        let panics = Arc::new(AtomicU64::new(0));
        let workers = (0..workers.max(1))
            .map(|i| {
                let handler = Arc::clone(&handler);
                let rx = Arc::clone(&rx);
                let depth = Arc::clone(&depth);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        let job = {
                            // a worker that panicked *inside the recv
                            // lock* is impossible (handlers run after the
                            // guard drops), so a poisoned lock here means
                            // memory corruption elsewhere — recover the
                            // receiver rather than cascade the panic
                            let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
                            match rx.recv() {
                                Ok(job) => job,
                                Err(_) => return, // all senders dropped: shutdown
                            }
                        };
                        depth.fetch_sub(1, Ordering::Relaxed);
                        // contain handler panics: the worker survives and
                        // keeps draining the queue
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(job)));
                        if outcome.is_err() {
                            panics.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            depth,
            panics,
            capacity,
        }
    }

    /// Enqueue a job, blocking if a bounded queue is full. Returns the
    /// job back if the pool has shut down.
    pub fn submit(&self, job: J) -> Result<(), J> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        let sent = match &self.tx {
            Some(Queue::Unbounded(tx)) => tx.send(job).map_err(|SendError(job)| job),
            Some(Queue::Bounded(tx)) => tx.send(job).map_err(|SendError(job)| job),
            None => Err(job),
        };
        if sent.is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        sent
    }

    /// Enqueue a job without blocking. On a bounded pool a full queue
    /// reports [`TrySubmitError::Full`] — the caller's backpressure
    /// signal; an unbounded pool never reports `Full`.
    pub fn try_submit(&self, job: J) -> Result<(), TrySubmitError<J>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        let sent = match &self.tx {
            Some(Queue::Unbounded(tx)) => tx
                .send(job)
                .map_err(|SendError(job)| TrySubmitError::Shutdown(job)),
            Some(Queue::Bounded(tx)) => tx.try_send(job).map_err(|e| match e {
                TrySendError::Full(job) => TrySubmitError::Full(job),
                TrySendError::Disconnected(job) => TrySubmitError::Shutdown(job),
            }),
            None => Err(TrySubmitError::Shutdown(job)),
        };
        if sent.is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        sent
    }

    /// Jobs submitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Queue capacity (`None` for unbounded pools).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Handler panics contained by the pool so far.
    pub fn handler_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // closing the channel ends the worker loops once the queue drains
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_map_preserves_task_order() {
        let input: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = scoped_map(threads, input.len(), |i| input[i] * 3);
            let want: Vec<usize> = input.iter().map(|x| x * 3).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn scoped_map_borrows_caller_data_without_cloning() {
        let data = vec![String::from("a"); 64];
        let lens = scoped_map(4, data.len(), |i| data[i].len());
        assert_eq!(lens, vec![1; 64]);
        assert_eq!(data.len(), 64, "data survives the scope");
    }

    #[test]
    fn scoped_map_runs_every_task_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        scoped_map(8, counters.len(), |i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn scoped_map_handles_empty_and_single_task() {
        let empty: Vec<usize> = scoped_map(8, 0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(scoped_map(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn worker_pool_processes_all_jobs_before_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("test-pool", 3, move |j: usize| {
                done.fetch_add(j, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 3);
        for j in 1..=100 {
            pool.submit(j).unwrap();
        }
        drop(pool); // joins workers, draining the queue
        assert_eq!(done.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn worker_pool_clamps_to_one_worker() {
        let pool = WorkerPool::new("clamped", 0, |_: ()| {});
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.capacity(), None);
    }

    #[test]
    fn bounded_pool_reports_full_and_returns_the_job() {
        // one worker parked on a barrier job; capacity-2 queue
        let gate = Arc::new(std::sync::Barrier::new(2));
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::bounded("bounded", 1, 2, move |j: usize| {
                if j == 0 {
                    gate.wait(); // hold the worker until the test releases it
                }
            })
        };
        assert_eq!(pool.capacity(), Some(2));
        pool.try_submit(0).unwrap(); // worker picks this up and blocks
                                     // wait for the worker to actually dequeue job 0 so the queue
                                     // capacity below is deterministic
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        match pool.try_submit(3) {
            Err(TrySubmitError::Full(job)) => assert_eq!(job, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(pool.queue_depth(), 2);
        gate.wait(); // release the worker; drop drains the queue
    }

    #[test]
    fn handler_panics_are_contained_and_counted() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("panicky", 1, move |j: usize| {
                if j.is_multiple_of(2) {
                    panic!("injected handler panic");
                }
                done.fetch_add(j, Ordering::Relaxed);
            })
        };
        for j in 0..10 {
            pool.submit(j).unwrap();
        }
        drop(pool); // drains the queue; panics must not kill the worker
        assert_eq!(done.load(Ordering::Relaxed), 1 + 3 + 5 + 7 + 9);
    }

    #[test]
    fn handler_panics_counter_increments() {
        let pool = WorkerPool::new("counted", 2, |j: usize| {
            if j == 7 {
                panic!("boom");
            }
        });
        for j in 0..10 {
            pool.submit(j).unwrap();
        }
        // spin until the queue drains (workers survive panics)
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        // the panicking job may still be mid-handler; poll briefly
        for _ in 0..1000 {
            if pool.handler_panics() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.handler_panics(), 1);
    }
}
