//! CSR (compressed sparse row) matrices.
//!
//! The sparsity-exploiting kernels the paper's optimizations rely on:
//! SPORES rewrites only pay off when `X * Y`, `X %*% v` and friends skip
//! the zero cells of a sparse operand — these are those kernels.

use crate::dense::Dense;

/// CSR sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    pub rows: usize,
    pub cols: usize,
    /// `indptr[r]..indptr[r+1]` spans row `r`'s entries.
    pub indptr: Vec<usize>,
    pub indices: Vec<u32>,
    pub values: Vec<f64>,
}

impl Csr {
    /// Build from (row, col, value) triplets (duplicates summed,
    /// zeros dropped).
    pub fn from_triplets(rows: usize, cols: usize, mut triplets: Vec<(usize, usize, f64)>) -> Csr {
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // sum duplicates in place
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            indices.push(c as u32);
            values.push(v);
            indptr[r + 1] = indices.len();
        }
        // make indptr monotone (rows without entries inherit the prefix)
        for r in 0..rows {
            if indptr[r + 1] < indptr[r] {
                indptr[r + 1] = indptr[r];
            }
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    pub fn zeros(rows: usize, cols: usize) -> Csr {
        Csr {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: vec![],
            values: vec![],
        }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn sparsity(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Entries of row `r` as (col, value) pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.indptr[r]..self.indptr[r + 1];
        self.indices[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&c, &v)| (c as usize, v))
    }

    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    pub fn from_dense(d: &Dense) -> Csr {
        let mut triplets = Vec::new();
        for r in 0..d.rows {
            for c in 0..d.cols {
                let v = d.get(r, c);
                if v != 0.0 {
                    triplets.push((r, c, v));
                }
            }
        }
        Csr::from_triplets(d.rows, d.cols, triplets)
    }

    /// CSR transpose (counting sort over columns).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let pos = cursor[c];
                cursor[c] += 1;
                indices[pos] = r as u32;
                values[pos] = v;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Sparse × dense → dense. Work is O(nnz · n).
    pub fn matmul_dense(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows);
        let n = other.cols;
        let mut out = Dense::zeros(self.rows, n);
        for r in 0..self.rows {
            let orow = &mut out.data[r * n..(r + 1) * n];
            for (k, v) in self.row(r) {
                let brow = &other.data[k * n..(k + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += v * b;
                }
            }
        }
        out
    }

    /// Dense × sparse → dense (via the transpose trick). O(nnz · m).
    pub fn rmatmul_dense(&self, left: &Dense) -> Dense {
        assert_eq!(left.cols, self.rows);
        let m = left.rows;
        let mut out = Dense::zeros(m, self.cols);
        for k in 0..self.rows {
            for (c, v) in self.row(k) {
                for i in 0..m {
                    out.data[i * self.cols + c] += left.get(i, k) * v;
                }
            }
        }
        out
    }

    /// Element-wise multiply by anything (broadcast-aware on the dense
    /// side): only the sparse entries are touched.
    pub fn mul_elem_dense(&self, other: &Dense) -> Csr {
        let mut values = self.values.clone();
        let mut k = 0;
        for r in 0..self.rows {
            for (c, _) in self.row(r) {
                values[k] *= other.bget(r, c);
                k += 1;
            }
        }
        let mut out = self.clone();
        out.values = values;
        out.prune()
    }

    /// Point-wise map that preserves zeros (`f(0) == 0` is the caller's
    /// responsibility); touches only stored entries.
    pub fn map_zero_preserving(&self, f: impl Fn(f64) -> f64) -> Csr {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out.prune()
    }

    /// Remove explicit zeros.
    pub fn prune(mut self) -> Csr {
        if self.values.iter().all(|&v| v != 0.0) {
            return self;
        }
        let mut indptr = vec![0usize; self.rows + 1];
        let mut indices = Vec::with_capacity(self.indices.len());
        let mut values = Vec::with_capacity(self.values.len());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                if v != 0.0 {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr[r + 1] = indices.len();
        }
        self.indptr = indptr;
        self.indices = indices;
        self.values = values;
        self
    }

    /// Sparse + sparse (same shape).
    pub fn add(&self, other: &Csr) -> Csr {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut triplets = Vec::with_capacity(self.nnz() + other.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                triplets.push((r, c, v));
            }
            for (c, v) in other.row(r) {
                triplets.push((r, c, v));
            }
        }
        Csr::from_triplets(self.rows, self.cols, triplets)
    }

    /// Scale all entries.
    pub fn scale(&self, k: f64) -> Csr {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= k;
        }
        out.prune()
    }

    pub fn row_sums(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).map(|(_, v)| v).sum();
        }
        out
    }

    pub fn col_sums(&self) -> Dense {
        let mut out = Dense::zeros(1, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.data[c] += v;
            }
        }
        out
    }

    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[0, 5, 0], [7, 0, 0]]
        Csr::from_triplets(2, 3, vec![(0, 1, 5.0), (1, 0, 7.0)])
    }

    #[test]
    fn triplets_roundtrip() {
        let s = sample();
        assert_eq!(s.nnz(), 2);
        let d = s.to_dense();
        assert_eq!(d.data, vec![0., 5., 0., 7., 0., 0.]);
        assert_eq!(Csr::from_dense(&d), s);
    }

    #[test]
    fn duplicate_triplets_sum() {
        let s = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(s.to_dense().data, vec![3., 0., 0., 3.]);
    }

    #[test]
    fn zero_triplets_dropped() {
        let s = Csr::from_triplets(2, 2, vec![(0, 0, 0.0), (1, 0, 2.0)]);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn transpose_matches_dense() {
        let s = sample();
        assert_eq!(s.transpose().to_dense(), s.to_dense().transpose());
    }

    #[test]
    fn spmm_matches_dense() {
        let s = sample();
        let d = Dense::new(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let got = s.matmul_dense(&d);
        let want = s.to_dense().matmul(&d);
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn dense_times_sparse_matches() {
        let s = sample();
        let d = Dense::new(4, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let got = s.rmatmul_dense(&d);
        let want = d.matmul(&s.to_dense());
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn elementwise_mul_stays_sparse() {
        let s = sample();
        let d = Dense::filled(2, 3, 2.0);
        let got = s.mul_elem_dense(&d);
        assert_eq!(got.nnz(), 2);
        assert_eq!(got.to_dense().get(0, 1), 10.0);
        // broadcast against a column vector
        let col = Dense::new(2, 1, vec![10.0, 0.0]);
        let got = s.mul_elem_dense(&col);
        assert_eq!(got.nnz(), 1, "zero-broadcast row must prune");
        assert_eq!(got.to_dense().get(0, 1), 50.0);
    }

    #[test]
    fn add_and_scale() {
        let s = sample();
        let sum = s.add(&s);
        assert_eq!(sum.to_dense().data, vec![0., 10., 0., 14., 0., 0.]);
        assert_eq!(s.scale(-1.0).sum(), -12.0);
        assert_eq!(s.scale(0.0).nnz(), 0);
    }

    #[test]
    fn aggregates_match_dense() {
        let s = sample();
        let d = s.to_dense();
        assert_eq!(s.row_sums().data, d.row_sums().data);
        assert_eq!(s.col_sums().data, d.col_sums().data);
        assert_eq!(s.sum(), d.sum());
    }

    #[test]
    fn empty_rows_handled() {
        let s = Csr::from_triplets(4, 3, vec![(2, 1, 1.0)]);
        assert_eq!(s.row(0).count(), 0);
        assert_eq!(s.row(2).count(), 1);
        assert_eq!(s.transpose().to_dense(), s.to_dense().transpose());
    }
}
