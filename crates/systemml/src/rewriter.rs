//! The heuristic baseline optimizer (SystemML's algebraic-rewrite pass).
//!
//! This is the comparator the paper evaluates against (§4.2):
//!
//! * `base` — SystemML optimization level 1: constant folding and local
//!   pattern simplifications only; no sum-product rewrites, no fusion.
//! * `opt2` — level 2 (SystemML's default): all hand-coded sum-product
//!   rewrites with their heuristic guards, CSE, constant folding.
//!
//! The guards reproduce the failure modes §3 and §4.2 describe:
//!
//! * `sum(A %*% B)` only rewrites when the product has **no other
//!   consumer** (CSE preservation) — which is exactly why SystemML
//!   misses the PNMF optimization;
//! * rewrites are applied in a fixed phase order by syntactic pattern,
//!   so compositions the patterns don't anticipate (the ALS expansion
//!   `(U Vᵀ − X) V → U Vᵀ V − X V`, the MLR factoring) are missed;
//! * each rule tests its own shape/sparsity side conditions.

use spores_ir::{BinOp, ExprArena, LaNode, NodeId, Shape, ShapeEnv, Symbol, UnOp};
use std::collections::HashMap;

/// SystemML optimization levels used in the evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// Level 1: local simplifications only (the paper's `base`).
    Base,
    /// Level 2: + hand-coded sum-product rewrites and fusion (`opt2`).
    Opt2,
}

/// Variable metadata the rewriter consults (shape + sparsity).
#[derive(Copy, Clone, Debug)]
pub struct VarInfo {
    pub shape: Shape,
    pub sparsity: f64,
}

/// Result of a rewrite pass.
#[derive(Clone, Debug)]
pub struct Rewritten {
    pub arena: ExprArena,
    pub root: NodeId,
    /// Names of rules that fired, in application order.
    pub applied: Vec<&'static str>,
}

/// The baseline rewriter.
pub struct HeuristicRewriter {
    pub level: OptLevel,
}

struct Ctx {
    /// number of parents per node (CSE guard)
    uses: Vec<u32>,
}

impl HeuristicRewriter {
    pub fn new(level: OptLevel) -> Self {
        HeuristicRewriter { level }
    }

    /// Rewrite to fixpoint (bounded passes).
    pub fn rewrite(
        &self,
        arena: &ExprArena,
        root: NodeId,
        vars: &HashMap<Symbol, VarInfo>,
    ) -> Rewritten {
        let mut cur_arena = arena.clone();
        let mut cur_root = root;
        let mut applied = Vec::new();
        for _pass in 0..8 {
            let before = cur_arena.display(cur_root);
            let (next_arena, next_root) = self.one_pass(&cur_arena, cur_root, vars, &mut applied);
            let after = next_arena.display(next_root);
            cur_arena = next_arena;
            cur_root = next_root;
            if before == after {
                break;
            }
        }
        Rewritten {
            arena: cur_arena,
            root: cur_root,
            applied,
        }
    }

    fn one_pass(
        &self,
        arena: &ExprArena,
        root: NodeId,
        vars: &HashMap<Symbol, VarInfo>,
        applied: &mut Vec<&'static str>,
    ) -> (ExprArena, NodeId) {
        let env: ShapeEnv = vars.iter().map(|(&k, v)| (k, v.shape)).collect();
        // shape inference validates the statement before rewriting
        if arena.infer_shapes(root, &env).is_err() {
            return (arena.clone(), root);
        }
        let mut uses = vec![0u32; arena.len()];
        for id in arena.postorder(root) {
            for c in arena.node(id).children() {
                uses[c.index()] += 1;
            }
        }
        let ctx = Ctx { uses };

        let mut out = ExprArena::new();
        let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
        let new_root = self.rec(arena, root, &ctx, &mut out, &mut memo, applied);
        (out, new_root)
    }

    fn rec(
        &self,
        arena: &ExprArena,
        id: NodeId,
        ctx: &Ctx,
        out: &mut ExprArena,
        memo: &mut HashMap<NodeId, NodeId>,
        applied: &mut Vec<&'static str>,
    ) -> NodeId {
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        // children first
        let rebuilt = match *arena.node(id) {
            LaNode::Var(v) => out.insert(LaNode::Var(v)),
            LaNode::Scalar(n) => out.insert(LaNode::Scalar(n)),
            LaNode::Fill(n, r, c) => out.insert(LaNode::Fill(n, r, c)),
            LaNode::Un(op, a) => {
                let a = self.rec(arena, a, ctx, out, memo, applied);
                out.un(op, a)
            }
            LaNode::Bin(op, a, b) => {
                let a = self.rec(arena, a, ctx, out, memo, applied);
                let b = self.rec(arena, b, ctx, out, memo, applied);
                out.bin(op, a, b)
            }
        };
        // then rewrite the rebuilt node (rules see simplified children)
        let result = self.simplify(rebuilt, arena, id, ctx, out, applied);
        memo.insert(id, result);
        result
    }

    /// Apply the first matching rule at `id` (in `out`); `orig` is the
    /// corresponding node in the input arena (for use counts).
    fn simplify(
        &self,
        id: NodeId,
        orig_arena: &ExprArena,
        orig: NodeId,
        ctx: &Ctx,
        out: &mut ExprArena,
        applied: &mut Vec<&'static str>,
    ) -> NodeId {
        let mut id = id;
        // constant folding runs at every level
        if let Some(folded) = fold_constants(out, id) {
            id = folded;
        }
        if let Some((name, new)) = local_simplify(out, id) {
            applied.push(name);
            id = new;
        }
        if self.level == OptLevel::Opt2 {
            if let Some((name, new)) = self.sum_product_rewrites(out, id, orig_arena, orig, ctx) {
                applied.push(name);
                id = new;
            }
        }
        id
    }

    /// The hand-coded sum-product rewrites (Figure 14 families) with
    /// their heuristic guards.
    fn sum_product_rewrites(
        &self,
        out: &mut ExprArena,
        id: NodeId,
        orig_arena: &ExprArena,
        orig: NodeId,
        ctx: &Ctx,
    ) -> Option<(&'static str, NodeId)> {
        let node = *out.node(id);
        match node {
            // SumMatrixMult: sum(A %*% B) -> sum(t(colSums(A)) * rowSums(B))
            // CSE guard: only when the product has no other consumer —
            // the heuristic that misfires on PNMF (§4.2).
            LaNode::Un(UnOp::Sum, mm) => {
                if let LaNode::Bin(BinOp::MatMul, a, b) = *out.node(mm) {
                    let orig_mm = match orig_arena.node(orig) {
                        LaNode::Un(UnOp::Sum, m) => *m,
                        _ => return None,
                    };
                    if ctx.uses.get(orig_mm.index()).copied().unwrap_or(0) > 1 {
                        return None; // preserve the CSE
                    }
                    // DotProductSum special case: vector ᵀ· vector stays
                    let sa = shape_in(out, a);
                    if sa.is_some_and(|s| s.rows == 1) {
                        return None; // already a dot product
                    }
                    let ca = out.col_sums(a);
                    let t = out.t(ca);
                    let rb = out.row_sums(b);
                    let prod = out.mul(t, rb);
                    let s = out.sum(prod);
                    return Some(("SumMatrixMult", s));
                }
                // pushdownSumOnAdd: sum(A + B) -> sum(A) + sum(B)
                if let LaNode::Bin(BinOp::Add, a, b) = *out.node(mm) {
                    let sa = out.sum(a);
                    let sb = out.sum(b);
                    return Some(("pushdownSumOnAdd", out.add(sa, sb)));
                }
                // UnaryAggReorgOperation: sum(t(X)) -> sum(X)
                if let LaNode::Un(UnOp::T, x) = *out.node(mm) {
                    return Some(("UnaryAggReorgOperation", out.sum(x)));
                }
                // UnnecessaryAggregates: sum(rowSums/colSums(X)) -> sum(X)
                if let LaNode::Un(UnOp::RowSums | UnOp::ColSums, x) = *out.node(mm) {
                    return Some(("UnnecessaryAggregates", out.sum(x)));
                }
                // pushdownSumBinaryMult: sum(s * X) -> s * sum(X)
                if let LaNode::Bin(BinOp::Mul, a, b) = *out.node(mm) {
                    if shape_in(out, a).is_some_and(|s| s.is_scalar()) {
                        let sx = out.sum(b);
                        return Some(("pushdownSumBinaryMult", out.mul(a, sx)));
                    }
                    if shape_in(out, b).is_some_and(|s| s.is_scalar()) {
                        let sx = out.sum(a);
                        return Some(("pushdownSumBinaryMult", out.mul(b, sx)));
                    }
                    // DotProductSum: sum(v * v) -> t(v) %*% v
                    if a == b && shape_in(out, a).is_some_and(|s| s.cols == 1) {
                        let t = out.t(a);
                        return Some(("DotProductSum", out.matmul(t, a)));
                    }
                }
                // DotProductSum: sum(v^2) -> t(v) %*% v
                if let LaNode::Bin(BinOp::Pow, v, two) = *out.node(mm) {
                    if matches!(out.node(two), LaNode::Scalar(n) if n.get() == 2.0)
                        && shape_in(out, v).is_some_and(|s| s.cols == 1)
                    {
                        let t = out.t(v);
                        return Some(("DotProductSum", out.matmul(t, v)));
                    }
                }
                None
            }
            // ColSumsMVMult / pushdownUnaryAggTransposeOp
            LaNode::Un(UnOp::ColSums, inner) => {
                if let LaNode::Un(UnOp::T, x) = *out.node(inner) {
                    let rs = out.row_sums(x);
                    return Some(("pushdownUnaryAggTransposeOp", out.t(rs)));
                }
                None
            }
            LaNode::Un(UnOp::RowSums, inner) => {
                if let LaNode::Un(UnOp::T, x) = *out.node(inner) {
                    let cs = out.col_sums(x);
                    return Some(("pushdownUnaryAggTransposeOp", out.t(cs)));
                }
                None
            }
            // BinaryToUnaryOperation: X*X -> X^2; X+X -> X*2
            LaNode::Bin(BinOp::Mul, a, b) if a == b => {
                let two = out.lit(2.0);
                Some(("BinaryToUnaryOperation", out.pow(a, two)))
            }
            LaNode::Bin(BinOp::Add, a, b) if a == b => {
                let two = out.lit(2.0);
                Some(("BinaryToUnaryOperation", out.mul(a, two)))
            }
            // DistributiveBinaryOperation: X - Y*X -> (1 - Y)*X
            LaNode::Bin(BinOp::Sub, x, yx) => {
                if let LaNode::Bin(BinOp::Mul, y, x2) = *out.node(yx) {
                    if x2 == x {
                        let one = out.lit(1.0);
                        let oneminus = out.sub(one, y);
                        return Some(("DistributiveBinaryOperation", out.mul(oneminus, x)));
                    }
                    if y == x {
                        let one = out.lit(1.0);
                        let oneminus = out.sub(one, x2);
                        return Some(("DistributiveBinaryOperation", out.mul(x, oneminus)));
                    }
                }
                None
            }
            _ => None,
        }
    }
}

fn shape_in(arena: &ExprArena, id: NodeId) -> Option<Shape> {
    // local re-inference: rules only query shapes of already-built nodes
    // whose leaves carry no env — fall back to structural guesses
    match arena.node(id) {
        LaNode::Scalar(_) => Some(Shape::scalar()),
        LaNode::Fill(_, r, c) => Some(Shape::new(*r, *c)),
        LaNode::Un(UnOp::RowSums, _) => None,
        _ => None,
    }
}

/// Constant folding over scalar literals.
fn fold_constants(arena: &mut ExprArena, id: NodeId) -> Option<NodeId> {
    let lit = |arena: &ExprArena, n: NodeId| -> Option<f64> {
        match arena.node(n) {
            LaNode::Scalar(v) => Some(v.get()),
            _ => None,
        }
    };
    match *arena.node(id) {
        LaNode::Bin(op, a, b) => {
            let (x, y) = (lit(arena, a)?, lit(arena, b)?);
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Pow => x.powf(y),
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::Gt => f64::from(x > y),
                BinOp::Lt => f64::from(x < y),
                BinOp::Ge => f64::from(x >= y),
                BinOp::Le => f64::from(x <= y),
                BinOp::MatMul => return None,
            };
            (v.is_finite()).then(|| arena.lit(v))
        }
        LaNode::Un(op, a) => {
            let x = lit(arena, a)?;
            let v = match op {
                UnOp::Neg => -x,
                UnOp::Exp => x.exp(),
                UnOp::Log => x.ln(),
                UnOp::Sqrt => x.sqrt(),
                UnOp::Abs => x.abs(),
                UnOp::Sign => x.signum(),
                UnOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                UnOp::Sprop => x * (1.0 - x),
                _ => return None,
            };
            (v.is_finite()).then(|| arena.lit(v))
        }
        _ => None,
    }
}

/// Level-1 local simplifications (no sum-product reasoning).
fn local_simplify(arena: &mut ExprArena, id: NodeId) -> Option<(&'static str, NodeId)> {
    let is_lit = |arena: &ExprArena, n: NodeId, v: f64| -> bool {
        matches!(arena.node(n), LaNode::Scalar(s) if s.get() == v)
    };
    match *arena.node(id) {
        // UnnecessaryBinaryOperation: X*1, 1*X, X+0, 0+X, X-0, X/1
        LaNode::Bin(BinOp::Mul, a, b) if is_lit(arena, b, 1.0) => {
            Some(("UnnecessaryBinaryOperation", a))
        }
        LaNode::Bin(BinOp::Mul, a, b) if is_lit(arena, a, 1.0) => {
            Some(("UnnecessaryBinaryOperation", b))
        }
        LaNode::Bin(BinOp::Add, a, b) if is_lit(arena, b, 0.0) => {
            Some(("UnnecessaryBinaryOperation", a))
        }
        LaNode::Bin(BinOp::Add, a, b) if is_lit(arena, a, 0.0) => {
            Some(("UnnecessaryBinaryOperation", b))
        }
        LaNode::Bin(BinOp::Sub, a, b) if is_lit(arena, b, 0.0) => {
            Some(("UnnecessaryBinaryOperation", a))
        }
        LaNode::Bin(BinOp::Div, a, b) if is_lit(arena, b, 1.0) => {
            Some(("UnnecessaryBinaryOperation", a))
        }
        // UnnecessaryReorgOperation: t(t(X)) -> X
        LaNode::Un(UnOp::T, inner) => match *arena.node(inner) {
            LaNode::Un(UnOp::T, x) => Some(("UnnecessaryReorgOperation", x)),
            _ => None,
        },
        // UnnecessaryMinus: -(-X) -> X
        LaNode::Un(UnOp::Neg, inner) => match *arena.node(inner) {
            LaNode::Un(UnOp::Neg, x) => Some(("UnnecessaryMinus", x)),
            _ => None,
        },
        // sigmoid folding: 1/(1+exp(-X)) -> sigmoid(X)
        LaNode::Bin(BinOp::Div, one, denom) if is_lit(arena, one, 1.0) => {
            if let LaNode::Bin(BinOp::Add, one2, ex) = *arena.node(denom) {
                if is_lit(arena, one2, 1.0) {
                    if let LaNode::Un(UnOp::Exp, negx) = *arena.node(ex) {
                        if let LaNode::Un(UnOp::Neg, x) = *arena.node(negx) {
                            return Some(("FuseSigmoid", arena.un(UnOp::Sigmoid, x)));
                        }
                    }
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spores_ir::parse_expr;

    fn vars(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, VarInfo> {
        list.iter()
            .map(|&(n, (r, c), s)| {
                (
                    Symbol::new(n),
                    VarInfo {
                        shape: Shape::new(r, c),
                        sparsity: s,
                    },
                )
            })
            .collect()
    }

    fn rewrite(src: &str, level: OptLevel, vs: &HashMap<Symbol, VarInfo>) -> String {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let r = HeuristicRewriter::new(level).rewrite(&arena, root, vs);
        r.arena.display(r.root)
    }

    #[test]
    fn constant_folding_at_all_levels() {
        let vs = vars(&[("X", (4, 4), 1.0)]);
        assert_eq!(rewrite("(3 - 2) * X", OptLevel::Base, &vs), "X");
        assert_eq!(rewrite("X + (2 - 2)", OptLevel::Base, &vs), "X");
    }

    #[test]
    fn local_simplifications() {
        let vs = vars(&[("X", (4, 4), 1.0)]);
        assert_eq!(rewrite("t(t(X))", OptLevel::Base, &vs), "X");
        assert_eq!(rewrite("-(-X)", OptLevel::Base, &vs), "X");
        assert_eq!(rewrite("X * 1", OptLevel::Base, &vs), "X");
    }

    #[test]
    fn sigmoid_fusion_after_constant_folding() {
        // the §3 phase-ordering example: (3-2)/(1+exp(-X)) must fold the
        // constant first, then recognize the sigmoid
        let vs = vars(&[("X", (4, 4), 1.0)]);
        assert_eq!(
            rewrite("(3 - 2) / (1 + exp(-X))", OptLevel::Base, &vs),
            "sigmoid(X)"
        );
    }

    #[test]
    fn sum_mm_rewrites_at_opt2_only() {
        let vs = vars(&[("A", (50, 20), 1.0), ("B", (20, 40), 1.0)]);
        let base = rewrite("sum(A %*% B)", OptLevel::Base, &vs);
        assert_eq!(base, "sum(A %*% B)");
        let opt2 = rewrite("sum(A %*% B)", OptLevel::Opt2, &vs);
        assert_eq!(opt2, "sum(t(colSums(A)) * rowSums(B))");
    }

    #[test]
    fn cse_guard_blocks_pnmf_rewrite() {
        // §4.2 PNMF: W%*%H appears twice, so the guard refuses to rewrite
        // sum(W %*% H) — "neither fires", the paper's heuristic failure
        let vs = vars(&[
            ("W", (50, 5), 1.0),
            ("H", (5, 40), 1.0),
            ("X", (50, 40), 0.1),
        ]);
        let out = rewrite("sum(W %*% H) - sum(X * (W %*% H))", OptLevel::Opt2, &vs);
        assert!(
            out.contains("sum(W %*% H)"),
            "CSE guard must block the rewrite: {out}"
        );
    }

    #[test]
    fn distributive_factoring() {
        let vs = vars(&[("X", (10, 10), 1.0), ("Y", (10, 10), 1.0)]);
        assert_eq!(rewrite("X - Y*X", OptLevel::Opt2, &vs), "(1 - Y) * X");
    }

    #[test]
    fn binary_to_unary() {
        let vs = vars(&[("X", (10, 10), 1.0)]);
        assert_eq!(rewrite("X * X", OptLevel::Opt2, &vs), "X^2");
        assert_eq!(rewrite("X + X", OptLevel::Opt2, &vs), "X * 2");
    }

    #[test]
    fn als_expansion_is_missed() {
        // §4.2: "SystemML simply does not consider distributing the
        // multiplication and misses the optimization"
        let vs = vars(&[
            ("X", (100, 80), 0.01),
            ("U", (100, 5), 1.0),
            ("V", (80, 5), 1.0),
        ]);
        let out = rewrite("(U %*% t(V) - X) %*% V", OptLevel::Opt2, &vs);
        assert_eq!(out, "(U %*% t(V) - X) %*% V", "baseline must miss this");
    }

    #[test]
    fn applied_rules_recorded() {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, "sum(t(X))").unwrap();
        let vs = vars(&[("X", (5, 5), 1.0)]);
        let r = HeuristicRewriter::new(OptLevel::Opt2).rewrite(&arena, root, &vs);
        assert!(r.applied.contains(&"UnaryAggReorgOperation"));
    }
}
