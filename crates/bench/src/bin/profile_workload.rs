//! Telemetry-driven phase profiler for the workload-mode optimizer.
//!
//! Runs each §4.2 workload through `Optimizer::optimize_workload` with
//! telemetry enabled and folds the drained span journal into a per-phase
//! wall-time breakdown (translate / saturate split into search, apply,
//! rebuild / extract / lower), so saturation-side changes can be
//! attributed to the phase they actually move — the hand-rolled
//! `Instant::now()` pairs this bin used to carry now live in the
//! `spores-telemetry` spans themselves.
//!
//! Flags:
//!
//! * `--workload NAME` — profile only the named workload
//!   (case-insensitive: `als`, `glm`, `svm`, `mlr`, `pnmf`);
//! * `--trace-out PATH` — additionally write the combined Chrome
//!   trace-event JSON, loadable in `chrome://tracing` or
//!   <https://ui.perfetto.dev>. CI schema-checks this artifact with the
//!   `trace_check` bin.

use spores_core::Optimizer;
use spores_ml::workloads::{self, Workload};
use spores_ml::{workload_bundle, workload_optimizer_config};
use spores_telemetry as telemetry;
use std::time::{Duration, Instant};

fn roster() -> Vec<Workload> {
    vec![
        workloads::als(200, 100, 8, 51),
        workloads::glm(200, 40, 52),
        workloads::svm(200, 40, 53),
        workloads::mlr(200, 20, 54),
        workloads::pnmf(150, 120, 8, 55),
    ]
}

fn fmt(d: Duration) -> String {
    format!("{d:.1?}")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|ix| {
            args.get(ix + 1)
                .unwrap_or_else(|| panic!("{flag} takes a value"))
                .clone()
        })
    };
    let only = flag_value("--workload").map(|w| w.to_lowercase());
    let trace_out = flag_value("--trace-out");

    let mut cfg = workload_optimizer_config();
    cfg.telemetry = true;

    let mut all_events = Vec::new();
    let mut profiled = 0usize;
    for w in roster() {
        if let Some(only) = &only {
            if w.name.to_lowercase() != *only {
                continue;
            }
        }
        profiled += 1;
        // Clean per-workload slate: the journal is drained after each run,
        // but the per-rule counters in the global registry accumulate.
        telemetry::reset();
        let bundle = workload_bundle(&w);
        let t0 = Instant::now();
        let opt = Optimizer::new(cfg.clone())
            .optimize_workload(&bundle.expr, &bundle.vars)
            .expect("workload optimizes");
        let total = t0.elapsed();
        let events = telemetry::drain();
        let phases = telemetry::span_durations(&events);
        let candidates = telemetry::global()
            .registry()
            .counter_sum("saturation.rule.candidates");
        let saturate = phases.total("optimize.saturate");
        let search = phases.total("saturation.search");
        let apply = phases.total("saturation.apply");
        let rebuild = phases.total("saturation.rebuild");
        let extract = phases
            .total("optimize.extract.ilp")
            .max(phases.total("optimize.extract.greedy"));
        println!(
            "{:>5}: total {:>9}  translate {:>9}  saturate {:>9}  [search {:>9}  apply {:>9}  rebuild {:>9}]  extract {:>9}  lower {:>9}  iters {:>3}  candidates {:>7}  nodes {:>6}  stop {:?}",
            w.name,
            fmt(total),
            fmt(phases.total("optimize.translate")),
            fmt(saturate),
            fmt(search),
            fmt(apply),
            fmt(rebuild),
            fmt(extract),
            fmt(phases.total("optimize.lower")),
            phases.count("saturation.iter"),
            candidates,
            opt.saturation.e_nodes,
            opt.saturation.stop_reason,
        );
        assert_eq!(
            candidates as usize, opt.saturation.candidates_visited,
            "{}: per-rule candidate counters must sum to SaturationStats.candidates_visited",
            w.name
        );
        all_events.extend(events);
    }
    if profiled == 0 {
        panic!("--workload matched nothing; roster: als, glm, svm, mlr, pnmf");
    }
    if let Some(path) = trace_out {
        let json = telemetry::chrome_trace_json(&all_events);
        telemetry::validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("emitted trace failed its own schema check: {e}"));
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {} trace events to {path}", all_events.len());
    }
}
