//! Differential property tests for the parallel search phase.
//!
//! The runner's determinism contract: thread count, shard structure,
//! and the e-matching backend are *invisible* — `search_rules_parallel`
//! must return byte-identical results at 1, 2, and 8 threads in both
//! [`MatchingMode`]s (matches in the same order, same visited-candidate
//! counts), and a full `Runner::run` must produce the same union
//! sequence, the same per-iteration `RuleIterStats`, the same stop
//! reason, and the same extracted term at every (thread count, mode)
//! combination.
//!
//! `Pattern::naive_search` stays the ground-truth oracle for *what* the
//! search finds; the serial (1-thread, structural) path is the oracle
//! for *order*.

use proptest::prelude::*;
use spores_egraph::{
    search_rules_parallel, AstSize, EGraph, Extractor, FxHashMap, FxHashSet, Id, Language,
    MatchingMode, ParallelConfig, RecExpr, Rewrite, Runner, Scheduler, SearchMatches, Subst, Var,
};
use std::collections::HashSet;
use std::time::Duration;

/// Tiny arithmetic language (mirrors `proptest_delta.rs`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Node {
    Add([Id; 2]),
    Neg(Id),
    Leaf(u8),
}

impl Language for Node {
    fn children(&self) -> &[Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_ref(c),
            Node::Leaf(_) => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_mut(c),
            Node::Leaf(_) => &mut [],
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (Node::Add(_), Node::Add(_)) => true,
            (Node::Neg(_), Node::Neg(_)) => true,
            (Node::Leaf(a), Node::Leaf(b)) => a == b,
            _ => false,
        }
    }

    fn op_display(&self) -> String {
        match self {
            Node::Add(_) => "+".into(),
            Node::Neg(_) => "neg".into(),
            Node::Leaf(v) => v.to_string(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        match (op, children.len()) {
            ("+", 2) => Ok(Node::Add([children[0], children[1]])),
            ("neg", 1) => Ok(Node::Neg(children[0])),
            (s, 0) => s.parse::<u8>().map(Node::Leaf).map_err(|e| e.to_string()),
            _ => Err("bad arity".into()),
        }
    }
}

/// Construction script: grow an expression bottom-up.
#[derive(Clone, Debug)]
enum Step {
    Leaf(u8),
    Add(usize, usize),
    Neg(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..5).prop_map(Step::Leaf),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
            any::<usize>().prop_map(Step::Neg),
        ],
        1..30,
    )
}

/// One mutation round between searches (see `proptest_delta.rs`).
#[derive(Clone, Debug)]
struct Round {
    rule_mask: u8,
    apply_cap: usize,
    unions: Vec<(usize, usize)>,
}

fn rounds() -> impl Strategy<Value = Vec<Round>> {
    prop::collection::vec(
        (
            any::<u8>(),
            1usize..4,
            prop::collection::vec((any::<usize>(), any::<usize>()), 0..3),
        )
            .prop_map(|(rule_mask, apply_cap, unions)| Round {
                rule_mask,
                apply_cap,
                unions,
            }),
        1..5,
    )
}

fn rules() -> Vec<Rewrite<Node, ()>> {
    vec![
        Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
        Rewrite::new("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
        Rewrite::new("neg-neg", "(neg (neg ?a))", "?a").unwrap(),
        Rewrite::new("add-self-neg", "(+ ?a ?a)", "(neg (neg (+ ?a ?a)))").unwrap(),
    ]
}

fn build(script: &[Step]) -> (EGraph<Node, ()>, Vec<Id>) {
    let mut eg: EGraph<Node, ()> = EGraph::default();
    let mut ids: Vec<Id> = Vec::new();
    for step in script {
        let id = match *step {
            Step::Leaf(v) => eg.add(Node::Leaf(v)),
            Step::Add(a, b) if !ids.is_empty() => {
                eg.add(Node::Add([ids[a % ids.len()], ids[b % ids.len()]]))
            }
            Step::Neg(a) if !ids.is_empty() => eg.add(Node::Neg(ids[a % ids.len()])),
            _ => eg.add(Node::Leaf(0)),
        };
        ids.push(id);
    }
    eg.rebuild();
    eg.check_invariants();
    (eg, ids)
}

/// Build the same expression as a `RecExpr` for `Runner::with_expr`.
fn build_expr(script: &[Step]) -> RecExpr<Node> {
    let mut expr = RecExpr::default();
    let mut ids: Vec<Id> = Vec::new();
    for step in script {
        let id = match *step {
            Step::Leaf(v) => expr.add(Node::Leaf(v)),
            Step::Add(a, b) if !ids.is_empty() => {
                expr.add(Node::Add([ids[a % ids.len()], ids[b % ids.len()]]))
            }
            Step::Neg(a) if !ids.is_empty() => expr.add(Node::Neg(ids[a % ids.len()])),
            _ => expr.add(Node::Leaf(0)),
        };
        ids.push(id);
    }
    expr
}

/// Exact comparable form: matches *in order*, substs *in order*.
fn exact(matches: &[SearchMatches]) -> Vec<(Id, Vec<Subst>)> {
    matches
        .iter()
        .map(|m| (m.eclass, m.substs.clone()))
        .collect()
}

/// Order-insensitive comparable form (for the naive oracle).
fn match_set(matches: &[SearchMatches]) -> HashSet<(Id, Vec<(Var, Id)>)> {
    let mut out = HashSet::new();
    for m in matches {
        for s in &m.substs {
            let mut subst: Vec<(Var, Id)> = s.iter().collect();
            subst.sort();
            out.insert((m.eclass, subst));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Phase-1 determinism at the search level: for arbitrary graphs,
    // dirty sets, muted-rule plans, and (arbitrary, even nonsensical)
    // region masks, `search_rules_parallel` at 2 and 8 threads with
    // single-candidate shards returns *exactly* the serial result —
    // same match order, same substs, same visited counts — and the
    // full-plan rows agree with `naive_search` as a set.
    #[test]
    fn parallel_search_is_bit_identical_to_serial(
        script in steps(),
        rounds in rounds(),
        mask_bits in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (mut eg, ids) = build(&script);
        let rules = rules();
        eg.take_dirty();

        for (round_ix, round) in rounds.iter().enumerate() {
            // --- mutate: capped rule applications + random unions ----
            let selected: Vec<(usize, Vec<SearchMatches>)> = rules
                .iter()
                .enumerate()
                .filter(|(ri, _)| round.rule_mask & (1 << ri) != 0)
                .map(|(ri, rule)| (ri, rule.search(&eg)))
                .collect();
            for (ri, matches) in selected {
                let rule = &rules[ri];
                let mut applied = 0;
                'outer: for m in &matches {
                    for s in &m.substs {
                        if applied >= round.apply_cap {
                            break 'outer;
                        }
                        rule.apply_match(&mut eg, m.eclass, s);
                        applied += 1;
                    }
                }
            }
            for &(a, b) in &round.unions {
                eg.union(ids[a % ids.len()], ids[b % ids.len()]);
            }
            eg.rebuild();
            eg.check_invariants();

            // --- plan: alternate full sweeps, delta sweeps, and muted
            // rules, exactly the shapes the runner produces -----------
            let mut dirty_sorted: Vec<Id> =
                eg.dirty_classes().iter().copied().collect();
            dirty_sorted.sort_unstable();
            let none = FxHashSet::default();
            let plan: Vec<Option<Vec<Id>>> = rules
                .iter()
                .enumerate()
                .map(|(ri, rule)| match (round_ix + ri) % 3 {
                    0 => None, // muted
                    1 => Some(rule.except_candidate_ids(&eg, &none)),
                    _ => Some(rule.delta_candidate_ids(&eg, &dirty_sorted)),
                })
                .collect();

            // arbitrary masks: sharding may group by them, results may not
            // depend on them
            let masks: FxHashMap<Id, u64> = eg
                .classes()
                .map(|c| c.id)
                .enumerate()
                .filter_map(|(i, id)| mask_bits.get(i).map(|&m| (id, m)))
                .collect();

            let serial = search_rules_parallel(
                &eg, &rules, &plan, None, ParallelConfig::serial(), MatchingMode::Structural,
            );
            for (rule, row) in rules.iter().zip(&serial) {
                if let Some((matches, _)) = row {
                    // full-plan rows must agree with the naive oracle
                    let naive = match_set(&rule.searcher.naive_search(&eg));
                    let got = match_set(matches);
                    prop_assert!(
                        got.is_subset(&naive),
                        "{}: parallel search found a non-match", rule.name
                    );
                }
            }
            // Every (thread count, backend) combination — including the
            // serial relational path, which exercises the inline lane
            // and the lazy-guard plans single-candidate shards take —
            // must reproduce the serial structural baseline exactly.
            for mode in [MatchingMode::Structural, MatchingMode::Relational] {
                for threads in [1usize, 2, 8] {
                    if threads == 1 && mode == MatchingMode::Structural {
                        continue; // the baseline itself
                    }
                    for masks in [None, Some(&masks)] {
                        let cfg = ParallelConfig { threads, min_shard_size: 1 };
                        let got = search_rules_parallel(&eg, &rules, &plan, masks, cfg, mode);
                        prop_assert_eq!(got.len(), serial.len());
                        for ((rule, s), g) in rules.iter().zip(&serial).zip(&got) {
                            match (s, g) {
                                (None, None) => {}
                                (Some((sm, sv)), Some((gm, gv))) => {
                                    prop_assert_eq!(
                                        sv, gv,
                                        "{}: visited-candidate count diverged at {} threads ({:?})",
                                        rule.name, threads, mode
                                    );
                                    prop_assert_eq!(
                                        exact(sm), exact(gm),
                                        "{}: match stream diverged at {} threads ({:?}, masks={})",
                                        rule.name, threads, mode, masks.is_some()
                                    );
                                }
                                _ => prop_assert!(false, "muted lane diverged"),
                            }
                        }
                    }
                }
            }
            eg.take_dirty();
        }
    }

    // End-to-end determinism: a full saturation run — sampling
    // scheduler, backoff, delta search, rebuilds — is replayed at 2 and
    // 8 threads (with single-candidate shards) and in relational
    // matching mode at every thread count, and must reproduce the
    // 1-thread structural run exactly: stop reason, per-iteration counts
    // and per-rule `RuleIterStats`, final graph size, and extracted term.
    #[test]
    fn runner_is_deterministic_across_thread_counts(
        script in steps(),
        match_limit in 1usize..20,
    ) {
        let expr = build_expr(&script);
        let rules = rules();
        let run_at = |threads: usize, mode: MatchingMode| {
            Runner::new(())
                .with_expr(&expr)
                .with_scheduler(Scheduler::Sampling {
                    match_limit,
                    seed: 0xC0FFEE,
                })
                .with_iter_limit(6)
                .with_node_limit(1_500)
                .with_time_limit(Duration::from_secs(3600))
                .with_parallel(ParallelConfig {
                    threads,
                    min_shard_size: 1,
                })
                .with_matching(mode)
                .run(&rules)
        };

        let baseline = run_at(1, MatchingMode::Structural);
        let base_term = Extractor::new(&baseline.egraph, AstSize)
            .find_best(baseline.roots[0])
            .expect("root extractable");

        let lanes = [
            (2usize, MatchingMode::Structural),
            (8, MatchingMode::Structural),
            (1, MatchingMode::Relational),
            (2, MatchingMode::Relational),
            (8, MatchingMode::Relational),
        ];
        for (threads, mode) in lanes {
            let got = run_at(threads, mode);
            prop_assert_eq!(
                &got.stop_reason, &baseline.stop_reason,
                "stop reason diverged at {} threads ({:?})", threads, mode
            );
            prop_assert_eq!(
                got.egraph.total_number_of_nodes(), baseline.egraph.total_number_of_nodes(),
                "e-node count diverged at {} threads ({:?})", threads, mode
            );
            prop_assert_eq!(
                got.egraph.number_of_classes(), baseline.egraph.number_of_classes(),
                "e-class count diverged at {} threads ({:?})", threads, mode
            );
            prop_assert_eq!(got.iterations.len(), baseline.iterations.len());
            for (it, (g, b)) in got.iterations.iter().zip(&baseline.iterations).enumerate() {
                prop_assert_eq!(g.matches_found, b.matches_found, "iter {}", it);
                prop_assert_eq!(g.matches_applied, b.matches_applied, "iter {}", it);
                prop_assert_eq!(g.unions, b.unions, "iter {}", it);
                prop_assert_eq!(g.egraph_nodes, b.egraph_nodes, "iter {}", it);
                prop_assert_eq!(g.egraph_classes, b.egraph_classes, "iter {}", it);
                prop_assert_eq!(g.rules.len(), b.rules.len(), "iter {}", it);
                for (gr, br) in g.rules.iter().zip(&b.rules) {
                    prop_assert_eq!(&gr.rule, &br.rule);
                    prop_assert_eq!(
                        gr.candidates, br.candidates,
                        "iter {} rule {}: candidate count diverged ({:?})", it, gr.rule, mode
                    );
                    prop_assert_eq!(gr.matches, br.matches, "iter {} rule {}", it, gr.rule);
                    prop_assert_eq!(gr.applied, br.applied, "iter {} rule {}", it, gr.rule);
                    prop_assert_eq!(gr.unions, br.unions, "iter {} rule {}", it, gr.rule);
                    prop_assert_eq!(gr.muted, br.muted, "iter {} rule {}", it, gr.rule);
                    prop_assert_eq!(gr.delta, br.delta, "iter {} rule {}", it, gr.rule);
                }
            }
            let term = Extractor::new(&got.egraph, AstSize)
                .find_best(got.roots[0])
                .expect("root extractable");
            prop_assert_eq!(
                &term, &base_term,
                "extracted term diverged at {} threads ({:?})", threads, mode
            );
        }
    }
}
