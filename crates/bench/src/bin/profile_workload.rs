//! Ad-hoc phase profiler for the workload-mode saturation loop.
//!
//! Prints the per-phase (search / apply / rebuild) wall-time split of one
//! shared-e-graph pass per §4.2 workload, so saturation-side changes can
//! be attributed to the phase they actually move.

use spores_core::translate::translate_workload;
use spores_core::{default_rules, MetaAnalysis};
use spores_egraph::{RegionConfig, Runner};
use spores_ml::workloads;
use spores_ml::{workload_bundle, workload_optimizer_config};
use std::time::{Duration, Instant};

fn main() {
    let roster = vec![
        workloads::als(200, 100, 8, 51),
        workloads::glm(200, 40, 52),
        workloads::svm(200, 40, 53),
        workloads::mlr(200, 20, 54),
        workloads::pnmf(150, 120, 8, 55),
    ];
    for w in roster {
        let bundle = workload_bundle(&w);
        let cfg = workload_optimizer_config();
        let wt = translate_workload(&bundle.expr.arena, &bundle.expr.roots, &bundle.vars)
            .expect("translates");
        let rules = default_rules();
        let t0 = Instant::now();
        let mut runner = Runner::new(MetaAnalysis::new(wt.ctx.clone()))
            .with_scheduler(cfg.scheduler.clone())
            .with_iter_limit(cfg.iter_limit)
            .with_node_limit(cfg.node_limit)
            .with_time_limit(cfg.time_limit)
            .with_regions(RegionConfig::default());
        for rt in &wt.roots {
            runner = runner.with_expr(&rt.expr);
        }
        let runner = runner.run(&rules);
        let total = t0.elapsed();
        let (mut search, mut apply, mut rebuild) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        let mut candidates = 0usize;
        for it in &runner.iterations {
            search += it.search_time;
            apply += it.apply_time;
            rebuild += it.rebuild_time;
            candidates += it.rules.iter().map(|r| r.candidates).sum::<usize>();
        }
        println!(
            "{:>5}: saturate {:>9.1?}  search {:>9.1?}  apply {:>9.1?}  rebuild {:>9.1?}  other {:>9.1?}  iters {:>3}  candidates {:>7}  nodes {:>6}  stop {:?}",
            w.name,
            total,
            search,
            apply,
            rebuild,
            total.saturating_sub(search + apply + rebuild),
            runner.iterations.len(),
            candidates,
            runner.egraph.total_number_of_nodes(),
            runner.stop_reason,
        );
    }
}
