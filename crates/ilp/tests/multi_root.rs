//! Multi-root ILP extraction against hand-built e-graphs.
//!
//! The instance generalizes Figure 10 of the paper to *two roots*: each
//! root's class offers (a) an exclusive member whose subplan costs
//! ~400k and (b) a member reusing one shared subplan costing ~500k.
//! Greedy chooses per class by tree cost, so each root takes its
//! exclusive member — paying ~800k in total — while the multi-root ILP
//! sees that the 500k subplan is paid once across both roots and picks
//! the shared members (~500k total). The warm-start bound from the
//! greedy multi-root plan must leave that optimum reachable.

use spores_core::{
    extract_greedy_multi, extract_ilp, extract_ilp_multi, parse_math, Context, MathGraph,
    MetaAnalysis, VarMeta,
};
use spores_egraph::{Id, Language};
use spores_ilp::Solver;

fn ctx() -> Context {
    Context::new()
        // the shared expensive subplan: dense outer product U ⊗ V (500k)
        .with_var("U", VarMeta::dense(1000, 1))
        .with_var("V", VarMeta::dense(500, 1))
        // the cheap per-root drivers (nnz 500 each; distinct leaves so
        // the two roots stay distinct classes)
        .with_var("X1", VarMeta::sparse(1000, 500, 0.001))
        .with_var("X2", VarMeta::sparse(1000, 500, 0.001))
        // the exclusive subplans: 0.8-dense joins (400k each)
        .with_var("Y1", VarMeta::sparse(1000, 500, 0.8))
        .with_var("W1", VarMeta::dense(1000, 500))
        .with_var("Y2", VarMeta::sparse(1000, 500, 0.8))
        .with_var("W2", VarMeta::dense(1000, 500))
        .with_index("i", 1000)
        .with_index("j", 500)
}

const SHARED_NNZ: f64 = 500_000.0; // U ⊗ V
const EXCLUSIVE_NNZ: f64 = 400_000.0; // Y_k * W_k

/// Build the two-root instance; returns (egraph, root1, root2).
fn figure_10_two_roots() -> (MathGraph, Id, Id) {
    let mut eg = MathGraph::new(MetaAnalysis::new(ctx()));
    let shared = "(* (b i _ U) (b j _ V))";
    let root = |eg: &mut MathGraph, k: usize| -> Id {
        // exclusive member: X_k * (Y_k * W_k); shared member: X_k * (U ⊗ V)
        let excl = eg.add_expr(
            &parse_math(&format!("(* (b i j X{k}) (* (b i j Y{k}) (b i j W{k})))")).unwrap(),
        );
        let shar = eg.add_expr(&parse_math(&format!("(* (b i j X{k}) {shared})")).unwrap());
        let (id, _) = eg.union(excl, shar);
        id
    };
    let r1 = root(&mut eg, 1);
    let r2 = root(&mut eg, 2);
    eg.rebuild();
    let (r1, r2) = (eg.find(r1), eg.find(r2));
    (eg, r1, r2)
}

#[test]
fn greedy_double_pays_the_shared_subplan_but_multi_root_ilp_does_not() {
    let (eg, r1, r2) = figure_10_two_roots();
    let (greedy_cost, _, ids) = extract_greedy_multi(&eg, &[r1, r2]).unwrap();
    assert_eq!(ids.len(), 2);
    // greedy takes both exclusive 400k subplans
    assert!(
        greedy_cost >= 2.0 * EXCLUSIVE_NNZ,
        "greedy should double-pay: {greedy_cost}"
    );
    let (ilp_cost, expr, ids, stats) =
        extract_ilp_multi(&eg, &[r1, r2], &Solver::default()).unwrap();
    assert!(
        stats.optimal,
        "instance is small enough to prove optimality"
    );
    assert_eq!(ids.len(), 2);
    // ILP pays the 500k subplan once: strictly under both 2×400k and
    // greedy's multi-root DAG cost
    assert!(
        ilp_cost < greedy_cost - (2.0 * EXCLUSIVE_NNZ - SHARED_NNZ) + 10_000.0,
        "ilp {ilp_cost} vs greedy {greedy_cost}"
    );
    assert!(
        ilp_cost <= SHARED_NNZ + 10_000.0,
        "ilp must share the outer product: {ilp_cost} ({expr})"
    );
    // both roots join their own driver against the SAME shared node in
    // the extracted plan (one U ⊗ V, two distinct X_k binds)
    let c1: Vec<Id> = expr.node(ids[0]).children().to_vec();
    let c2: Vec<Id> = expr.node(ids[1]).children().to_vec();
    assert_eq!(c1[1], c2[1], "roots must select the same shared subplan");
    assert_ne!(c1[0], c2[0], "drivers are per-root");
}

#[test]
fn per_root_ilp_cannot_see_the_cross_root_sharing() {
    let (eg, r1, r2) = figure_10_two_roots();
    // alone, each root's exclusive member IS optimal (400k < 500k) …
    let (c1, _, s1) = extract_ilp(&eg, r1, &Solver::default()).unwrap();
    let (c2, _, s2) = extract_ilp(&eg, r2, &Solver::default()).unwrap();
    assert!(s1.optimal && s2.optimal);
    assert!(c1 < SHARED_NNZ && c2 < SHARED_NNZ);
    // … so the per-statement sum exceeds the workload-level optimum by
    // roughly (2·400k − 500k)
    let (multi, _, _, stats) = extract_ilp_multi(&eg, &[r1, r2], &Solver::default()).unwrap();
    assert!(stats.optimal);
    assert!(
        c1 + c2 - multi >= 2.0 * EXCLUSIVE_NNZ - SHARED_NNZ - 10_000.0,
        "per-root {c1}+{c2} vs multi {multi}"
    );
}

#[test]
fn warm_start_from_the_greedy_multi_root_plan_prunes_correctly() {
    let (eg, r1, r2) = figure_10_two_roots();
    let (greedy_cost, _, _) = extract_greedy_multi(&eg, &[r1, r2]).unwrap();
    let (ilp_cost, _, _, stats) = extract_ilp_multi(&eg, &[r1, r2], &Solver::default()).unwrap();
    // the recorded warm start is the greedy multi-root DAG cost, and an
    // upper bound on the optimum
    let ub = stats.warm_start.expect("warm start recorded");
    assert!(
        (ub - greedy_cost).abs() < 1e-6,
        "warm start {ub} vs greedy {greedy_cost}"
    );
    assert!(ilp_cost <= ub + 1e-6);

    // an explicit caller bound at the greedy cost must not change the
    // optimum, and a *tight* bound (== optimum) must still find it:
    // pruning against the warm bound is strict-only
    for bound in [greedy_cost, ilp_cost] {
        let solver = Solver::default().with_upper_bound(bound);
        let (c, _, _, s) = extract_ilp_multi(&eg, &[r1, r2], &solver).unwrap();
        assert!(s.optimal, "bound {bound} lost optimality");
        assert!(
            (c - ilp_cost).abs() < 1e-6,
            "bound {bound} changed the optimum: {c} vs {ilp_cost}"
        );
    }
}
