//! Reference evaluators for LA and RA expressions.
//!
//! These are deliberately naive (dense, index-at-a-time) interpreters used
//! to *specify* semantics: property tests check that translation (R_LR),
//! saturation (R_EQ) and canonicalization all preserve them. The fast
//! execution engine lives in `spores-exec`; this module is the oracle it
//! is tested against.

use crate::lang::{Math, MathExpr};
use spores_egraph::Id;
use spores_ir::{BinOp, ExprArena, LaNode, NodeId, Shape, Symbol, UnOp};
use std::collections::HashMap;

/// A small dense matrix for reference evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl Tensor {
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Tensor {
        assert_eq!(data.len(), rows * cols);
        Tensor { rows, cols, data }
    }

    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn scalar(v: f64) -> Tensor {
        Tensor::new(1, 1, vec![v])
    }

    pub fn shape(&self) -> Shape {
        Shape::new(self.rows as u64, self.cols as u64)
    }

    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Broadcast-aware cell access (1-sized dims repeat).
    pub fn bget(&self, r: usize, c: usize) -> f64 {
        let r = if self.rows == 1 { 0 } else { r };
        let c = if self.cols == 1 { 0 } else { c };
        self.get(r, c)
    }

    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

fn apply_un(op: UnOp, x: f64) -> f64 {
    match op {
        UnOp::Neg => -x,
        UnOp::Exp => x.exp(),
        UnOp::Log => x.ln(),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Abs => x.abs(),
        UnOp::Sign => {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        }
        UnOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        UnOp::Sprop => x * (1.0 - x),
        UnOp::T | UnOp::RowSums | UnOp::ColSums | UnOp::Sum => unreachable!("not element-wise"),
    }
}

fn apply_bin(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Pow => a.powf(b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::Gt => f64::from(a > b),
        BinOp::Lt => f64::from(a < b),
        BinOp::Ge => f64::from(a >= b),
        BinOp::Le => f64::from(a <= b),
        BinOp::MatMul => unreachable!("not element-wise"),
    }
}

/// Evaluate an LA expression over dense inputs.
pub fn eval_la(
    arena: &ExprArena,
    root: NodeId,
    vars: &HashMap<Symbol, Tensor>,
) -> Result<Tensor, String> {
    let mut values: Vec<Option<Tensor>> = vec![None; arena.len()];
    for id in arena.postorder(root) {
        let value = match arena.node(id) {
            LaNode::Var(v) => vars
                .get(v)
                .cloned()
                .ok_or_else(|| format!("unbound variable {v}"))?,
            LaNode::Scalar(n) => Tensor::scalar(n.get()),
            LaNode::Fill(n, r, c) => Tensor {
                rows: *r as usize,
                cols: *c as usize,
                data: vec![n.get(); (*r * *c) as usize],
            },
            LaNode::Un(op, a) => {
                let a = values[a.index()].as_ref().expect("postorder");
                match op {
                    UnOp::T => {
                        let mut out = Tensor::zeros(a.cols, a.rows);
                        for r in 0..a.rows {
                            for c in 0..a.cols {
                                out.set(c, r, a.get(r, c));
                            }
                        }
                        out
                    }
                    UnOp::RowSums => {
                        let mut out = Tensor::zeros(a.rows, 1);
                        for r in 0..a.rows {
                            out.set(r, 0, (0..a.cols).map(|c| a.get(r, c)).sum());
                        }
                        out
                    }
                    UnOp::ColSums => {
                        let mut out = Tensor::zeros(1, a.cols);
                        for c in 0..a.cols {
                            out.set(0, c, (0..a.rows).map(|r| a.get(r, c)).sum());
                        }
                        out
                    }
                    UnOp::Sum => Tensor::scalar(a.data.iter().sum()),
                    op => Tensor {
                        rows: a.rows,
                        cols: a.cols,
                        data: a.data.iter().map(|&x| apply_un(*op, x)).collect(),
                    },
                }
            }
            LaNode::Bin(op, a, b) => {
                let a = values[a.index()].as_ref().expect("postorder");
                let b = values[b.index()].as_ref().expect("postorder");
                match op {
                    BinOp::MatMul => {
                        if a.cols != b.rows {
                            return Err(format!(
                                "matmul shape mismatch {}x{} vs {}x{}",
                                a.rows, a.cols, b.rows, b.cols
                            ));
                        }
                        let mut out = Tensor::zeros(a.rows, b.cols);
                        for r in 0..a.rows {
                            for c in 0..b.cols {
                                let mut acc = 0.0;
                                for k in 0..a.cols {
                                    acc += a.get(r, k) * b.get(k, c);
                                }
                                out.set(r, c, acc);
                            }
                        }
                        out
                    }
                    op => {
                        let rows = a.rows.max(b.rows);
                        let cols = a.cols.max(b.cols);
                        let mut out = Tensor::zeros(rows, cols);
                        for r in 0..rows {
                            for c in 0..cols {
                                out.set(r, c, apply_bin(*op, a.bget(r, c), b.bget(r, c)));
                            }
                        }
                        out
                    }
                }
            }
        };
        values[id.index()] = Some(value);
    }
    Ok(values[root.index()].take().expect("root evaluated"))
}

/// Evaluator for relational (RA) expressions: computes the value of the
/// K-relation at one index valuation, recursing over the term.
pub struct RaEvaluator<'a> {
    pub expr: &'a MathExpr,
    pub vars: &'a HashMap<Symbol, Tensor>,
    pub index_dims: &'a HashMap<Symbol, usize>,
}

impl<'a> RaEvaluator<'a> {
    /// Value of the (sub-)relation at `id` under the index valuation
    /// `env`. Aggregations extend `env` for their bound index (shadowing
    /// any outer binding of the same name, which alpha-freedom makes
    /// benign).
    pub fn value(&self, id: Id, env: &mut HashMap<Symbol, usize>) -> Result<f64, String> {
        use Math::*;
        let v = match self.expr.node(id) {
            Lit(n) => n.get(),
            Bind([i, j, x]) => {
                let name = self.sym_of(*x)?;
                let t = self
                    .vars
                    .get(&name)
                    .ok_or_else(|| format!("unbound variable {name}"))?;
                let r = self.index_value(*i, env)?;
                let c = self.index_value(*j, env)?;
                t.get(r, c)
            }
            Add([a, b]) => self.value(*a, env)? + self.value(*b, env)?,
            Mul([a, b]) => self.value(*a, env)? * self.value(*b, env)?,
            Agg([i, body]) => {
                let sym = self.sym_of(*i)?;
                let dim = *self
                    .index_dims
                    .get(&sym)
                    .ok_or_else(|| format!("unknown index {sym}"))?;
                let saved = env.get(&sym).copied();
                let mut acc = 0.0;
                for v in 0..dim {
                    env.insert(sym, v);
                    acc += self.value(*body, env)?;
                }
                match saved {
                    Some(v) => {
                        env.insert(sym, v);
                    }
                    None => {
                        env.remove(&sym);
                    }
                }
                acc
            }
            Dim(i) => {
                let sym = self.sym_of(*i)?;
                *self
                    .index_dims
                    .get(&sym)
                    .ok_or_else(|| format!("unknown index {sym}"))? as f64
            }
            Pow([a, k]) => self.value(*a, env)?.powf(self.value(*k, env)?),
            Inv(a) => 1.0 / self.value(*a, env)?,
            Exp(a) => self.value(*a, env)?.exp(),
            Log(a) => self.value(*a, env)?.ln(),
            Sqrt(a) => self.value(*a, env)?.sqrt(),
            Abs(a) => self.value(*a, env)?.abs(),
            Sign(a) => {
                let x = self.value(*a, env)?;
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Sigmoid(a) => 1.0 / (1.0 + (-self.value(*a, env)?).exp()),
            Sprop(a) => {
                let p = self.value(*a, env)?;
                p * (1.0 - p)
            }
            Gt([a, b]) => f64::from(self.value(*a, env)? > self.value(*b, env)?),
            Lt([a, b]) => f64::from(self.value(*a, env)? < self.value(*b, env)?),
            Ge([a, b]) => f64::from(self.value(*a, env)? >= self.value(*b, env)?),
            Le([a, b]) => f64::from(self.value(*a, env)? <= self.value(*b, env)?),
            BMin([a, b]) => self.value(*a, env)?.min(self.value(*b, env)?),
            BMax([a, b]) => self.value(*a, env)?.max(self.value(*b, env)?),
            other => return Err(format!("eval_ra: unsupported node {other:?}")),
        };
        Ok(v)
    }

    fn sym_of(&self, id: Id) -> Result<Symbol, String> {
        match self.expr.node(id) {
            Math::Sym(s) => Ok(*s),
            Math::NoIdx => Ok(Symbol::new("_")),
            other => Err(format!("expected symbol, got {other:?}")),
        }
    }

    fn index_value(&self, id: Id, env: &HashMap<Symbol, usize>) -> Result<usize, String> {
        match self.expr.node(id) {
            Math::NoIdx => Ok(0),
            Math::Sym(s) => env
                .get(s)
                .copied()
                .ok_or_else(|| format!("free index {s} not bound by caller")),
            other => Err(format!("expected index, got {other:?}")),
        }
    }
}

/// Materialize an RA expression to a matrix, iterating its (≤2) free
/// attributes in the `(row, col)` orientation the translator reports.
pub fn eval_ra(
    expr: &MathExpr,
    row: Option<Symbol>,
    col: Option<Symbol>,
    vars: &HashMap<Symbol, Tensor>,
    index_dims: &HashMap<Symbol, usize>,
) -> Result<Tensor, String> {
    let ev = RaEvaluator {
        expr,
        vars,
        index_dims,
    };
    let rows = row.map_or(Ok(1), |s| {
        index_dims
            .get(&s)
            .copied()
            .ok_or_else(|| format!("unknown row index {s}"))
    })?;
    let cols = col.map_or(Ok(1), |s| {
        index_dims
            .get(&s)
            .copied()
            .ok_or_else(|| format!("unknown col index {s}"))
    })?;
    let mut out = Tensor::zeros(rows, cols);
    let mut env = HashMap::new();
    for r in 0..rows {
        if let Some(s) = row {
            env.insert(s, r);
        }
        for c in 0..cols {
            if let Some(s) = col {
                env.insert(s, c);
            }
            out.set(r, c, ev.value(expr.root(), &mut env)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::VarMeta;
    use crate::translate::translate;
    use spores_ir::parse_expr;

    fn t(rows: usize, cols: usize, data: &[f64]) -> Tensor {
        Tensor::new(rows, cols, data.to_vec())
    }

    fn check_translation(src: &str, inputs: &[(&str, Tensor)]) {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let tensors: HashMap<Symbol, Tensor> = inputs
            .iter()
            .map(|(n, t)| (Symbol::new(n), t.clone()))
            .collect();
        let vars: HashMap<Symbol, VarMeta> = inputs
            .iter()
            .map(|(n, t)| (Symbol::new(n), VarMeta::dense(t.rows as u64, t.cols as u64)))
            .collect();

        let la = eval_la(&arena, root, &tensors).unwrap();

        let tr = translate(&arena, root, &vars).unwrap();
        let dims: HashMap<Symbol, usize> = tr
            .ctx
            .index_dims
            .iter()
            .map(|(&s, &d)| (s, d as usize))
            .collect();
        let ra = eval_ra(&tr.expr, tr.row, tr.col, &tensors, &dims).unwrap();

        assert!(
            la.approx_eq(&ra, 1e-9),
            "{src}: LA {la:?} != RA {ra:?} (plan: {})",
            tr.expr
        );
    }

    #[test]
    fn figure_1_examples() {
        // A * xᵀ and A x from Figure 1 of the paper
        let a = t(2, 2, &[0.0, 5.0, 7.0, 0.0]);
        let x = t(2, 1, &[3.0, 2.0]);
        check_translation("A * t(x)", &[("A", a.clone()), ("x", x.clone())]);
        check_translation("A %*% x", &[("A", a), ("x", x)]);
    }

    #[test]
    fn la_eval_basics() {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, "t(X) %*% X").unwrap();
        let x = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let vars = HashMap::from([(Symbol::new("X"), x)]);
        let got = eval_la(&arena, root, &vars).unwrap();
        assert_eq!(got, t(2, 2, &[10.0, 14.0, 14.0, 20.0]));
    }

    #[test]
    fn translation_preserves_semantics_on_corpus() {
        let x = t(3, 4, &[1., -2., 3., 0., 0., 5., -1., 2., 4., 0., 0., 1.]);
        let y = t(3, 4, &[2., 0., 1., 1., -3., 1., 0., 0., 2., 2., 1., -1.]);
        let u = t(3, 1, &[1., -1., 2.]);
        let v = t(4, 1, &[0.5, 2., -1., 1.]);
        let s = Tensor::scalar(3.0);
        let inputs: Vec<(&str, Tensor)> = vec![("X", x), ("Y", y), ("u", u), ("v", v), ("s", s)];
        for src in [
            "X + Y",
            "X - Y",
            "X * Y",
            "X / (Y + 10)",
            "X %*% t(Y)",
            "t(X) %*% X",
            "X %*% v",
            "t(u) %*% X",
            "u %*% t(v)",
            "sum(X)",
            "rowSums(X * Y)",
            "colSums(X)",
            "sum((X - u %*% t(v))^2)",
            "sum(X^2) - 2 * (t(u) %*% X %*% v) + (t(u) %*% u) * (t(v) %*% v)",
            "X * u",
            "X + s",
            "s * X",
            "sigmoid(X)",
            "abs(X) * sign(X)",
            "exp(X * 0.1)",
            "(X > 0) - (X < 0)",
            "min(X, Y) + max(X, Y)",
            "-X",
            "sum(t(X))",
            "rowSums(t(Y))",
            "colSums(X %*% t(Y))",
            "sum(u) * sum(v)",
            "(X %*% t(Y)) %*% u",
            "t(v) %*% t(X)",
        ] {
            check_translation(src, &inputs);
        }
    }

    #[test]
    fn headline_equivalence_numerically() {
        // sum((X−uvᵀ)²) == sum(X²) − 2uᵀXv + (uᵀu)(vᵀv)
        let x = t(3, 2, &[1., 0., 0., 2., 3., 0.]);
        let u = t(3, 1, &[1., 2., -1.]);
        let v = t(2, 1, &[0.5, -1.5]);
        let vars = HashMap::from([
            (Symbol::new("X"), x),
            (Symbol::new("u"), u),
            (Symbol::new("v"), v),
        ]);
        let mut arena = ExprArena::new();
        let lhs = parse_expr(&mut arena, "sum((X - u %*% t(v))^2)").unwrap();
        let rhs = parse_expr(
            &mut arena,
            "sum(X^2) - 2 * (t(u) %*% X %*% v) + (t(u) %*% u) * (t(v) %*% v)",
        )
        .unwrap();
        let a = eval_la(&arena, lhs, &vars).unwrap();
        let b = eval_la(&arena, rhs, &vars).unwrap();
        assert!(a.approx_eq(&b, 1e-9), "{a:?} vs {b:?}");
    }

    #[test]
    fn shadowed_binder_evaluates_closed_inner_term() {
        // Σ_i ( (Σ_i u(i)) * u(i) ): the inner Σ_i is closed; shadowing
        // must not leak the outer i into it.
        let expr = crate::lang::parse_math("(sum i (* (sum i (b i _ u)) (b i _ u)))").unwrap();
        let u = t(3, 1, &[1., 2., 4.]);
        let vars = HashMap::from([(Symbol::new("u"), u)]);
        let dims = HashMap::from([(Symbol::new("i"), 3usize)]);
        let got = eval_ra(&expr, None, None, &vars, &dims).unwrap();
        // inner sum = 7; outer = Σ_i 7*u(i) = 7*7 = 49
        assert_eq!(got, Tensor::scalar(49.0));
    }
}
