//! Class invariants (paper §3.2): schema, sparsity, constant folding.
//!
//! Every e-class carries a [`Meta`] value:
//!
//! * **kind/schema** — the set of free attributes of the relational
//!   expression (or the matrix shape for LA sub-terms). "All expressions
//!   in the same class must contain the same set of free attributes",
//!   which is what lets conditional rules like rule 3 of Figure 3 match
//!   on deeply-nested schema facts.
//! * **sparsity** — the Figure 12 estimate. Because the estimate is
//!   conservative, merged classes keep the *tighter* bound.
//! * **constant** — scalar constant folding, integrated with rewriting by
//!   adding the folded literal to the class in the `modify` hook.

use crate::lang::Math;
use spores_egraph::{Analysis, DidMerge, EGraph, FxHashMap, Id};
use spores_ir::{Shape, Symbol};

/// Shape and sparsity of an input matrix.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VarMeta {
    pub shape: Shape,
    /// Fraction of non-zero cells, in `[0, 1]`.
    pub sparsity: f64,
}

impl VarMeta {
    pub fn dense(rows: u64, cols: u64) -> VarMeta {
        VarMeta {
            shape: Shape::new(rows, cols),
            sparsity: 1.0,
        }
    }

    pub fn sparse(rows: u64, cols: u64, sparsity: f64) -> VarMeta {
        assert!((0.0..=1.0).contains(&sparsity));
        VarMeta {
            shape: Shape::new(rows, cols),
            sparsity,
        }
    }

    pub fn scalar() -> VarMeta {
        VarMeta::dense(1, 1)
    }
}

/// The environment the analysis consults: matrix variables and index
/// dimensions. Built by the translator (or by hand in tests).
#[derive(Clone, Debug, Default)]
pub struct Context {
    pub vars: FxHashMap<Symbol, VarMeta>,
    pub index_dims: FxHashMap<Symbol, u64>,
}

impl Context {
    pub fn new() -> Context {
        Context::default()
    }

    pub fn with_var(mut self, name: impl Into<Symbol>, meta: VarMeta) -> Self {
        self.vars.insert(name.into(), meta);
        self
    }

    pub fn with_index(mut self, name: impl Into<Symbol>, dim: u64) -> Self {
        self.index_dims.insert(name.into(), dim);
        self
    }

    pub fn register_index(&mut self, name: Symbol, dim: u64) {
        self.index_dims.insert(name, dim);
    }
}

/// Sorted set of (attribute, dimension) pairs — the schema of a relation.
pub type Schema = Vec<(Symbol, u64)>;

fn schema_union(a: &Schema, b: &Schema) -> Schema {
    let mut out = a.clone();
    for &(s, d) in b {
        if !out.iter().any(|&(t, _)| t == s) {
            out.push((s, d));
        }
    }
    out.sort_unstable();
    out
}

/// What sort of value an e-class denotes.
#[derive(Clone, Debug, PartialEq)]
pub enum Kind {
    /// A scalar: a relation with empty schema / a 1×1 matrix.
    Scalar,
    /// An LA value with a concrete shape.
    Mat(Shape),
    /// A K-relation with the given free attributes.
    Rel(Schema),
    /// An index leaf (appears as the first child of `sum`/`b`/`ub`/`dim`).
    Index { sym: Symbol, dim: u64 },
    /// Insufficient information (e.g. an unregistered variable).
    Unknown,
}

impl Kind {
    /// Number of cells of the value (1 for scalars; 0-cost for indexes).
    pub fn size(&self) -> f64 {
        match self {
            Kind::Scalar | Kind::Index { .. } => 1.0,
            Kind::Mat(s) => (s.rows as f64) * (s.cols as f64),
            Kind::Rel(schema) => schema.iter().map(|&(_, d)| d as f64).product(),
            Kind::Unknown => 1.0,
        }
    }

    /// The free attributes, if this is a relational value.
    /// Scalars have an empty schema.
    pub fn attrs(&self) -> Option<Vec<Symbol>> {
        match self {
            Kind::Scalar => Some(vec![]),
            Kind::Rel(schema) => Some(schema.iter().map(|&(s, _)| s).collect()),
            _ => None,
        }
    }

    fn rel_or_scalar(schema: Schema) -> Kind {
        if schema.is_empty() {
            Kind::Scalar
        } else {
            Kind::Rel(schema)
        }
    }

    fn mat_or_scalar(shape: Shape) -> Kind {
        if shape.is_scalar() {
            Kind::Scalar
        } else {
            Kind::Mat(shape)
        }
    }
}

/// The per-class invariant value.
#[derive(Clone, Debug, PartialEq)]
pub struct Meta {
    pub kind: Kind,
    pub sparsity: f64,
    pub constant: Option<f64>,
}

impl Meta {
    fn unknown() -> Meta {
        Meta {
            kind: Kind::Unknown,
            sparsity: 1.0,
            constant: None,
        }
    }

    /// Estimated number of non-zero entries.
    pub fn nnz(&self) -> f64 {
        self.kind.size() * self.sparsity
    }
}

/// The SPORES analysis: resolves symbols against a [`Context`] and
/// propagates the three invariants.
#[derive(Clone, Debug, Default)]
pub struct MetaAnalysis {
    pub ctx: Context,
}

impl MetaAnalysis {
    pub fn new(ctx: Context) -> Self {
        MetaAnalysis { ctx }
    }
}

/// The e-graph type used throughout the optimizer.
pub type MathGraph = EGraph<Math, MetaAnalysis>;

fn clamp01(s: f64) -> f64 {
    s.clamp(0.0, 1.0)
}

/// Schema of an operand viewed as a relation (scalars have empty schema).
fn rel_schema(meta: &Meta) -> Option<Schema> {
    match &meta.kind {
        Kind::Scalar => Some(vec![]),
        Kind::Rel(s) => Some(s.clone()),
        _ => None,
    }
}

/// Shape of an operand viewed as a matrix (scalars are 1×1).
fn mat_shape(meta: &Meta) -> Option<Shape> {
    match &meta.kind {
        Kind::Scalar => Some(Shape::scalar()),
        Kind::Mat(s) => Some(*s),
        _ => None,
    }
}

impl Analysis<Math> for MetaAnalysis {
    type Data = Meta;

    fn make(egraph: &EGraph<Math, Self>, enode: &Math) -> Meta {
        use Math::*;
        let d = |id: &Id| -> &Meta { &egraph.class(*id).data };
        let ctx = &egraph.analysis.ctx;

        // point-wise binary: schema/shape broadcast, custom sparsity,
        // constant folding through `fold`
        let pointwise2 = |a: &Meta, b: &Meta, sp: f64, fold: Option<f64>| -> Meta {
            let kind = match (rel_schema(a), rel_schema(b)) {
                (Some(sa), Some(sb)) => Kind::rel_or_scalar(schema_union(&sa, &sb)),
                _ => match (mat_shape(a), mat_shape(b)) {
                    (Some(sa), Some(sb)) => match spores_ir::shape::broadcast(sa, sb) {
                        Some(s) => Kind::mat_or_scalar(s),
                        None => Kind::Unknown,
                    },
                    _ => Kind::Unknown,
                },
            };
            Meta {
                kind,
                sparsity: clamp01(sp),
                constant: fold,
            }
        };
        let fold2 = |a: &Meta, b: &Meta, f: fn(f64, f64) -> f64| -> Option<f64> {
            match (a.constant, b.constant) {
                (Some(x), Some(y)) => Some(f(x, y)),
                _ => None,
            }
        };
        // point-wise unary: schema/shape preserved
        let pointwise1 = |a: &Meta, sp: f64, fold: Option<f64>| -> Meta {
            Meta {
                kind: a.kind.clone(),
                sparsity: clamp01(sp),
                constant: fold,
            }
        };

        match enode {
            Sym(s) => {
                if let Some(&dim) = ctx.index_dims.get(s) {
                    Meta {
                        kind: Kind::Index { sym: *s, dim },
                        sparsity: 1.0,
                        constant: None,
                    }
                } else if let Some(v) = ctx.vars.get(s) {
                    Meta {
                        kind: Kind::mat_or_scalar(v.shape),
                        sparsity: v.sparsity,
                        constant: None,
                    }
                } else {
                    Meta::unknown()
                }
            }
            NoIdx => Meta {
                kind: Kind::Index {
                    sym: Symbol::new("_"),
                    dim: 1,
                },
                sparsity: 1.0,
                constant: None,
            },
            Lit(n) => Meta {
                kind: Kind::Scalar,
                sparsity: if n.get() == 0.0 { 0.0 } else { 1.0 },
                constant: Some(n.get()),
            },
            Dim(i) => match d(i).kind {
                Kind::Index { dim, .. } => Meta {
                    kind: Kind::Scalar,
                    sparsity: 1.0,
                    constant: Some(dim as f64),
                },
                _ => Meta::unknown(),
            },
            Bind([i, j, a]) => {
                let mut schema = Schema::new();
                for idx in [i, j] {
                    if let Kind::Index { sym, dim } = d(idx).kind {
                        if sym != Symbol::new("_") {
                            schema.push((sym, dim));
                        }
                    } else {
                        return Meta::unknown();
                    }
                }
                schema.sort_unstable();
                let a = d(a);
                Meta {
                    kind: Kind::rel_or_scalar(schema),
                    sparsity: a.sparsity,
                    constant: a.constant,
                }
            }
            Unbind([i, j, a]) => {
                let dim_of = |idx: &Id| -> Option<u64> {
                    match d(idx).kind {
                        Kind::Index { dim, .. } => Some(dim),
                        _ => None,
                    }
                };
                match (dim_of(i), dim_of(j)) {
                    (Some(r), Some(c)) => {
                        let a = d(a);
                        Meta {
                            kind: Kind::mat_or_scalar(Shape::new(r, c)),
                            sparsity: a.sparsity,
                            constant: a.constant,
                        }
                    }
                    _ => Meta::unknown(),
                }
            }

            // ---- RA ----
            Add([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity + b.sparsity, fold2(a, b, |x, y| x + y))
            }
            Mul([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity.min(b.sparsity), fold2(a, b, |x, y| x * y))
            }
            Agg([i, body]) => {
                let (dim, sym) = match d(i).kind {
                    Kind::Index { sym, dim } => (dim, sym),
                    _ => return Meta::unknown(),
                };
                let body = d(body);
                match rel_schema(body) {
                    Some(schema) => {
                        let reduced: Schema =
                            schema.iter().copied().filter(|&(s, _)| s != sym).collect();
                        // Figure 12: S[Σ_i X] = min(1, |i| · S[X])
                        let sparsity = clamp01(dim as f64 * body.sparsity);
                        let constant = if schema.is_empty() {
                            // Σ_i c = c · dim(i) (rule 5 on constants)
                            body.constant.map(|c| c * dim as f64)
                        } else {
                            None
                        };
                        Meta {
                            kind: Kind::rel_or_scalar(reduced),
                            sparsity,
                            constant,
                        }
                    }
                    None => Meta::unknown(),
                }
            }

            // ---- LA ----
            LAdd([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity + b.sparsity, fold2(a, b, |x, y| x + y))
            }
            LSub([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity + b.sparsity, fold2(a, b, |x, y| x - y))
            }
            LMul([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity.min(b.sparsity), fold2(a, b, |x, y| x * y))
            }
            LDiv([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity, fold2(a, b, |x, y| x / y))
            }
            MMul([a, b]) => {
                let (a, b) = (d(a), d(b));
                match (mat_shape(a), mat_shape(b)) {
                    (Some(sa), Some(sb)) if sa.cols == sb.rows => Meta {
                        kind: Kind::mat_or_scalar(Shape::new(sa.rows, sb.cols)),
                        sparsity: clamp01(a.sparsity * b.sparsity * sa.cols as f64),
                        constant: fold2(a, b, |x, y| x * y)
                            .filter(|_| sa.is_scalar() && sb.is_scalar()),
                    },
                    _ => Meta::unknown(),
                }
            }
            LTrs(a) => {
                let a = d(a);
                match mat_shape(a) {
                    Some(s) => Meta {
                        kind: Kind::mat_or_scalar(s.transposed()),
                        sparsity: a.sparsity,
                        constant: a.constant,
                    },
                    None => Meta::unknown(),
                }
            }
            Srow(a) => {
                let a = d(a);
                match mat_shape(a) {
                    Some(s) => Meta {
                        kind: Kind::mat_or_scalar(Shape::new(s.rows, 1)),
                        sparsity: clamp01(a.sparsity * s.cols as f64),
                        constant: a.constant.filter(|_| s.is_scalar()),
                    },
                    None => Meta::unknown(),
                }
            }
            Scol(a) => {
                let a = d(a);
                match mat_shape(a) {
                    Some(s) => Meta {
                        kind: Kind::mat_or_scalar(Shape::new(1, s.cols)),
                        sparsity: clamp01(a.sparsity * s.rows as f64),
                        constant: a.constant.filter(|_| s.is_scalar()),
                    },
                    None => Meta::unknown(),
                }
            }
            Sall(a) => {
                let a = d(a);
                match mat_shape(a) {
                    Some(s) => Meta {
                        kind: Kind::Scalar,
                        sparsity: clamp01(a.sparsity * s.nelem() as f64),
                        constant: a.constant.filter(|_| s.is_scalar()),
                    },
                    None => Meta::unknown(),
                }
            }

            // ---- point-wise functions ----
            Pow([a, k]) => {
                let (a, k) = (d(a), d(k));
                // 0^k = 0 for k > 0, so sparsity is preserved
                let fold = fold2(a, k, f64::powf);
                pointwise1(a, a.sparsity, fold)
            }
            Inv(a) => {
                let a = d(a);
                pointwise1(a, 1.0, a.constant.map(|c| 1.0 / c))
            }
            Exp(a) => {
                let a = d(a);
                pointwise1(a, 1.0, a.constant.map(f64::exp))
            }
            Log(a) => {
                let a = d(a);
                pointwise1(a, 1.0, a.constant.map(f64::ln))
            }
            Sqrt(a) => {
                let a = d(a);
                pointwise1(a, a.sparsity, a.constant.map(f64::sqrt))
            }
            Abs(a) => {
                let a = d(a);
                pointwise1(a, a.sparsity, a.constant.map(f64::abs))
            }
            Sign(a) => {
                let a = d(a);
                pointwise1(a, a.sparsity, a.constant.map(f64::signum))
            }
            Sigmoid(a) => {
                let a = d(a);
                pointwise1(a, 1.0, a.constant.map(|c| 1.0 / (1.0 + (-c).exp())))
            }
            Sprop(a) => {
                let a = d(a);
                pointwise1(a, a.sparsity, a.constant.map(|c| c * (1.0 - c)))
            }
            Gt([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, 1.0, fold2(a, b, |x, y| f64::from(x > y)))
            }
            Lt([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, 1.0, fold2(a, b, |x, y| f64::from(x < y)))
            }
            Ge([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, 1.0, fold2(a, b, |x, y| f64::from(x >= y)))
            }
            Le([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, 1.0, fold2(a, b, |x, y| f64::from(x <= y)))
            }
            BMin([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity + b.sparsity, fold2(a, b, f64::min))
            }
            BMax([a, b]) => {
                let (a, b) = (d(a), d(b));
                pointwise2(a, b, a.sparsity + b.sparsity, fold2(a, b, f64::max))
            }
        }
    }

    fn merge(&mut self, a: &mut Meta, b: Meta) -> DidMerge {
        let mut did = DidMerge(false, false);

        // kind: Unknown is the bottom; otherwise keep `a` (schemas of
        // merged classes must agree — the schema invariant of §3.2).
        match (&a.kind, &b.kind) {
            (Kind::Unknown, k) if *k != Kind::Unknown => {
                a.kind = b.kind.clone();
                did.0 = true;
            }
            (k, Kind::Unknown) if *k != Kind::Unknown => {
                did.1 = true;
            }
            (ka, kb) => {
                debug_assert_eq!(ka, kb, "schema invariant violated: merged classes disagree");
            }
        }

        // sparsity: both estimates bound the true value; keep the tighter.
        if b.sparsity < a.sparsity {
            a.sparsity = b.sparsity;
            did.0 = true;
        } else if a.sparsity < b.sparsity {
            did.1 = true;
        }

        // constants: equal expressions must fold to the same value.
        match (a.constant, b.constant) {
            (None, Some(c)) => {
                a.constant = Some(c);
                did.0 = true;
            }
            (Some(_), None) => did.1 = true,
            (Some(x), Some(y)) => {
                debug_assert!(
                    (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
                    "constant-folding conflict: {x} vs {y}"
                );
            }
            (None, None) => {}
        }
        did
    }

    fn modify(egraph: &mut EGraph<Math, Self>, id: Id) {
        // Integrated constant folding (§3.2): as soon as a scalar class
        // has a known constant value, materialize the literal in-class.
        let data = &egraph.class(id).data;
        if data.kind == Kind::Scalar {
            if let Some(c) = data.constant {
                if c.is_finite() {
                    let lit = egraph.add(Math::lit(c));
                    egraph.union(id, lit);
                }
            }
        }
    }
}

/// Rule-condition helper: is index `i` (an e-class of kind `Index`)
/// absent from the free attributes of class `a`? Conservative: `false`
/// when the schema is unknown.
pub fn index_not_in_schema(egraph: &MathGraph, i: Id, a: Id) -> bool {
    let sym = match egraph.class(i).data.kind {
        Kind::Index { sym, .. } => sym,
        _ => return false,
    };
    match egraph.class(a).data.kind.attrs() {
        Some(attrs) => !attrs.contains(&sym),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_math;

    fn ctx() -> Context {
        Context::new()
            .with_var("X", VarMeta::sparse(100, 50, 0.01))
            .with_var("U", VarMeta::dense(100, 1))
            .with_var("V", VarMeta::dense(50, 1))
            .with_index("i", 100)
            .with_index("j", 50)
    }

    fn graph_with(src: &str) -> (MathGraph, Id) {
        let mut eg = MathGraph::new(MetaAnalysis::new(ctx()));
        let e = parse_math(src).unwrap();
        let id = eg.add_expr(&e);
        eg.rebuild();
        (eg, id)
    }

    #[test]
    fn bind_gives_schema() {
        let (eg, id) = graph_with("(b i j X)");
        let meta = &eg.class(id).data;
        assert_eq!(
            meta.kind,
            Kind::Rel(vec![(Symbol::new("i"), 100), (Symbol::new("j"), 50)])
        );
        assert_eq!(meta.sparsity, 0.01);
        assert_eq!(meta.nnz(), 50.0);
    }

    #[test]
    fn vector_bind_single_attr() {
        let (eg, id) = graph_with("(b i _ U)");
        assert_eq!(
            eg.class(id).data.kind,
            Kind::Rel(vec![(Symbol::new("i"), 100)])
        );
    }

    #[test]
    fn join_sparsity_is_min() {
        let (eg, id) = graph_with("(* (b i j X) (* (b i _ U) (b j _ V)))");
        let meta = &eg.class(id).data;
        assert_eq!(meta.sparsity, 0.01);
        assert_eq!(
            meta.kind,
            Kind::Rel(vec![(Symbol::new("i"), 100), (Symbol::new("j"), 50)])
        );
    }

    #[test]
    fn union_sparsity_is_sum() {
        let (eg, id) = graph_with("(+ (b i j X) (b i j X))");
        assert_eq!(eg.class(id).data.sparsity, 0.02);
    }

    #[test]
    fn agg_removes_attr_and_scales_sparsity() {
        let (eg, id) = graph_with("(sum j (b i j X))");
        let meta = &eg.class(id).data;
        assert_eq!(meta.kind, Kind::Rel(vec![(Symbol::new("i"), 100)]));
        assert_eq!(meta.sparsity, 0.5); // min(1, 50 * 0.01)
    }

    #[test]
    fn full_agg_is_scalar() {
        let (eg, id) = graph_with("(sum i (sum j (b i j X)))");
        assert_eq!(eg.class(id).data.kind, Kind::Scalar);
    }

    #[test]
    fn constant_folding_adds_literal() {
        let (eg, id) = graph_with("(* 3 (+ 1 1))");
        let meta = &eg.class(id).data;
        assert_eq!(meta.constant, Some(6.0));
        // the literal 6 must now be in the class
        let lit = parse_math("6").unwrap();
        assert_eq!(eg.lookup_expr(&lit), Some(eg.find(id)));
    }

    #[test]
    fn dim_is_constant() {
        let (eg, id) = graph_with("(dim i)");
        assert_eq!(eg.class(id).data.constant, Some(100.0));
    }

    #[test]
    fn agg_of_scalar_multiplies_by_dim() {
        // Σ_i 5 = 5 * dim(i) = 500 (the rule-5 example from §2.2)
        let (eg, id) = graph_with("(sum i 5)");
        assert_eq!(eg.class(id).data.constant, Some(500.0));
    }

    #[test]
    fn la_shapes_and_sparsity() {
        let (eg, id) = graph_with("(m* X V)");
        let meta = &eg.class(id).data;
        assert_eq!(meta.kind, Kind::Mat(Shape::new(100, 1)));
        // min(1, 0.01 * 1.0 * 50)
        assert!((meta.sparsity - 0.5).abs() < 1e-12);

        let (eg, id) = graph_with("(t X)");
        assert_eq!(eg.class(id).data.kind, Kind::Mat(Shape::new(50, 100)));

        let (eg, id) = graph_with("(sall X)");
        assert_eq!(eg.class(id).data.kind, Kind::Scalar);
    }

    #[test]
    fn zero_literal_has_zero_sparsity() {
        let (eg, id) = graph_with("(* (b i j X) 0)");
        assert_eq!(eg.class(id).data.sparsity, 0.0);
    }

    #[test]
    fn merge_keeps_tighter_sparsity() {
        let mut eg = MathGraph::new(MetaAnalysis::new(ctx()));
        let dense = eg.add_expr(&parse_math("(+ (b i j X) (b i j X))").unwrap());
        let sparse = eg.add_expr(&parse_math("(* (b i j X) 2)").unwrap());
        let before = eg.class(dense).data.sparsity;
        assert!(before > eg.class(sparse).data.sparsity);
        eg.union(dense, sparse);
        eg.rebuild();
        assert_eq!(eg.class(dense).data.sparsity, 0.01);
    }

    #[test]
    fn condition_helper() {
        // i IS in the schema of (b i j X)
        let (mut eg, x) = graph_with("(b i j X)");
        let i = eg.add(Math::sym("i"));
        assert!(!index_not_in_schema(&eg, i, x));

        // i is NOT in the schema of (b j _ V)
        let (mut eg, v) = graph_with("(b j _ V)");
        let i = eg.add(Math::sym("i"));
        assert!(index_not_in_schema(&eg, i, v));

        // a non-index first argument never satisfies the condition
        let (mut eg, x) = graph_with("(b i j X)");
        let lit = eg.add(Math::lit(3.0));
        assert!(!index_not_in_schema(&eg, lit, x));
    }

    #[test]
    fn unknown_var_under_bind_still_has_schema() {
        // the schema comes from the bind's indices; only the sparsity is
        // unknown (conservatively dense)
        let (eg, id) = graph_with("(b i j Mystery)");
        assert_eq!(
            eg.class(id).data.kind,
            Kind::Rel(vec![(Symbol::new("i"), 100), (Symbol::new("j"), 50)])
        );
        assert_eq!(eg.class(id).data.sparsity, 1.0);

        // a bare unknown symbol is Unknown
        let (eg, id) = graph_with("Mystery2");
        assert_eq!(eg.class(id).data.kind, Kind::Unknown);
    }
}
