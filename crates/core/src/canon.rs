//! Canonical forms and term isomorphism (§2.3 + Appendix A).
//!
//! The completeness argument of the paper rests on a normal form for
//! relational plans: every RPlan is equivalent to a *polyterm*
//! `c₁·Σ_{A₁}(x₁₁^k·…) + … + cₙ·Σ_{Aₙ}(…) + c` (Definition A.2), unique
//! up to isomorphism (Lemma 2.2). Two LA expressions are semantically
//! equivalent iff their translations have isomorphic canonical forms
//! (Theorem 2.3) — which is how the Figure 14 experiment verifies that
//! the relational rules derive every hand-coded SystemML rewrite, in a
//! way that is independent of the index names each translation minted.
//!
//! Point-wise functions (`exp`, `inv`, comparisons, …) are not part of
//! the sum-product fragment; they are treated as *uninterpreted tensors*
//! whose "name" is the canonical form of their argument (lambda-lifting),
//! so equivalence is decided modulo those function symbols — exactly the
//! "custom functions as black boxes" reading of §3.3.

use crate::lang::{Math, MathExpr};
use spores_egraph::{FxHashMap, Id};
use spores_ir::Symbol;
use std::collections::HashMap;
use std::fmt;

/// What a factor refers to: an input tensor or an uninterpreted
/// (lambda-lifted) point-wise function application.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum TensorRef {
    Var(Symbol),
    /// Interned shape of an opaque sub-expression, e.g. `exp#(…p0…p1…)`.
    Opaque(String),
}

impl fmt::Display for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorRef::Var(s) => write!(f, "{s}"),
            TensorRef::Opaque(s) => write!(f, "⟨{s}⟩"),
        }
    }
}

/// An index position inside an atom.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum IndexRef {
    /// A free attribute (shared with the context; never renamed).
    Free(Symbol),
    /// A bound (aggregated) index, numbered within its term.
    Bound(u32),
}

/// An indexed tensor occurrence (Definition A.2's "atom").
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Atom {
    pub tensor: TensorRef,
    pub indices: Vec<IndexRef>,
}

/// `Σ_{bound indices} Π atoms` — a term of the polyterm.
#[derive(Clone, PartialEq, Debug)]
pub struct Term {
    pub n_bound: u32,
    /// The monomial as a bag of atoms (kept sorted for determinism).
    pub atoms: Vec<Atom>,
}

impl Term {
    fn normalize(&mut self) {
        self.atoms.sort();
    }

    fn free_indices(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for a in &self.atoms {
            for i in &a.indices {
                if let IndexRef::Free(s) = i {
                    if !out.contains(s) {
                        out.push(*s);
                    }
                }
            }
        }
        out
    }

    /// A rename-invariant signature used to pre-filter isomorphism.
    fn signature(&self) -> Vec<(TensorRef, Vec<IndexSig>)> {
        let mut sig: Vec<(TensorRef, Vec<IndexSig>)> = self
            .atoms
            .iter()
            .map(|a| {
                (
                    a.tensor.clone(),
                    a.indices
                        .iter()
                        .map(|i| match i {
                            IndexRef::Free(s) => IndexSig::Free(*s),
                            IndexRef::Bound(_) => IndexSig::Bound,
                        })
                        .collect(),
                )
            })
            .collect();
        sig.sort();
        sig
    }
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum IndexSig {
    Free(Symbol),
    Bound,
}

/// The canonical form: a sum of coefficient-weighted terms plus a
/// constant (Definition A.2's polyterm).
#[derive(Clone, Debug, Default)]
pub struct Polyterm {
    pub terms: Vec<(f64, Term)>,
    pub constant: f64,
}

const EPS: f64 = 1e-9;

impl Polyterm {
    fn constant_of(c: f64) -> Polyterm {
        Polyterm {
            terms: vec![],
            constant: c,
        }
    }

    fn atom_of(tensor: TensorRef, indices: Vec<IndexRef>) -> Polyterm {
        Polyterm {
            terms: vec![(
                1.0,
                Term {
                    n_bound: 0,
                    atoms: vec![Atom { tensor, indices }],
                },
            )],
            constant: 0.0,
        }
    }

    fn add(mut self, other: Polyterm) -> Polyterm {
        self.terms.extend(other.terms);
        self.constant += other.constant;
        self.merge_isomorphic();
        self
    }

    fn scale(mut self, k: f64) -> Polyterm {
        for (c, _) in &mut self.terms {
            *c *= k;
        }
        self.constant *= k;
        self.merge_isomorphic();
        self
    }

    fn mul(self, other: Polyterm) -> Polyterm {
        let mut out = Polyterm::constant_of(self.constant * other.constant);
        for (c1, t1) in &self.terms {
            for (c2, t2) in &other.terms {
                // disjoint bound indices: shift t2's
                let mut atoms = t1.atoms.clone();
                for a in &t2.atoms {
                    let mut a = a.clone();
                    for i in &mut a.indices {
                        if let IndexRef::Bound(b) = i {
                            *i = IndexRef::Bound(*b + t1.n_bound);
                        }
                    }
                    atoms.push(a);
                }
                let mut t = Term {
                    n_bound: t1.n_bound + t2.n_bound,
                    atoms,
                };
                t.normalize();
                out.terms.push((c1 * c2, t));
            }
        }
        if other.constant.abs() > EPS {
            for (c, t) in &self.terms {
                out.terms.push((c * other.constant, t.clone()));
            }
        }
        if self.constant.abs() > EPS {
            for (c, t) in &other.terms {
                out.terms.push((c * self.constant, t.clone()));
            }
        }
        out.merge_isomorphic();
        out
    }

    /// `Σ_i self` where `dim` is the size of index `i`.
    fn aggregate(mut self, i: Symbol, dim: u64) -> Polyterm {
        let mut terms = Vec::with_capacity(self.terms.len());
        for (c, mut t) in self.terms.drain(..) {
            let occurs = t
                .atoms
                .iter()
                .any(|a| a.indices.contains(&IndexRef::Free(i)));
            if occurs {
                let b = t.n_bound;
                t.n_bound += 1;
                for a in &mut t.atoms {
                    for idx in &mut a.indices {
                        if *idx == IndexRef::Free(i) {
                            *idx = IndexRef::Bound(b);
                        }
                    }
                }
                t.normalize();
                terms.push((c, t));
            } else {
                // rule 5: Σ_i t = t · dim(i)
                terms.push((c * dim as f64, t));
            }
        }
        let constant = self.constant * dim as f64;
        let mut out = Polyterm { terms, constant };
        out.merge_isomorphic();
        out
    }

    fn merge_isomorphic(&mut self) {
        let mut merged: Vec<(f64, Term)> = Vec::with_capacity(self.terms.len());
        'outer: for (c, t) in self.terms.drain(..) {
            for (mc, mt) in &mut merged {
                if terms_isomorphic(mt, &t) {
                    *mc += c;
                    continue 'outer;
                }
            }
            merged.push((c, t));
        }
        merged.retain(|(c, _)| c.abs() > EPS);
        // deterministic order: by signature, then coefficient
        merged.sort_by(|(ca, ta), (cb, tb)| {
            ta.signature()
                .cmp(&tb.signature())
                .then(ta.n_bound.cmp(&tb.n_bound))
                .then(ca.total_cmp(cb))
        });
        self.terms = merged;
    }

    /// All free attributes of the polyterm.
    pub fn free_indices(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for (_, t) in &self.terms {
            for s in t.free_indices() {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// A printable rendering (deterministic given the canonical order).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, (c, t)) in self.terms.iter().enumerate() {
            if i > 0 {
                s.push_str(" + ");
            }
            if (*c - 1.0).abs() > EPS {
                write!(s, "{c}·").unwrap();
            }
            if t.n_bound > 0 {
                write!(s, "Σ[{}]", t.n_bound).unwrap();
            }
            s.push('(');
            for (j, a) in t.atoms.iter().enumerate() {
                if j > 0 {
                    s.push('·');
                }
                write!(s, "{}(", a.tensor).unwrap();
                for (k, idx) in a.indices.iter().enumerate() {
                    if k > 0 {
                        s.push(',');
                    }
                    match idx {
                        IndexRef::Free(sym) => write!(s, "{sym}").unwrap(),
                        IndexRef::Bound(b) => write!(s, "β{b}").unwrap(),
                    }
                }
                s.push(')');
            }
            s.push(')');
        }
        if self.constant.abs() > EPS || self.terms.is_empty() {
            if !self.terms.is_empty() {
                s.push_str(" + ");
            }
            write!(s, "{}", self.constant).unwrap();
        }
        s
    }
}

// ---------------------------------------------------------------------
// term isomorphism (Definition A.4): a bijection over bound indices
// ---------------------------------------------------------------------

/// Are two terms isomorphic (equal up to renaming of bound indices)?
pub fn terms_isomorphic(a: &Term, b: &Term) -> bool {
    if a.n_bound != b.n_bound || a.atoms.len() != b.atoms.len() {
        return false;
    }
    if a.signature() != b.signature() {
        return false;
    }
    let mut bound_map: Vec<Option<u32>> = vec![None; a.n_bound as usize];
    let mut bound_used: Vec<bool> = vec![false; b.n_bound as usize];
    let mut used_atoms: Vec<bool> = vec![false; b.atoms.len()];
    match_atoms(a, b, 0, &mut bound_map, &mut bound_used, &mut used_atoms)
}

fn match_atoms(
    a: &Term,
    b: &Term,
    i: usize,
    bound_map: &mut Vec<Option<u32>>,
    bound_used: &mut Vec<bool>,
    used: &mut Vec<bool>,
) -> bool {
    if i == a.atoms.len() {
        return true;
    }
    let atom = &a.atoms[i];
    for j in 0..b.atoms.len() {
        if used[j] {
            continue;
        }
        let cand = &b.atoms[j];
        if cand.tensor != atom.tensor || cand.indices.len() != atom.indices.len() {
            continue;
        }
        // try to extend the bound-index bijection
        let mut added: Vec<u32> = Vec::new();
        let mut ok = true;
        for (x, y) in atom.indices.iter().zip(&cand.indices) {
            match (x, y) {
                (IndexRef::Free(s), IndexRef::Free(t)) if s == t => {}
                (IndexRef::Bound(p), IndexRef::Bound(q)) => match bound_map[*p as usize] {
                    Some(mapped) if mapped == *q => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                    None => {
                        if bound_used[*q as usize] {
                            ok = false;
                            break;
                        }
                        bound_map[*p as usize] = Some(*q);
                        bound_used[*q as usize] = true;
                        added.push(*p);
                    }
                },
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            used[j] = true;
            if match_atoms(a, b, i + 1, bound_map, bound_used, used) {
                return true;
            }
            used[j] = false;
        }
        for p in added {
            let q = bound_map[p as usize].take().expect("was set");
            bound_used[q as usize] = false;
        }
    }
    false
}

/// Are two canonical forms isomorphic (Definition A.7)?
pub fn polyterm_isomorphic(a: &Polyterm, b: &Polyterm) -> bool {
    if (a.constant - b.constant).abs() > EPS * (1.0 + a.constant.abs()) {
        return false;
    }
    if a.terms.len() != b.terms.len() {
        return false;
    }
    let mut used = vec![false; b.terms.len()];
    match_terms(a, b, 0, &mut used)
}

fn match_terms(a: &Polyterm, b: &Polyterm, i: usize, used: &mut Vec<bool>) -> bool {
    if i == a.terms.len() {
        return true;
    }
    let (ca, ta) = &a.terms[i];
    for j in 0..b.terms.len() {
        if used[j] {
            continue;
        }
        let (cb, tb) = &b.terms[j];
        if (ca - cb).abs() > EPS * (1.0 + ca.abs()) {
            continue;
        }
        if !terms_isomorphic(ta, tb) {
            continue;
        }
        used[j] = true;
        if match_terms(a, b, i + 1, used) {
            return true;
        }
        used[j] = false;
    }
    false
}

// ---------------------------------------------------------------------
// canonicalization of RA expressions (Lemma 2.1, constructively)
// ---------------------------------------------------------------------

/// Error during canonicalization.
#[derive(Clone, Debug)]
pub struct CanonError(pub String);

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "canonicalization error: {}", self.0)
    }
}

impl std::error::Error for CanonError {}

struct Canonicalizer<'a> {
    expr: &'a MathExpr,
    index_dims: &'a HashMap<Symbol, u64>,
    memo: FxHashMap<Id, Polyterm>,
}

impl<'a> Canonicalizer<'a> {
    fn sym(&self, id: Id) -> Result<Symbol, CanonError> {
        match self.expr.node(id) {
            Math::Sym(s) => Ok(*s),
            other => Err(CanonError(format!("expected symbol, got {other:?}"))),
        }
    }

    fn dim(&self, s: Symbol) -> Result<u64, CanonError> {
        self.index_dims
            .get(&s)
            .copied()
            .ok_or_else(|| CanonError(format!("unknown index {s}")))
    }

    fn canon(&mut self, id: Id) -> Result<Polyterm, CanonError> {
        if let Some(p) = self.memo.get(&id) {
            return Ok(p.clone());
        }
        use Math::*;
        let result = match self.expr.node(id).clone() {
            Lit(n) => Polyterm::constant_of(n.get()),
            Dim(i) => {
                let s = self.sym(i)?;
                Polyterm::constant_of(self.dim(s)? as f64)
            }
            Bind([i, j, x]) => {
                let name = self.sym(x)?;
                let mut indices = Vec::new();
                for idx in [i, j] {
                    match self.expr.node(idx) {
                        Sym(s) => indices.push(IndexRef::Free(*s)),
                        NoIdx => {}
                        other => return Err(CanonError(format!("bad bind index {other:?}"))),
                    }
                }
                Polyterm::atom_of(TensorRef::Var(name), indices)
            }
            Add([a, b]) => {
                let pa = self.canon(a)?;
                let pb = self.canon(b)?;
                pa.add(pb)
            }
            Mul([a, b]) => {
                let pa = self.canon(a)?;
                let pb = self.canon(b)?;
                pa.mul(pb)
            }
            Agg([i, body]) => {
                let s = self.sym(i)?;
                let d = self.dim(s)?;
                let p = self.canon(body)?;
                p.aggregate(s, d)
            }
            Pow([a, k]) => {
                // literal small integer exponents expand into products
                let kp = self.canon(k)?;
                if kp.terms.is_empty()
                    && (kp.constant.fract() == 0.0)
                    && kp.constant >= 1.0
                    && kp.constant <= 8.0
                {
                    let base = self.canon(a)?;
                    let mut acc = base.clone();
                    for _ in 1..(kp.constant as usize) {
                        acc = acc.mul(base.clone());
                    }
                    acc
                } else {
                    self.opaque("pow", &[a, k])?
                }
            }
            Inv(a) => self.opaque("inv", &[a])?,
            Exp(a) => self.opaque("exp", &[a])?,
            Log(a) => self.opaque("log", &[a])?,
            Sqrt(a) => self.opaque("sqrt", &[a])?,
            Abs(a) => self.opaque("abs", &[a])?,
            Sign(a) => self.opaque("sign", &[a])?,
            Sigmoid(a) => self.opaque("sigmoid", &[a])?,
            Sprop(a) => {
                // sprop has a sum-product definition: p - p²
                let p = self.canon(a)?;
                let sq = p.clone().mul(p.clone());
                p.add(sq.scale(-1.0))
            }
            Gt([a, b]) => self.opaque("gt", &[a, b])?,
            Lt([a, b]) => self.opaque("lt", &[a, b])?,
            Ge([a, b]) => self.opaque("ge", &[a, b])?,
            Le([a, b]) => self.opaque("le", &[a, b])?,
            BMin([a, b]) => self.opaque("min", &[a, b])?,
            BMax([a, b]) => self.opaque("max", &[a, b])?,
            other => {
                return Err(CanonError(format!(
                    "non-relational node {other:?} (translate first)"
                )))
            }
        };
        self.memo.insert(id, result.clone());
        Ok(result)
    }

    /// Lambda-lift a point-wise function application into an opaque
    /// tensor whose name is the canonical (placeholder-renamed) form of
    /// its arguments, and whose indices are the arguments' free attrs.
    fn opaque(&mut self, name: &str, args: &[Id]) -> Result<Polyterm, CanonError> {
        let parts: Vec<Polyterm> = args
            .iter()
            .map(|&a| self.canon(a))
            .collect::<Result<_, _>>()?;
        let mut frees: Vec<Symbol> = Vec::new();
        for p in &parts {
            for s in p.free_indices() {
                if !frees.contains(&s) {
                    frees.push(s);
                }
            }
        }
        if frees.len() > 2 {
            return Err(CanonError(format!(
                "point-wise {name} over {} free attributes",
                frees.len()
            )));
        }
        // choose the free ordering giving the lexicographically least
        // placeholder rendering — rename-invariant by construction
        let orderings: Vec<Vec<Symbol>> = if frees.len() == 2 {
            vec![frees.clone(), vec![frees[1], frees[0]]]
        } else {
            vec![frees.clone()]
        };
        let mut best: Option<(String, Vec<Symbol>)> = None;
        for ord in orderings {
            let rendered: Vec<String> = parts
                .iter()
                .map(|p| render_with_placeholders(p, &ord))
                .collect();
            let shape = format!("{name}({})", rendered.join(", "));
            if best.as_ref().is_none_or(|(b, _)| shape < *b) {
                best = Some((shape, ord));
            }
        }
        let (shape, ord) = best.expect("at least one ordering");
        Ok(Polyterm::atom_of(
            TensorRef::Opaque(shape),
            ord.into_iter().map(IndexRef::Free).collect(),
        ))
    }
}

/// Render a polyterm with frees replaced by positional placeholders
/// (`p0`, `p1`) according to `order`.
fn render_with_placeholders(p: &Polyterm, order: &[Symbol]) -> String {
    let mut p = p.clone();
    for (pos, s) in order.iter().enumerate() {
        let placeholder = Symbol::new(&format!("p{pos}"));
        for (_, t) in &mut p.terms {
            for a in &mut t.atoms {
                for i in &mut a.indices {
                    if *i == IndexRef::Free(*s) {
                        *i = IndexRef::Free(placeholder);
                    }
                }
            }
        }
    }
    for (_, t) in &mut p.terms {
        t.normalize();
    }
    p.merge_isomorphic();
    p.render()
}

/// Compute the canonical form `C(e)` of a relational plan.
pub fn canonical_form(
    expr: &MathExpr,
    index_dims: &HashMap<Symbol, u64>,
) -> Result<Polyterm, CanonError> {
    let mut c = Canonicalizer {
        expr,
        index_dims,
        memo: FxHashMap::default(),
    };
    c.canon(expr.root())
}

/// Decide semantic equivalence of two *LA* expressions via Theorem 2.3:
/// translate both (renaming the result attributes to the shared names
/// `@r`/`@c`), canonicalize, and compare up to isomorphism.
pub fn la_equivalent(
    arena: &spores_ir::ExprArena,
    lhs: spores_ir::NodeId,
    rhs: spores_ir::NodeId,
    vars: &HashMap<Symbol, crate::analysis::VarMeta>,
) -> Result<bool, CanonError> {
    let ca = canon_of_la(arena, lhs, vars)?;
    let cb = canon_of_la(arena, rhs, vars)?;
    Ok(polyterm_isomorphic(&ca, &cb))
}

/// Translate + attribute-normalize + canonicalize one LA expression.
pub fn canon_of_la(
    arena: &spores_ir::ExprArena,
    root: spores_ir::NodeId,
    vars: &HashMap<Symbol, crate::analysis::VarMeta>,
) -> Result<Polyterm, CanonError> {
    let tr =
        crate::translate::translate(arena, root, vars).map_err(|e| CanonError(e.to_string()))?;
    let mut dims: HashMap<Symbol, u64> = tr.ctx.index_dims.iter().map(|(&s, &d)| (s, d)).collect();
    let mut p = canonical_form(&tr.expr, &dims)?;
    // rename the result attributes to role names shared by both sides
    for (attr, role) in [(tr.row, "@r"), (tr.col, "@c")] {
        if let Some(a) = attr {
            let role = Symbol::new(role);
            dims.insert(role, dims[&a]);
            for (_, t) in &mut p.terms {
                for atom in &mut t.atoms {
                    for i in &mut atom.indices {
                        if *i == IndexRef::Free(a) {
                            *i = IndexRef::Free(role);
                        }
                    }
                }
                t.normalize();
            }
        }
    }
    p.merge_isomorphic();
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::VarMeta;
    use crate::lang::parse_math;
    use spores_ir::{parse_expr, ExprArena};

    fn dims(list: &[(&str, u64)]) -> HashMap<Symbol, u64> {
        list.iter().map(|&(s, d)| (Symbol::new(s), d)).collect()
    }

    fn canon(src: &str, d: &[(&str, u64)]) -> Polyterm {
        canonical_form(&parse_math(src).unwrap(), &dims(d)).unwrap()
    }

    #[test]
    fn constants_fold() {
        let p = canon("(+ 2 (* 3 4))", &[]);
        assert_eq!(p.constant, 14.0);
        assert!(p.terms.is_empty());
    }

    #[test]
    fn sum_of_constant_scales_by_dim() {
        // §2.2's example: Σ_i 5 = 5·dim(i)
        let p = canon("(sum i 5)", &[("i", 100)]);
        assert_eq!(p.constant, 500.0);
    }

    #[test]
    fn isomorphic_monomials_merge() {
        // X·Y + Y·X = 2·X·Y
        let p = canon("(+ (* (b i j X) (b i j Y)) (* (b i j Y) (b i j X)))", &[]);
        assert_eq!(p.terms.len(), 1);
        assert_eq!(p.terms[0].0, 2.0);
    }

    #[test]
    fn alpha_variants_are_isomorphic() {
        let d = [("i", 10), ("j", 10), ("k", 10)];
        let a = canon("(sum i (sum j (* (b i j X) (b i j Y))))", &d);
        let b = canon("(sum k (sum i (* (b k i X) (b k i Y))))", &d);
        assert!(polyterm_isomorphic(&a, &b));
    }

    #[test]
    fn transposed_occurrence_not_isomorphic() {
        // the appendix's caveat: Σ x(i,j)y(i,j) vs Σ x(i,j)y(j,i) differ
        let d = [("i", 10), ("j", 10)];
        let a = canon("(sum i (sum j (* (b i j X) (b i j Y))))", &d);
        let b = canon("(sum i (sum j (* (b i j X) (b j i Y))))", &d);
        assert!(!polyterm_isomorphic(&a, &b));
    }

    #[test]
    fn figure_6_canonical_form() {
        // sum((X − u vᵀ)²) = Σ X² − 2 Σ X·u·v + Σ u²v²  (Figure 6 right)
        let d = [("a", 30), ("c", 20)];
        let p = canon(
            "(sum a (sum c (pow (+ (b a c X) (* -1 (* (b a _ u) (b c _ v)))) 2)))",
            &d,
        );
        assert_eq!(p.terms.len(), 3, "{}", p.render());
        let coeffs: Vec<f64> = p.terms.iter().map(|(c, _)| *c).collect();
        let mut sorted = coeffs.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![-2.0, 1.0, 1.0], "{}", p.render());
    }

    #[test]
    fn canonical_form_preserves_semantics() {
        // Lemma 2.1, numerically: C(e) evaluates like e
        use crate::eval::{eval_ra, Tensor};
        let d = [("i", 3usize), ("j", 4usize)];
        let dims_u64: Vec<(&str, u64)> = d.iter().map(|&(s, v)| (s, v as u64)).collect();
        let src = "(sum i (sum j (* (+ (b i j X) (b i j Y)) (+ (b i j X) (b i j Y)))))";
        let p = canon(src, &dims_u64);
        // evaluate the polyterm by brute force
        let x = Tensor::new(3, 4, (0..12).map(|v| v as f64 / 3.0 - 1.5).collect());
        let y = Tensor::new(3, 4, (0..12).map(|v| ((v * 7) % 5) as f64 - 2.0).collect());
        let vars = HashMap::from([(Symbol::new("X"), x), (Symbol::new("Y"), y)]);
        let dim_usize: HashMap<Symbol, usize> =
            d.iter().map(|&(s, v)| (Symbol::new(s), v)).collect();
        let direct = eval_ra(&parse_math(src).unwrap(), None, None, &vars, &dim_usize).unwrap();
        let via_canon = eval_polyterm(&p, &vars, &dim_usize);
        assert!((direct.get(0, 0) - via_canon).abs() < 1e-9);
    }

    /// Brute-force polyterm evaluation (test helper; no frees).
    fn eval_polyterm(
        p: &Polyterm,
        vars: &HashMap<Symbol, crate::eval::Tensor>,
        _dims: &HashMap<Symbol, usize>,
    ) -> f64 {
        let mut total = p.constant;
        for (c, t) in &p.terms {
            // infer each bound index's dimension from the atoms using it
            let mut bdims = vec![0usize; t.n_bound as usize];
            for a in &t.atoms {
                let tensor = match &a.tensor {
                    TensorRef::Var(s) => &vars[s],
                    TensorRef::Opaque(_) => panic!("opaque in eval"),
                };
                for (pos, i) in a.indices.iter().enumerate() {
                    if let IndexRef::Bound(b) = i {
                        bdims[*b as usize] = if pos == 0 { tensor.rows } else { tensor.cols };
                    }
                }
            }
            let mut acc = 0.0;
            let mut assignment = vec![0usize; t.n_bound as usize];
            loop {
                let mut prod = 1.0;
                for a in &t.atoms {
                    let tensor = match &a.tensor {
                        TensorRef::Var(s) => &vars[s],
                        TensorRef::Opaque(_) => unreachable!(),
                    };
                    let coord = |i: &IndexRef| match i {
                        IndexRef::Bound(b) => assignment[*b as usize],
                        IndexRef::Free(_) => panic!("free index in closed term"),
                    };
                    let v = match a.indices.len() {
                        0 => tensor.get(0, 0),
                        1 => tensor.get(coord(&a.indices[0]), 0),
                        2 => tensor.get(coord(&a.indices[0]), coord(&a.indices[1])),
                        _ => unreachable!(),
                    };
                    prod *= v;
                }
                acc += prod;
                // odometer increment
                let mut k = 0;
                loop {
                    if k == assignment.len() {
                        break;
                    }
                    assignment[k] += 1;
                    if assignment[k] < bdims[k] {
                        break;
                    }
                    assignment[k] = 0;
                    k += 1;
                }
                if k == assignment.len() {
                    break;
                }
            }
            total += c * acc;
        }
        total
    }

    // ---- Theorem 2.3 at the LA level --------------------------------

    fn la_vars(list: &[(&str, (u64, u64))]) -> HashMap<Symbol, VarMeta> {
        list.iter()
            .map(|&(n, (r, c))| (Symbol::new(n), VarMeta::dense(r, c)))
            .collect()
    }

    fn check_la_equiv(lhs: &str, rhs: &str, vars: &[(&str, (u64, u64))], expect: bool) {
        let mut arena = ExprArena::new();
        let l = parse_expr(&mut arena, lhs).unwrap();
        let r = parse_expr(&mut arena, rhs).unwrap();
        let got = la_equivalent(&arena, l, r, &la_vars(vars)).unwrap();
        assert_eq!(got, expect, "{lhs} ≡ {rhs} should be {expect}");
    }

    #[test]
    fn headline_equivalence_via_canonical_forms() {
        check_la_equiv(
            "sum((X - u %*% t(v))^2)",
            "sum(X^2) - 2 * (t(u) %*% X %*% v) + (t(u) %*% u) * (t(v) %*% v)",
            &[("X", (30, 20)), ("u", (30, 1)), ("v", (20, 1))],
            true,
        );
    }

    #[test]
    fn plus_variant_equivalence() {
        check_la_equiv(
            "sum((X + u %*% t(v))^2)",
            "sum(X^2) + 2 * (t(u) %*% X %*% v) + (t(u) %*% u) * (t(v) %*% v)",
            &[("X", (30, 20)), ("u", (30, 1)), ("v", (20, 1))],
            true,
        );
    }

    #[test]
    fn sum_mm_equivalence() {
        // Fig 14 SumMatrixMult: sum(A %*% B) = sum(t(colSums(A)) * rowSums(B))
        check_la_equiv(
            "sum(A %*% B)",
            "sum(t(colSums(A)) * rowSums(B))",
            &[("A", (5, 7)), ("B", (7, 4))],
            true,
        );
    }

    #[test]
    fn inequivalent_expressions_detected() {
        check_la_equiv(
            "sum(X * Y)",
            "sum(X) * sum(Y)",
            &[("X", (5, 4)), ("Y", (5, 4))],
            false,
        );
        check_la_equiv("t(X) %*% X", "X %*% t(X)", &[("X", (5, 5))], false);
    }

    #[test]
    fn equivalence_with_orientation() {
        check_la_equiv("colSums(t(X))", "t(rowSums(X))", &[("X", (5, 7))], true);
        check_la_equiv("t(t(X))", "X", &[("X", (5, 7))], true);
    }

    #[test]
    fn opaque_functions_compare_structurally() {
        check_la_equiv(
            "exp(X) * Y",
            "Y * exp(X)",
            &[("X", (3, 4)), ("Y", (3, 4))],
            true,
        );
        check_la_equiv(
            "exp(X + Y)",
            "exp(Y + X)",
            &[("X", (3, 4)), ("Y", (3, 4))],
            true,
        );
        check_la_equiv("exp(X)", "exp(Y)", &[("X", (3, 4)), ("Y", (3, 4))], false);
        // opaque transposition: exp commutes with t structurally
        check_la_equiv("t(exp(X))", "exp(t(X))", &[("X", (3, 4))], true);
    }

    #[test]
    fn scalar_pull_out_equivalence() {
        // pushdownSumBinaryMult: sum(λ·X) = λ·sum(X)
        check_la_equiv(
            "sum(s * X)",
            "s * sum(X)",
            &[("s", (1, 1)), ("X", (5, 4))],
            true,
        );
    }
}
