//! The concurrent optimizer front-end.
//!
//! Request lifecycle:
//!
//! ```text
//! request ── fingerprint ──► cache hit? ── instantiate + cost re-check ──► serve (µs)
//!                │ miss                         │ re-check failed
//!                ▼                              ▼
//!        in-flight already? ──yes──► wait (coalesce)     inline pipeline
//!                │ no
//!                ▼
//!        worker pool ── translate → saturate → extract → lower ──► cache + serve (ms)
//! ```
//!
//! * **Hits** never run saturation: the cached template is α-instantiated
//!   with the caller's symbols and re-priced under the caller's concrete
//!   metadata ([`spores_core::plan_cost`]); if the template prices worse
//!   than the caller's own input plan (beyond a small slack for
//!   estimator drift, [`COST_SLACK`]) — possible when sizes drifted
//!   within a sparsity bucket — the hit is rejected and the request falls
//!   through to the full pipeline, so a hit is never meaningfully worse
//!   than what greedy re-optimization would have returned for the input.
//! * **Single-flight**: concurrent identical fingerprints run the
//!   pipeline once; the rest wait on the same computation.
//! * **Size-pinned templates** (plans that embed concrete dimension
//!   constants, see [`spores_core::Optimized::size_polymorphic`]) are
//!   only reused at exactly the sizes they were optimized for.

use crate::cache::{CacheEntry, CachedPlan, PlanTemplate, ShardedCache};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::workload::{CachedWorkloadPlan, ServedWorkload, WorkloadRequest};
use spores_core::{
    plan_cost, workload_plan_cost, Optimized, Optimizer, OptimizerConfig, PhaseTimings, VarMeta,
};
use spores_ir::{
    fingerprint, fingerprint_workload, ExprArena, Fingerprint, LeafClass, NodeId, Shape, Symbol,
};
use spores_pool::WorkerPool;
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Relative slack for the hit-path cost re-check. The re-check exists to
/// catch *regime-crossing* staleness — a cached plan that materializes
/// something huge at the caller's sizes prices orders of magnitude worse
/// than the caller's own plan. It must tolerate estimator-context drift:
/// the pipeline prices plans against the saturated e-graph's merged
/// (tightest) sparsity estimates, while the re-check prices against a
/// fresh graph, which can legitimately disagree by a fraction of a
/// percent on an optimal plan.
const COST_SLACK: f64 = 0.02;
const COST_EPS: f64 = 1e-6;

/// Configuration of an [`OptimizerService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Pipeline configuration used for cache misses.
    pub optimizer: OptimizerConfig,
    /// Mutex-guarded cache shards (contention domain).
    pub shards: usize,
    /// Total cached plan templates across shards.
    pub capacity: usize,
    /// Worker threads running the pipeline for misses.
    pub workers: usize,
    /// Size-pinned variants kept per canonical fingerprint.
    pub max_variants: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            optimizer: OptimizerConfig::default(),
            shards: 8,
            capacity: 1024,
            workers: 4,
            max_variants: 8,
        }
    }
}

/// One optimization request.
#[derive(Clone, Debug)]
pub struct Request {
    pub arena: ExprArena,
    pub root: NodeId,
    pub vars: HashMap<Symbol, VarMeta>,
}

impl Request {
    pub fn new(arena: ExprArena, root: NodeId, vars: HashMap<Symbol, VarMeta>) -> Request {
        Request { arena, root, vars }
    }
}

/// How a request was satisfied.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Served from the plan cache.
    Hit,
    /// Ran the full pipeline.
    Miss,
    /// Waited on an identical in-flight optimization.
    Coalesced,
}

/// A served plan.
#[derive(Clone, Debug)]
pub struct Served {
    pub arena: ExprArena,
    pub root: NodeId,
    /// `NnzCost` estimate of the served plan. For misses this is the
    /// pipeline's estimate (priced against the saturated e-graph's merged
    /// sparsity bounds); for hits it is the re-check's fresh-graph
    /// estimate under the caller's metadata. The two can differ by a
    /// fraction of a percent on the same plan.
    pub cost: f64,
    pub source: PlanSource,
    /// End-to-end service latency for this request.
    pub latency: Duration,
    /// Pipeline phase timings (of the cached run, for hits).
    pub timings: PhaseTimings,
    /// Saturation facts of the producing pipeline run (cached, for hits):
    /// fixpoint reached, wall-clock budget tripped, e-graph size.
    pub converged: bool,
    pub timed_out: bool,
    pub e_nodes: usize,
}

/// Service-level failure.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The request could not be fingerprinted or optimized.
    Invalid(String),
    /// The worker pool is gone (service shut down mid-request).
    Shutdown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServiceError::Shutdown => write!(f, "optimizer service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

type FlightResult = Result<Arc<CachedPlan>, String>;

struct Job {
    request: Request,
    fp: Fingerprint,
}

struct Inner {
    config: ServiceConfig,
    cache: ShardedCache,
    /// Workload-level plan cache: one entry per whole statement bundle.
    workload_cache: ShardedCache<CachedWorkloadPlan>,
    stats: ServiceStats,
    /// canon → waiters (single-flight registry). The submitting request's
    /// own sender is registered too, so the worker resolves everyone the
    /// same way.
    inflight: Mutex<HashMap<String, Vec<Sender<FlightResult>>>>,
}

impl Inner {
    /// Run the full pipeline and package the outcome as a cacheable plan.
    fn run_pipeline(&self, request: &Request, fp: &Fingerprint) -> Result<Arc<CachedPlan>, String> {
        let _span = spores_telemetry::span!("service.compile");
        let optimizer = Optimizer::new(self.config.optimizer.clone());
        let got: Optimized = optimizer
            .optimize(&request.arena, request.root, &request.vars)
            .map_err(|e| e.to_string())?;
        // α-rename the optimized plan into template space ($0, $1, …)
        let (tpl_arena, tpl_root) = got.arena.rename_vars(got.root, &fp.to_template_map());
        let plan = Arc::new(CachedPlan {
            template: PlanTemplate {
                arena: tpl_arena,
                root: tpl_root,
            },
            cost: got.cost_after,
            timings: got.timings,
            converged: got.saturation.converged,
            timed_out: matches!(
                got.saturation.stop_reason,
                Some(spores_egraph::StopReason::TimeLimit(_))
            ),
            e_nodes: got.saturation.e_nodes,
            size_polymorphic: got.size_polymorphic,
            slot_shapes: slot_shapes(fp, &request.vars),
        });
        if !got.fell_back {
            self.cache.insert(fp, plan.clone());
        }
        Ok(plan)
    }

    /// Resolve the in-flight entry for `canon`, waking every waiter.
    fn resolve(&self, canon: &str, result: &FlightResult) {
        let waiters = self.inflight.lock().unwrap().remove(canon);
        for tx in waiters.into_iter().flatten() {
            // a waiter that gave up (dropped its receiver) is fine to miss
            let _ = tx.send(result.clone());
        }
    }
}

/// A thread-safe, memoizing optimizer front-end. See the module docs.
pub struct OptimizerService {
    inner: Arc<Inner>,
    pool: WorkerPool<Job>,
}

/// Per-slot concrete shapes of a request, in fingerprint slot order.
fn slot_shapes(fp: &Fingerprint, vars: &HashMap<Symbol, VarMeta>) -> Vec<Shape> {
    fp.slots()
        .iter()
        .map(|s| vars.get(s).map(|m| m.shape).unwrap_or(Shape::scalar()))
        .collect()
}

impl OptimizerService {
    pub fn new(mut config: ServiceConfig) -> OptimizerService {
        let workers = config.workers.max(1);
        // Each pipeline run may itself fan rule search across a scoped
        // pool; clamp its thread budget so `workers` concurrent
        // saturations don't oversubscribe the host.
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let budget = (host / workers).max(1);
        config.optimizer.parallel.threads = config.optimizer.parallel.threads.min(budget);
        let inner = Arc::new(Inner {
            cache: ShardedCache::new(config.shards, config.capacity, config.max_variants),
            workload_cache: ShardedCache::new(config.shards, config.capacity, config.max_variants),
            stats: ServiceStats::default(),
            inflight: Mutex::new(HashMap::new()),
            config,
        });
        let pool = {
            let inner = inner.clone();
            WorkerPool::new("spores-opt", workers, move |job: Job| {
                // A panicking pipeline must still resolve the in-flight
                // entry — otherwise the submitter and every coalesced
                // waiter block on their receivers forever.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner.run_pipeline(&job.request, &job.fp)
                }))
                .unwrap_or_else(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "optimizer pipeline panicked".to_string());
                    Err(format!("optimizer pipeline panicked: {msg}"))
                });
                inner.resolve(job.fp.canon(), &result);
            })
        };
        OptimizerService { inner, pool }
    }

    /// Live counters (evictions summed over both plan caches).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner
            .stats
            .snapshot(self.inner.cache.evictions() + self.inner.workload_cache.evictions())
    }

    /// Latency quantile (µs upper bound) over all served requests.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        self.inner.stats.latency.quantile_us(q)
    }

    /// Prometheus-style text exposition of the service metrics:
    /// hits/misses/coalesced/cost-rejections/evictions plus the request
    /// latency histogram with explicit `le="<µs>"` bucket bounds. Serve
    /// this as a scrape endpoint body or dump it for ad-hoc inspection.
    pub fn metrics_text(&self) -> String {
        self.inner
            .stats
            .render_text(self.inner.cache.evictions() + self.inner.workload_cache.evictions())
    }

    /// Write the process-global telemetry journal as Chrome trace-event
    /// JSON to `path`, draining it (collection must have been enabled,
    /// e.g. via `OptimizerConfig::telemetry` on this service's
    /// pipeline config). Load the file in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn dump_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        spores_telemetry::dump_chrome_trace(path)
    }

    /// Number of cached plan templates.
    pub fn cached_plans(&self) -> usize {
        self.inner.cache.len()
    }

    /// Optimize one request, consulting the plan cache.
    pub fn optimize(&self, request: Request) -> Result<Served, ServiceError> {
        let mut req_span = spores_telemetry::span!("service.request");
        let result = self.optimize_inner(request);
        if let Ok(served) = &result {
            req_span.arg(
                "source",
                match served.source {
                    PlanSource::Hit => "hit",
                    PlanSource::Miss => "miss",
                    PlanSource::Coalesced => "coalesced",
                },
            );
        }
        result
    }

    fn optimize_inner(&self, request: Request) -> Result<Served, ServiceError> {
        let t0 = Instant::now();
        let fp = self.fingerprint_request(&request)?;

        if let Some(served) = self.try_hit(&request, &fp, t0) {
            return Ok(served);
        }

        match self.submit(&request, &fp) {
            Submission::Wait { rx, coalesced } => self.finish(&request, &fp, rx, coalesced, t0),
            Submission::Inline => {
                let result = self.inner.run_pipeline(&request, &fp);
                self.inner.resolve(fp.canon(), &result);
                self.conclude_miss(&request, &fp, result, PlanSource::Miss, t0)
            }
        }
    }

    /// Optimize a whole workload: hits are served inline, misses fan out
    /// across the worker pool concurrently (instead of one blocking
    /// round-trip per statement).
    pub fn optimize_batch(&self, requests: Vec<Request>) -> Vec<Result<Served, ServiceError>> {
        // One span for the whole batch: per-request spans would
        // interleave begin/ends on this thread (all submits, then all
        // waits), breaking the stack discipline the trace format needs.
        let _span = spores_telemetry::span!("service.batch", requests = requests.len());
        enum Pending {
            Done(Result<Served, ServiceError>),
            Wait {
                request: Request,
                fp: Fingerprint,
                rx: Receiver<FlightResult>,
                coalesced: bool,
                t0: Instant,
            },
        }
        let pending: Vec<Pending> = requests
            .into_iter()
            .map(|request| {
                // per-request clock: a request's latency spans from when
                // *it* starts processing (not from batch start) to when
                // its result is ready — for waiters that includes the
                // in-flight pipeline run they queue behind
                let t0 = Instant::now();
                let fp = match self.fingerprint_request(&request) {
                    Ok(fp) => fp,
                    Err(e) => return Pending::Done(Err(e)),
                };
                if let Some(served) = self.try_hit(&request, &fp, t0) {
                    return Pending::Done(Ok(served));
                }
                match self.submit(&request, &fp) {
                    Submission::Wait { rx, coalesced } => Pending::Wait {
                        request,
                        fp,
                        rx,
                        coalesced,
                        t0,
                    },
                    Submission::Inline => {
                        let result = self.inner.run_pipeline(&request, &fp);
                        self.inner.resolve(fp.canon(), &result);
                        Pending::Done(self.conclude_miss(
                            &request,
                            &fp,
                            result,
                            PlanSource::Miss,
                            t0,
                        ))
                    }
                }
            })
            .collect();
        pending
            .into_iter()
            .map(|p| match p {
                Pending::Done(r) => r,
                Pending::Wait {
                    request,
                    fp,
                    rx,
                    coalesced,
                    t0,
                } => self.finish(&request, &fp, rx, coalesced, t0),
            })
            .collect()
    }

    /// Optimize a whole workload bundle as ONE unit: a single
    /// workload-level fingerprint keys the cache, a hit re-instantiates
    /// the entire multi-root template (µs), and a miss runs the shared
    /// one-pass pipeline ([`spores_core::Optimizer::optimize_workload`])
    /// inline and caches the α-renamed result.
    pub fn optimize_workload(
        &self,
        request: WorkloadRequest,
    ) -> Result<ServedWorkload, ServiceError> {
        let mut req_span = spores_telemetry::span!(
            "service.request",
            kind = "workload",
            roots = request.workload.roots.len(),
        );
        let t0 = Instant::now();
        let classes: HashMap<Symbol, LeafClass> = request
            .vars
            .iter()
            .map(|(&s, m)| (s, LeafClass::classify(m.shape, m.sparsity)))
            .collect();
        let fp = fingerprint_workload(&request.workload.arena, &request.workload.roots, &classes)
            .map_err(|e| ServiceError::Invalid(e.to_string()))?;
        let shapes = slot_shapes(&fp, &request.vars);

        if let Some(plan) = self.inner.workload_cache.get(&fp, &shapes) {
            let probe_span = spores_telemetry::span!("service.cache_probe", kind = "workload");
            let outcome = self.instantiate_workload(&request, &fp, &plan);
            drop(probe_span);
            match outcome {
                Ok(mut served) => {
                    self.inner.stats.hits.add(1);
                    req_span.arg("source", "hit");
                    served.latency = t0.elapsed();
                    self.inner.stats.latency.record(served.latency);
                    return Ok(served);
                }
                Err(RejectedHit) => {
                    self.inner.stats.cost_rejections.add(1);
                }
            }
        }

        // miss: run the shared pipeline inline (workload compiles are
        // whole-program requests — rare and heavyweight enough that the
        // per-statement worker pool's coalescing matters little here).
        // The pipeline's own output is served directly; only the cache
        // keeps the α-renamed template copy.
        let (plan, arena, roots) = self.run_workload_pipeline(&request, &fp, &shapes)?;
        self.inner.stats.misses.add(1);
        req_span.arg("source", "miss");
        let latency = t0.elapsed();
        self.inner.stats.latency.record(latency);
        Ok(ServedWorkload {
            arena,
            roots,
            cost: plan.cost,
            source: PlanSource::Miss,
            latency,
            timings: plan.timings,
            converged: plan.converged,
            timed_out: plan.timed_out,
            e_nodes: plan.e_nodes,
        })
    }

    /// Run the workload pipeline, cache the α-renamed multi-root
    /// template, and return it along with the pipeline's direct output
    /// (already in the caller's symbols — no re-instantiation needed).
    #[allow(clippy::type_complexity)]
    fn run_workload_pipeline(
        &self,
        request: &WorkloadRequest,
        fp: &Fingerprint,
        shapes: &[Shape],
    ) -> Result<(Arc<CachedWorkloadPlan>, ExprArena, Vec<(Symbol, NodeId)>), ServiceError> {
        let _span = spores_telemetry::span!("service.compile", kind = "workload");
        let optimizer = Optimizer::new(self.inner.config.optimizer.clone());
        let got = optimizer
            .optimize_workload(&request.workload, &request.vars)
            .map_err(|e| ServiceError::Invalid(e.to_string()))?;
        let root_ids: Vec<NodeId> = got.roots.iter().map(|&(_, id)| id).collect();
        let (tpl_arena, tpl_roots) = got
            .arena
            .rename_vars_multi(&root_ids, &fp.to_template_map());
        let cost = workload_plan_cost(&got.arena, &got.roots, &request.vars)
            .map_err(|e| ServiceError::Invalid(e.to_string()))?;
        let plan = Arc::new(CachedWorkloadPlan {
            arena: tpl_arena,
            roots: tpl_roots,
            cost,
            timings: got.timings,
            converged: got.saturation.converged,
            timed_out: matches!(
                got.saturation.stop_reason,
                Some(spores_egraph::StopReason::TimeLimit(_))
            ),
            e_nodes: got.saturation.e_nodes,
            size_polymorphic: got.size_polymorphic,
            slot_shapes: shapes.to_vec(),
        });
        if !got.fell_back {
            self.inner.workload_cache.insert(fp, plan.clone());
        }
        Ok((plan, got.arena, got.roots))
    }

    /// α-instantiate a workload template for this request's symbols; the
    /// caller's root names are re-attached positionally.
    fn materialize_workload(
        plan: &CachedWorkloadPlan,
        request: &WorkloadRequest,
        fp: &Fingerprint,
    ) -> (ExprArena, Vec<(Symbol, NodeId)>) {
        let (arena, roots) = plan
            .arena
            .rename_vars_multi(&plan.roots, &fp.from_template_map());
        let named = request
            .workload
            .roots
            .iter()
            .map(|&(name, _)| name)
            .zip(roots)
            .collect();
        (arena, named)
    }

    /// Instantiate a cached workload template and re-check its summed
    /// cost against the caller's own statements at the caller's metadata.
    fn instantiate_workload(
        &self,
        request: &WorkloadRequest,
        fp: &Fingerprint,
        plan: &CachedWorkloadPlan,
    ) -> Result<ServedWorkload, RejectedHit> {
        let (arena, roots) = Self::materialize_workload(plan, request, fp);
        let cost = workload_plan_cost(&arena, &roots, &request.vars).map_err(|_| RejectedHit)?;
        let input_cost = workload_plan_cost(
            &request.workload.arena,
            &request.workload.roots,
            &request.vars,
        )
        .map_err(|_| RejectedHit)?;
        if cost > input_cost * (1.0 + COST_SLACK) + COST_EPS {
            return Err(RejectedHit);
        }
        Ok(ServedWorkload {
            arena,
            roots,
            cost,
            source: PlanSource::Hit,
            latency: Duration::ZERO,
            timings: plan.timings,
            converged: plan.converged,
            timed_out: plan.timed_out,
            e_nodes: plan.e_nodes,
        })
    }

    // ---- request plumbing -----------------------------------------------

    fn fingerprint_request(&self, request: &Request) -> Result<Fingerprint, ServiceError> {
        let classes: HashMap<Symbol, LeafClass> = request
            .vars
            .iter()
            .map(|(&s, m)| (s, LeafClass::classify(m.shape, m.sparsity)))
            .collect();
        fingerprint(&request.arena, request.root, &classes)
            .map_err(|e| ServiceError::Invalid(e.to_string()))
    }

    /// The cache-hit fast path: instantiate + cost re-check, no pipeline.
    fn try_hit(&self, request: &Request, fp: &Fingerprint, t0: Instant) -> Option<Served> {
        let mut probe_span = spores_telemetry::span!("service.cache_probe");
        let shapes = slot_shapes(fp, &request.vars);
        let plan = self.inner.cache.get(fp, &shapes)?;
        match self.instantiate(request, fp, &plan) {
            Ok(served) => {
                probe_span.arg("outcome", "hit");
                self.inner.stats.hits.add(1);
                let latency = t0.elapsed();
                self.inner.stats.latency.record(latency);
                Some(Served {
                    latency,
                    source: PlanSource::Hit,
                    ..served
                })
            }
            Err(RejectedHit) => {
                probe_span.arg("outcome", "rejected");
                self.inner.stats.cost_rejections.add(1);
                None
            }
        }
    }

    /// α-instantiate a template for this request's symbols.
    fn materialize(plan: &CachedPlan, fp: &Fingerprint) -> (ExprArena, NodeId) {
        plan.template
            .arena
            .rename_vars(plan.template.root, &fp.from_template_map())
    }

    /// Package a materialized plan with the template's provenance facts
    /// (latency is stamped by the caller once the request concludes).
    fn served(
        plan: &CachedPlan,
        arena: ExprArena,
        root: NodeId,
        cost: f64,
        source: PlanSource,
    ) -> Served {
        Served {
            arena,
            root,
            cost,
            source,
            latency: Duration::ZERO,
            timings: plan.timings,
            converged: plan.converged,
            timed_out: plan.timed_out,
            e_nodes: plan.e_nodes,
        }
    }

    /// Instantiate a cached template for this request and re-check its
    /// cost against the caller's own plan at the caller's metadata.
    fn instantiate(
        &self,
        request: &Request,
        fp: &Fingerprint,
        plan: &CachedPlan,
    ) -> Result<Served, RejectedHit> {
        let (arena, root) = Self::materialize(plan, fp);
        // a template priced worse than the caller's own input plan (or
        // one that no longer type-checks) must not be served
        let cost = plan_cost(&arena, root, &request.vars).map_err(|_| RejectedHit)?;
        let input_cost =
            plan_cost(&request.arena, request.root, &request.vars).map_err(|_| RejectedHit)?;
        if cost > input_cost * (1.0 + COST_SLACK) + COST_EPS {
            return Err(RejectedHit);
        }
        Ok(Self::served(plan, arena, root, cost, PlanSource::Hit))
    }

    /// Register in the single-flight table; enqueue a job if first.
    fn submit(&self, request: &Request, fp: &Fingerprint) -> Submission {
        let (tx, rx) = channel::<FlightResult>();
        let first = {
            let mut inflight = self.inner.inflight.lock().unwrap();
            match inflight.get_mut(fp.canon()) {
                Some(waiters) => {
                    waiters.push(tx);
                    false
                }
                None => {
                    inflight.insert(fp.canon().to_string(), vec![tx]);
                    true
                }
            }
        };
        if !first {
            return Submission::Wait {
                rx,
                coalesced: true,
            };
        }
        let job = Job {
            request: request.clone(),
            fp: fp.clone(),
        };
        if self.pool.submit(job).is_err() {
            // pool gone: run inline (resolve() wakes any waiters that
            // raced in behind us)
            return Submission::Inline;
        }
        Submission::Wait {
            rx,
            coalesced: false,
        }
    }

    /// Wait for the in-flight computation and serve its result.
    fn finish(
        &self,
        request: &Request,
        fp: &Fingerprint,
        rx: Receiver<FlightResult>,
        coalesced: bool,
        t0: Instant,
    ) -> Result<Served, ServiceError> {
        let wait_span = spores_telemetry::span!("service.queue_wait", coalesced = coalesced);
        let result = match rx.recv() {
            Ok(r) => r,
            Err(_) => return Err(ServiceError::Shutdown),
        };
        drop(wait_span);
        let source = if coalesced {
            PlanSource::Coalesced
        } else {
            PlanSource::Miss
        };
        self.conclude_miss(request, fp, result, source, t0)
    }

    /// Turn a pipeline result into a served plan for *this* request.
    fn conclude_miss(
        &self,
        request: &Request,
        fp: &Fingerprint,
        result: Result<Arc<CachedPlan>, String>,
        source: PlanSource,
        t0: Instant,
    ) -> Result<Served, ServiceError> {
        let plan = result.map_err(ServiceError::Invalid)?;
        // The submitter's result was computed from this very request by
        // the (deterministic) pipeline — serve it as-is; re-checking it
        // could only trigger a pointless identical re-run. A *coalesced*
        // waiter shares a result computed at the submitter's sizes, so it
        // reuses it only under the same admission + cost re-check rule as
        // a cache hit; otherwise it runs its own pipeline inline (the
        // cache now likely holds the template, so this is rare).
        let my_shapes = slot_shapes(fp, &request.vars);
        let served = if source != PlanSource::Coalesced {
            let (arena, root) = Self::materialize(&plan, fp);
            Ok(Self::served(&plan, arena, root, plan.cost, source))
        } else if plan.admits(&my_shapes) {
            self.instantiate(request, fp, &plan)
        } else {
            Err(RejectedHit)
        };
        match served {
            Ok(served) => {
                match source {
                    PlanSource::Coalesced => self.inner.stats.coalesced.add(1),
                    _ => self.inner.stats.misses.add(1),
                };
                let latency = t0.elapsed();
                self.inner.stats.latency.record(latency);
                Ok(Served {
                    latency,
                    source,
                    ..served
                })
            }
            Err(RejectedHit) => {
                self.inner.stats.cost_rejections.add(1);
                let result = self.inner.run_pipeline(request, fp);
                let plan = result.map_err(ServiceError::Invalid)?;
                let (arena, root) = Self::materialize(&plan, fp);
                self.inner.stats.misses.add(1);
                let latency = t0.elapsed();
                self.inner.stats.latency.record(latency);
                Ok(Served {
                    latency,
                    ..Self::served(&plan, arena, root, plan.cost, PlanSource::Miss)
                })
            }
        }
    }
}

enum Submission {
    Wait {
        rx: Receiver<FlightResult>,
        coalesced: bool,
    },
    Inline,
}

/// Marker: a cached template failed the hit admission/cost re-check.
struct RejectedHit;
