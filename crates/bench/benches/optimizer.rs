//! Criterion benchmark: end-to-end optimizer latency per workload
//! statement (the compile-cost side of Figure 16, as a tracked
//! regression benchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use spores_core::{Optimizer, OptimizerConfig, VarMeta};
use spores_ir::{ExprArena, Symbol};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_optimize(c: &mut Criterion) {
    type Case = (
        &'static str,
        &'static str,
        Vec<(&'static str, (u64, u64), f64)>,
    );
    let cases: Vec<Case> = vec![
        (
            "headline",
            "sum((X - u %*% t(v))^2)",
            vec![
                ("X", (1000, 500), 0.001),
                ("u", (1000, 1), 1.0),
                ("v", (500, 1), 1.0),
            ],
        ),
        (
            "als_gradient",
            "(U %*% t(V) - X) %*% V",
            vec![
                ("X", (2000, 1000), 0.01),
                ("U", (2000, 10), 1.0),
                ("V", (1000, 10), 1.0),
            ],
        ),
        (
            "pnmf_objective",
            "sum(W %*% H) - sum(X * log(W %*% H))",
            vec![
                ("X", (1000, 1000), 0.01),
                ("W", (1000, 10), 1.0),
                ("H", (10, 1000), 1.0),
            ],
        ),
    ];
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    for (name, src, vars) in cases {
        let mut arena = ExprArena::new();
        let root = spores_ir::parse_expr(&mut arena, src).unwrap();
        let meta: HashMap<Symbol, VarMeta> = vars
            .iter()
            .map(|&(n, (r, cc), s)| (Symbol::new(n), VarMeta::sparse(r, cc, s)))
            .collect();
        group.bench_function(name, |b| {
            b.iter(|| {
                let opt = Optimizer::new(OptimizerConfig {
                    node_limit: 8_000,
                    iter_limit: 30,
                    ..OptimizerConfig::default()
                });
                black_box(opt.optimize(&arena, root, &meta).unwrap().cost_after)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
