//! Minimal s-expression reader/printer.
//!
//! The e-graph pattern language (`(* ?a (+ ?b ?c))`) and many tests are
//! written as s-expressions; this module is the single parser for them.

use std::fmt;

/// An s-expression: an atom or a parenthesized list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SExp {
    Atom(String),
    List(Vec<SExp>),
}

/// Error from [`parse_sexp`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SExpError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for SExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for SExpError {}

impl SExp {
    /// Convenience accessor: the atom's text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            SExp::Atom(s) => Some(s),
            SExp::List(_) => None,
        }
    }

    /// Convenience accessor: the list elements, if this is a list.
    pub fn as_list(&self) -> Option<&[SExp]> {
        match self {
            SExp::Atom(_) => None,
            SExp::List(items) => Some(items),
        }
    }
}

impl fmt::Display for SExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExp::Atom(s) => f.write_str(s),
            SExp::List(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, SExpError> {
        Err(SExpError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b';' {
                // comment to end of line
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn read(&mut self) -> Result<SExp, SExpError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => self.err("unexpected end of input"),
            Some(b'(') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        None => return self.err("unclosed '('"),
                        Some(b')') => {
                            self.pos += 1;
                            return Ok(SExp::List(items));
                        }
                        Some(_) => items.push(self.read()?),
                    }
                }
            }
            Some(b')') => self.err("unexpected ')'"),
            Some(_) => {
                let start = self.pos;
                while let Some(&b) = self.bytes.get(self.pos) {
                    if b.is_ascii_whitespace() || b == b'(' || b == b')' || b == b';' {
                        break;
                    }
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| SExpError {
                        message: "invalid utf-8 in atom".into(),
                        offset: start,
                    })?
                    .to_owned();
                Ok(SExp::Atom(text))
            }
        }
    }
}

/// Parse a single s-expression, requiring the whole input be consumed.
pub fn parse_sexp(input: &str) -> Result<SExp, SExpError> {
    let mut r = Reader {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let e = r.read()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return r.err("trailing input after s-expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms() {
        assert_eq!(parse_sexp("x").unwrap(), SExp::Atom("x".into()));
        assert_eq!(parse_sexp("  ?a ").unwrap(), SExp::Atom("?a".into()));
        assert_eq!(parse_sexp("3.5").unwrap(), SExp::Atom("3.5".into()));
    }

    #[test]
    fn nested_lists() {
        let e = parse_sexp("(* ?a (+ ?b ?c))").unwrap();
        assert_eq!(e.to_string(), "(* ?a (+ ?b ?c))");
        let items = e.as_list().unwrap();
        assert_eq!(items[0].as_atom(), Some("*"));
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn empty_list() {
        assert_eq!(parse_sexp("()").unwrap(), SExp::List(vec![]));
    }

    #[test]
    fn comments_skipped() {
        let e = parse_sexp("(a ; comment\n b)").unwrap();
        assert_eq!(e.to_string(), "(a b)");
    }

    #[test]
    fn errors() {
        assert!(parse_sexp("").is_err());
        assert!(parse_sexp("(a").is_err());
        assert!(parse_sexp(")").is_err());
        assert!(parse_sexp("a b").is_err());
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "(sum i (* (b i j A) (b j k B)))",
            "x",
            "(f)",
            "(f (g (h x)))",
        ] {
            let e = parse_sexp(s).unwrap();
            assert_eq!(parse_sexp(&e.to_string()).unwrap(), e);
        }
    }
}
