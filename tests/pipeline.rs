//! Cross-crate pipeline property tests: for a corpus of LA expressions,
//! the full SPORES pipeline (translate → saturate → extract → lower)
//! must preserve execution semantics on the real execution engine, for
//! both extractors, and never *increase* the estimated plan cost.

use spores::core::{ExtractorKind, Optimizer, OptimizerConfig, VarMeta};
use spores::exec::Executor;
use spores::ir::{ExprArena, Symbol};
use spores::matrix::{gen, Matrix};
use std::collections::HashMap;

struct Fixture {
    vars: HashMap<Symbol, VarMeta>,
    env: HashMap<Symbol, Matrix>,
}

fn fixture() -> Fixture {
    let mut r = gen::rng(2024);
    let dims: Vec<(&str, usize, usize, f64)> = vec![
        ("X", 40, 30, 0.1),
        ("Y", 40, 30, 1.0),
        ("Z", 30, 20, 1.0),
        ("u", 40, 1, 1.0),
        ("v", 30, 1, 1.0),
        ("w", 20, 1, 1.0),
        ("s", 1, 1, 1.0),
    ];
    let mut vars = HashMap::new();
    let mut env = HashMap::new();
    for (name, rows, cols, sp) in dims {
        let m = if sp < 1.0 {
            gen::rand_sparse(rows, cols, sp, -1.0, 1.0, &mut r)
        } else {
            gen::rand_dense(rows, cols, -1.0, 1.0, &mut r)
        };
        vars.insert(
            Symbol::new(name),
            VarMeta::sparse(rows as u64, cols as u64, m.sparsity()),
        );
        env.insert(Symbol::new(name), m);
    }
    Fixture { vars, env }
}

const CORPUS: &[&str] = &[
    "sum((X - u %*% t(v))^2)",
    "sum(X * Y)",
    "sum(X %*% Z)",
    "rowSums(X * Y) + u",
    "colSums(X) %*% v",
    "t(u) %*% X %*% v",
    "(X * Y) %*% Z",
    "X %*% Z %*% w",
    "sum(X^2) - 2 * sum(X * Y) + sum(Y^2)",
    "s * sum(X %*% t(Y))",
    "sigmoid(X %*% v)",
    "t(X) %*% (u * u)",
    "sum((X - Y)^2)",
    "(u %*% t(v)) * X",
    "X / (Y + 2)",
    "sum(abs(X) * sign(X))",
];

fn check(src: &str, extractor: ExtractorKind) {
    let f = fixture();
    let mut arena = ExprArena::new();
    let root = spores::ir::parse_expr(&mut arena, src).unwrap();
    let opt = Optimizer::new(OptimizerConfig {
        extractor,
        node_limit: 6_000,
        iter_limit: 15,
        ..OptimizerConfig::default()
    });
    let r = opt.optimize(&arena, root, &f.vars).unwrap();
    assert!(
        r.cost_after <= r.cost_before + 1e-6,
        "{src}: cost increased {} -> {}",
        r.cost_before,
        r.cost_after
    );
    let want = Executor::default().run(&arena, root, &f.env).unwrap();
    let got = Executor::default().run(&r.arena, r.root, &f.env).unwrap();
    assert!(
        want.approx_eq(&got, 1e-6),
        "{src} diverged via {}",
        r.arena.display(r.root)
    );
}

#[test]
fn greedy_pipeline_preserves_semantics() {
    for src in CORPUS {
        check(src, ExtractorKind::Greedy);
    }
}

#[test]
fn ilp_pipeline_preserves_semantics() {
    for src in CORPUS {
        check(src, ExtractorKind::Ilp);
    }
}

#[test]
fn depth_first_scheduler_pipeline() {
    let f = fixture();
    for src in &CORPUS[..6] {
        let mut arena = ExprArena::new();
        let root = spores::ir::parse_expr(&mut arena, src).unwrap();
        let opt = Optimizer::new(OptimizerConfig {
            scheduler: spores::egraph::Scheduler::DepthFirst,
            node_limit: 6_000,
            iter_limit: 15,
            ..OptimizerConfig::default()
        });
        let r = opt.optimize(&arena, root, &f.vars).unwrap();
        let want = Executor::default().run(&arena, root, &f.env).unwrap();
        let got = Executor::default().run(&r.arena, r.root, &f.env).unwrap();
        assert!(want.approx_eq(&got, 1e-6), "{src}");
    }
}
