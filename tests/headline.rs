//! End-to-end reproduction of the paper's §1 headline optimization:
//! `sum((X − u vᵀ)²)` must be rewritten to a plan that never
//! materializes the dense rank-1 matrix, and the rewrite must be robust
//! to the `−` → `+` variation that defeats SystemML's syntactic rules.

use spores::core::{ExtractorKind, Optimizer, OptimizerConfig, VarMeta};
use spores::exec::Executor;
use spores::ir::{ExprArena, Symbol};
use spores::matrix::gen;
use std::collections::HashMap;

fn optimize(src: &str, extractor: ExtractorKind) -> (ExprArena, spores::ir::NodeId, f64) {
    let mut arena = ExprArena::new();
    let root = spores::ir::parse_expr(&mut arena, src).unwrap();
    let vars: HashMap<Symbol, VarMeta> = HashMap::from([
        (Symbol::new("X"), VarMeta::sparse(1000, 500, 0.001)),
        (Symbol::new("u"), VarMeta::dense(1000, 1)),
        (Symbol::new("v"), VarMeta::dense(500, 1)),
    ]);
    let opt = Optimizer::new(OptimizerConfig {
        extractor,
        ..OptimizerConfig::default()
    });
    let r = opt.optimize(&arena, root, &vars).unwrap();
    assert!(!r.fell_back, "{src} must lower");
    let speedup = r.speedup_estimate();
    (r.arena, r.root, speedup)
}

fn check_semantics(src: &str, arena: &ExprArena, root: spores::ir::NodeId) {
    let mut orig_arena = ExprArena::new();
    let orig_root = spores::ir::parse_expr(&mut orig_arena, src).unwrap();
    let mut rng = gen::rng(99);
    let env = HashMap::from([
        (
            Symbol::new("X"),
            gen::rand_sparse(1000, 500, 0.001, -2.0, 2.0, &mut rng),
        ),
        (
            Symbol::new("u"),
            gen::rand_dense(1000, 1, -1.0, 1.0, &mut rng),
        ),
        (
            Symbol::new("v"),
            gen::rand_dense(500, 1, -1.0, 1.0, &mut rng),
        ),
    ]);
    let want = Executor::default()
        .run(&orig_arena, orig_root, &env)
        .unwrap();
    let got = Executor::default().run(arena, root, &env).unwrap();
    let (w, g) = (want.as_scalar(), got.as_scalar());
    assert!(
        (w - g).abs() <= 1e-6 * (1.0 + w.abs()),
        "{src}: {w} vs {g} via {}",
        arena.display(root)
    );
}

#[test]
fn headline_minus_variant() {
    let src = "sum((X - u %*% t(v))^2)";
    let (arena, root, speedup) = optimize(src, ExtractorKind::Greedy);
    let shown = arena.display(root);
    assert!(
        !shown.contains("u %*% t(v)"),
        "dense outer product must be eliminated: {shown}"
    );
    assert!(speedup > 50.0, "estimated speedup {speedup}");
    check_semantics(src, &arena, root);
}

#[test]
fn headline_plus_variant() {
    // "such syntactic rules fail on the simplest variations" — ours must not
    let src = "sum((X + u %*% t(v))^2)";
    let (arena, root, speedup) = optimize(src, ExtractorKind::Greedy);
    assert!(speedup > 50.0, "estimated speedup {speedup}");
    check_semantics(src, &arena, root);
}

#[test]
fn headline_with_ilp_extraction() {
    let src = "sum((X - u %*% t(v))^2)";
    let (arena, root, _) = optimize(src, ExtractorKind::Ilp);
    check_semantics(src, &arena, root);
}

#[test]
fn baseline_misses_plus_variant() {
    // SystemML's wsloss pattern only matches the subtraction form at
    // runtime; its rewriter has no rule for the + variant either.
    use spores::systemml::{HeuristicRewriter, OptLevel, VarInfo};
    let mut arena = ExprArena::new();
    let root = spores::ir::parse_expr(&mut arena, "sum((X + u %*% t(v))^2)").unwrap();
    let vars: HashMap<Symbol, VarInfo> = HashMap::from([
        (
            Symbol::new("X"),
            VarInfo {
                shape: spores::ir::Shape::new(1000, 500),
                sparsity: 0.001,
            },
        ),
        (
            Symbol::new("u"),
            VarInfo {
                shape: spores::ir::Shape::new(1000, 1),
                sparsity: 1.0,
            },
        ),
        (
            Symbol::new("v"),
            VarInfo {
                shape: spores::ir::Shape::new(500, 1),
                sparsity: 1.0,
            },
        ),
    ]);
    let r = HeuristicRewriter::new(OptLevel::Opt2).rewrite(&arena, root, &vars);
    // the baseline leaves the expression (and its dense intermediate) alone
    assert!(r.arena.display(r.root).contains("u %*% t(v)"));
}
