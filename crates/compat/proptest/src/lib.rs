//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no network access to a
//! registry, so the workspace vendors the subset of the proptest API its
//! tests actually use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, [`prop_oneof!`], [`Just`],
//! [`any`](arbitrary::any), `prop::collection::vec`, the [`proptest!`]
//! test macro, and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Value-based shrinking, not value trees.** On failure the runner
//!   greedily minimizes the inputs via [`Strategy::shrink`] (bounded at
//!   256 attempts): scalars halve toward the range floor (or zero for
//!   `any`), vectors halve their length, drop single elements, and
//!   shrink elements in place, tuples shrink component-wise, and
//!   `prop_oneof!` / boxed strategies delegate to their arms. Strategies
//!   built with `prop_map` / `prop_flat_map` do *not* shrink through the
//!   mapping (the closure has no inverse), so mapped values only shrink
//!   via the structure around them — coarser than real proptest, but
//!   failures still report a locally-minimal counterexample.
//! * **Fixed deterministic seeding** derived from the test name, so runs
//!   are reproducible (real proptest randomizes and persists regressions).
//! * Rejections from `prop_assume!` simply skip the case without being
//!   counted against a rejection budget.
//! * Panics inside the test body are caught and treated like
//!   `prop_assert!` failures so panicking cases shrink too; each probe
//!   of a panicking candidate prints through the default panic hook, so
//!   shrinking a panicking test is noisy on stderr.

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Per-`proptest!`-block configuration (subset of the real one).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert!` failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: the inputs don't apply; skip.
        Reject,
    }

    /// Best-effort extraction of a caught panic's message (used by the
    /// `proptest!` runner to fold panics into shrinkable failures).
    #[doc(hidden)]
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<opaque panic payload>".to_owned()
        }
    }
}

pub mod strategy {
    use crate::test_runner::{TestCaseError, TestRng};
    use std::rc::Rc;

    /// A generator of values (subset of `proptest::strategy::Strategy`),
    /// plus value-based shrinking: `shrink` proposes strictly-simpler
    /// candidate replacements for a failing value, most aggressive
    /// first; the runner keeps any candidate that still fails and
    /// re-shrinks from there ([`minimize`]).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Simpler candidates for `value`; empty when already minimal
        /// (also the default, for strategies with no usable inverse —
        /// e.g. `prop_map`).
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Generate recursive structures: `levels` rounds of `recurse`
        /// applied on top of `self` as the leaf strategy. The size hints
        /// of the real API are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.boxed();
            for _ in 0..levels {
                strat = recurse(strat.clone()).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let strat = Rc::new(self);
            let gen_strat = Rc::clone(&strat);
            BoxedStrategy {
                gen: Rc::new(move |rng| gen_strat.generate(rng)),
                shrinker: Rc::new(move |v| strat.shrink(v)),
            }
        }
    }

    /// Greedy bounded minimization: repeatedly replace `value` with the
    /// first shrink candidate that still fails `run`, until no candidate
    /// fails (a local minimum) or the attempt budget is spent. Returns
    /// the minimized value, its failure message, and the probe count.
    #[doc(hidden)]
    pub fn minimize<S: Strategy>(
        strat: &S,
        mut value: S::Value,
        mut msg: String,
        run: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) -> (S::Value, String, usize)
    where
        S::Value: Clone,
    {
        const MAX_ATTEMPTS: usize = 256;
        let mut attempts = 0;
        'minimal: while attempts < MAX_ATTEMPTS {
            for cand in strat.shrink(&value) {
                attempts += 1;
                if let Err(TestCaseError::Fail(m)) = run(cand.clone()) {
                    value = cand;
                    msg = m;
                    continue 'minimal;
                }
                if attempts >= MAX_ATTEMPTS {
                    break;
                }
            }
            break; // every candidate passed: local minimum
        }
        (value, msg, attempts)
    }

    /// Pins a `proptest!`-generated case-runner closure's argument type
    /// to `S::Value` (the macro cannot name the strategy tuple's value
    /// type, and closure parameter inference needs the tie).
    #[doc(hidden)]
    pub fn constrain_runner<S: Strategy, F>(_strat: &S, f: F) -> F
    where
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        f
    }

    /// Type-erased shrinker of a [`BoxedStrategy`].
    type Shrinker<V> = Rc<dyn Fn(&V) -> Vec<V>>;

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
        shrinker: Shrinker<V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
                shrinker: Rc::clone(&self.shrinker),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
        fn shrink(&self, value: &V) -> Vec<V> {
            (self.shrinker)(value)
        }
    }

    /// Always produces a clone of the given value (already minimal).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
        /// The producing arm isn't recorded, so pool every arm's
        /// candidates; `minimize` only keeps ones that still fail.
        fn shrink(&self, value: &V) -> Vec<V> {
            self.options.iter().flat_map(|o| o.shrink(value)).collect()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                source: self.source.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
                fn shrink(&self, v: &$t) -> Vec<$t> {
                    shrink_toward(self.start as i128, *v as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
                fn shrink(&self, v: &$t) -> Vec<$t> {
                    shrink_toward(*self.start() as i128, *v as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Scalar shrink candidates for `v` with floor `lo`: the floor
    /// itself, the midpoint, and the predecessor — aggressive first.
    pub(crate) fn shrink_toward(lo: i128, v: i128) -> Vec<i128> {
        if v == lo {
            return Vec::new();
        }
        let step = if v > lo { 1 } else { -1 };
        let mut out = vec![lo];
        let mid = lo + (v - lo) / 2;
        if mid != lo && mid != v {
            out.push(mid);
        }
        let dec = v - step;
        if dec != lo && dec != mid {
            out.push(dec);
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                /// Component-wise: shrink one position, clone the rest.
                fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&v.$idx) {
                            let mut w = v.clone();
                            w.$idx = cand;
                            out.push(w);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    impl Strategy for () {
        type Value = ();
        fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Simpler candidates for a failing value (shrinking); empty
        /// when already minimal.
        fn shrink_value(value: &Self) -> Vec<Self> {
            let _ = value;
            Vec::new()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(v: &$t) -> Vec<$t> {
                    crate::strategy::shrink_toward(0, *v as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink_value(v: &bool) -> Vec<bool> {
            if *v {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink_value(value)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        /// Length shrinks first (halve toward the minimum, keeping
        /// either end; drop each single element), then element shrinks
        /// in place.
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let n = v.len();
            if n > self.size.lo {
                let half = self.size.lo + (n - self.size.lo) / 2;
                out.push(v[..half].to_vec());
                out.push(v[n - half..].to_vec());
                for i in 0..n {
                    let mut w = v.clone();
                    w.remove(i);
                    out.push(w);
                }
            }
            for i in 0..n {
                for cand in self.element.shrink(&v[i]) {
                    let mut w = v.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// What the tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prelude::prop` shorthand module.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed derived from the test name.
            let mut seed: u64 = 0xcafe_f00d_d15e_a5e5;
            for byte in stringify!($name).bytes() {
                seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(byte as u64);
            }
            let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
            // Bundling the argument strategies as a tuple strategy keeps
            // the RNG stream identical to per-argument generation (the
            // components draw in declaration order) while giving the
            // shrinker one composite value to minimize.
            let strategies = ($(($strat),)*);
            let run_case = $crate::strategy::constrain_runner(&strategies, |args| {
                let ($($arg,)*) = args;
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                )) {
                    ::std::result::Result::Ok(r) => r,
                    ::std::result::Result::Err(payload) => {
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            $crate::test_runner::panic_message(&*payload),
                        ))
                    }
                }
            });
            for case in 0..config.cases {
                let current = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                match run_case(current.clone()) {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        let (minimal, msg, attempts) =
                            $crate::strategy::minimize(&strategies, current, msg, &run_case);
                        let ($($arg,)*) = &minimal;
                        let inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; "),*),
                            $(&$arg),*
                        );
                        panic!(
                            "proptest case {case} failed: {msg}\n  minimal inputs \
                             (after {attempts} shrink probes): {inputs}",
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::minimize;
    use crate::test_runner::TestCaseError;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (1usize..=9).generate(&mut rng);
            assert!((1..=9).contains(&v));
            let xs = prop::collection::vec(-5i8..=5, 3..7).generate(&mut rng);
            assert!((3..7).contains(&xs.len()));
            assert!(xs.iter().all(|x| (-5..=5).contains(x)));
        }
    }

    #[test]
    fn oneof_map_recursive_compose() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(u8),
            Pair(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(v) => {
                    assert!(*v < 4, "leaf out of range");
                    0
                }
                T::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = prop_oneof![(0u8..4).prop_map(T::Leaf)].prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| T::Pair(Box::new(a), Box::new(b))),
                inner,
            ]
        });
        let mut rng = crate::test_runner::TestRng::seed_from_u64(9);
        let mut saw_pair = false;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_pair |= matches!(t, T::Pair(..));
        }
        assert!(saw_pair, "recursion never produced a pair");
    }

    #[test]
    fn scalars_shrink_to_the_smallest_failing_value() {
        // Property "v < 10" fails for v >= 10; the minimum is exactly 10.
        let strat = (0usize..1000,);
        let run = |(v,): (usize,)| {
            if v >= 10 {
                Err(TestCaseError::Fail("too big".into()))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = minimize(&strat, (700,), "seed".into(), run);
        assert_eq!(minimal.0, 10);

        // Signed ranges shrink toward their floor, not toward zero.
        let strat = (-50i32..50,);
        let run = |(v,): (i32,)| {
            if v >= -20 {
                Err(TestCaseError::Fail("too big".into()))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = minimize(&strat, (44,), "seed".into(), run);
        assert_eq!(minimal.0, -20);
    }

    #[test]
    fn vectors_shrink_to_a_single_minimal_element() {
        // Property "no element >= 7": the minimal counterexample is [7].
        let strat = prop::collection::vec(0u8..100, 0..20);
        let run = |v: Vec<u8>| {
            if v.iter().any(|&x| x >= 7) {
                Err(TestCaseError::Fail("has big element".into()))
            } else {
                Ok(())
            }
        };
        let failing = vec![3, 91, 12, 0, 44, 87, 5];
        let (minimal, _, attempts) = minimize(&strat, failing, "seed".into(), run);
        assert_eq!(minimal, vec![7]);
        assert!(attempts <= 256);
    }

    #[test]
    fn rejected_candidates_do_not_stall_shrinking() {
        // Candidates that reject (prop_assume) are skipped, not kept.
        let strat = (0usize..100,);
        let run = |(v,): (usize,)| {
            if v == 0 {
                Err(TestCaseError::Reject)
            } else if v >= 5 {
                Err(TestCaseError::Fail("big".into()))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = minimize(&strat, (80,), "seed".into(), run);
        assert_eq!(minimal.0, 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(a in 0usize..100, b in any::<bool>()) {
            prop_assume!(a > 0);
            prop_assert!(a < 100, "a out of range: {}", a);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
            let _ = b;
        }
    }
}
