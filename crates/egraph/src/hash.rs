//! A fast, non-cryptographic hasher for integer-heavy keys.
//!
//! E-graph hot paths hash e-nodes (small structs of integer ids) millions
//! of times during saturation. The default SipHash is needlessly slow for
//! this; we use the FxHash multiply-xor scheme (the one rustc uses), which
//! the Rust performance guide recommends for integer keys. Implemented
//! in-tree to keep the dependency set to the allowed list.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildFxHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildFxHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_small_integers() {
        let mut seen = FxHashSet::<u64>::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // no collisions on consecutive small ints
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn byte_writes_consistent() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
