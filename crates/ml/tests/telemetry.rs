//! Telemetry integration: an ALS `optimize_workload` run with
//! `OptimizerConfig::telemetry` must leave a well-formed trace behind.
//!
//! Lives in its own integration-test binary (its own process) because it
//! asserts on the process-global journal and registry — in-process
//! sibling tests would interleave their events.

use spores_core::Optimizer;
use spores_ml::workloads;
use spores_ml::{workload_bundle, workload_optimizer_config};
use spores_telemetry as telemetry;

#[test]
fn als_workload_trace_has_one_phase_span_set_per_iteration() {
    telemetry::reset();
    let bundle = workload_bundle(&workloads::als(60, 40, 4, 11));
    let mut cfg = workload_optimizer_config();
    cfg.telemetry = true;
    let opt = Optimizer::new(cfg)
        .optimize_workload(&bundle.expr, &bundle.vars)
        .expect("ALS optimizes");
    telemetry::set_enabled(false);

    let events = telemetry::drain();
    let json = telemetry::chrome_trace_json(&events);
    let check = telemetry::validate_chrome_trace(&json).expect("emitted trace is schema-valid");

    let iters = opt.saturation.iterations as u64;
    assert!(iters > 0, "saturation ran");
    assert_eq!(
        check.spans("saturation.rebuild"),
        iters,
        "exactly one rebuild span per saturation iteration"
    );
    assert_eq!(check.spans("saturation.search"), iters);
    assert_eq!(check.spans("saturation.apply"), iters);
    assert_eq!(check.spans("saturation.iter"), iters);
    for phase in ["optimize.translate", "optimize.saturate", "optimize.lower"] {
        assert_eq!(check.spans(phase), 1, "one {phase} span per optimize call");
    }

    // The per-rule counters mirror `RuleIterStats` exactly: summed over
    // rules they must reproduce the run's aggregate stats.
    let registry = telemetry::global().registry();
    assert_eq!(
        registry.counter_sum("saturation.rule.candidates") as usize,
        opt.saturation.candidates_visited,
        "per-rule candidate counters sum to SaturationStats.candidates_visited"
    );
    assert_eq!(
        registry.counter_sum("saturation.rule.matches") as usize,
        opt.saturation.matches_found,
        "per-rule match counters sum to SaturationStats.matches_found"
    );
}
