//! Relational (generic-join) e-matching.
//!
//! The paper frames equality saturation itself as a relational problem
//! (§4); this module takes that seriously on the *matching* side, after
//! "Relational E-Matching" (Zhang et al.): e-nodes are rows of per-op
//! relations, and a multi-node pattern is a conjunctive query over them.
//!
//! Two pieces:
//!
//! * [`RelIndex`] — the relation store. For every `(op, arity, child
//!   slot)` triple it keeps the **sorted** canonical ids of classes that
//!   appear in that child position of some node with that head.
//!   Maintained incrementally: [`RelIndex::insert_node`] at
//!   [`crate::EGraph::add`] (sorted insert — fresh nodes may point at
//!   any existing class) and [`RelIndex::canonicalize`] at rebuild
//!   (remap every entry through the union-find; columns whose entries
//!   were all fixed points skip the re-sort). `check_invariants` audits
//!   it against [`RelIndex::rebuild_from`], the from-scratch oracle.
//! * [`RelQuery`] / [`RelPlan`] — the query side. A pattern compiles
//!   once into a `RelQuery` (its e-node *atoms* and variable occurrence
//!   lists); sweeps of at least [`PLANNED_SWEEP_MIN`] candidates
//!   instantiate a `RelPlan` against the current e-graph: a
//!   generic-join instruction list whose variable-elimination order is
//!   chosen per sweep by estimated selectivity (relation
//!   cardinalities), with per-atom **guard columns** — sorted-merge
//!   intersections of the parent's child column with the atom's op-head
//!   column — that prune bindings by binary search before any class
//!   node scan, and short-circuit the whole sweep when empty. Smaller
//!   sweeps skip per-sweep planning and run the query's precompiled
//!   static plan (slot-ordered, guard-free), where the planner's column
//!   lookups and merges would cost more than the sweep itself.
//!
//! The plan's match *results* are bit-identical to the structural
//! machine's ([`crate::Pattern::search_ids_with_stats`]): guards are
//! necessary conditions (`matches ⟹ op_key equal ⟹ head-column
//! membership`), every surviving binding is still verified by scanning
//! the class's nodes, and the shared `finish_matches` normalization
//! makes per-class substitution sets order-insensitive. Which backend
//! runs is picked by [`MatchingMode`], threaded from
//! `OptimizerConfig.matching` through the runner's search funnel.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::hash::FxHashMap;
use crate::language::{Id, Language, OpKey, RecExpr};
use crate::pattern::{ENodeOrVar, Subst, Var};
use crate::unionfind::UnionFind;
use std::collections::VecDeque;

/// Which e-matching backend a search uses. Both produce bit-identical
/// matches and visited-candidate counts; they differ only in how much
/// work a sweep does. The structural machine and the interpreted
/// `naive_search` stay as the two differential oracles.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum MatchingMode {
    /// The compiled bind/compare machine over the op-head index (PR 1):
    /// child positions are verified by scanning class node vectors.
    #[default]
    Structural,
    /// Generic join over the `(op, arity, slot)` relational index:
    /// child positions are pre-filtered by sorted-column membership and
    /// sweeps with an empty guard intersection are skipped outright.
    Relational,
}

/// Key of one relational column: nodes with head `op` and `arity`
/// children contribute their child at position `slot`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SlotKey {
    pub op: OpKey,
    pub arity: u32,
    pub slot: u32,
}

/// The `(op, arity, child-slot) → sorted class-id column` index — the
/// relation store of relational e-matching. Lives alongside the op-head
/// index on [`crate::EGraph`]; see the module docs for the maintenance
/// protocol.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelIndex {
    cols: FxHashMap<SlotKey, Vec<Id>>,
}

impl RelIndex {
    /// The sorted canonical class ids appearing at child position `slot`
    /// of some node with head `op` and the given arity. Empty slice for
    /// absent keys. Only meaningful on a clean graph.
    pub fn column(&self, op: OpKey, arity: usize, slot: usize) -> &[Id] {
        let key = SlotKey {
            op,
            arity: arity as u32,
            slot: slot as u32,
        };
        self.cols.get(&key).map_or(&[], |col| col.as_slice())
    }

    /// Number of distinct `(op, arity, slot)` columns.
    pub fn n_columns(&self) -> usize {
        self.cols.len()
    }

    /// Total ids stored across all columns.
    pub fn total_entries(&self) -> usize {
        self.cols.values().map(Vec::len).sum()
    }

    /// Index a freshly added node's (already canonical) children. Unlike
    /// the op-head index — where fresh class ids are strictly increasing
    /// and a push keeps the vector sorted — a fresh node's children can
    /// be *any* existing classes, so each column takes a sorted insert.
    /// This runs at [`crate::EGraph::add`] because adds keep the graph
    /// clean: a search may follow without any rebuild in between.
    pub(crate) fn insert_node<L: Language>(&mut self, node: &L) {
        let children = node.children();
        if children.is_empty() {
            return;
        }
        let op = node.op_key();
        let arity = children.len() as u32;
        for (slot, &child) in children.iter().enumerate() {
            let col = self
                .cols
                .entry(SlotKey {
                    op,
                    arity,
                    slot: slot as u32,
                })
                .or_default();
            if let Err(pos) = col.binary_search(&child) {
                col.insert(pos, child);
            }
        }
    }

    /// Incremental maintenance at rebuild: remap every entry to its
    /// canonical representative, re-sorting and deduplicating only the
    /// columns where something actually moved. Nodes are never deleted
    /// and canonicalization only *merges* ids, so remapping the
    /// incrementally accumulated columns lands on exactly the same sets
    /// as rebuilding from the canonicalized class nodes — the property
    /// `check_invariants` asserts against [`RelIndex::rebuild_from`].
    pub(crate) fn canonicalize(&mut self, uf: &UnionFind) {
        for col in self.cols.values_mut() {
            let mut changed = false;
            for id in col.iter_mut() {
                let root = uf.find_immutable(*id);
                if root != *id {
                    *id = root;
                    changed = true;
                }
            }
            if changed {
                col.sort_unstable();
                col.dedup();
            }
        }
    }

    /// From-scratch construction over an e-graph's (canonical) nodes —
    /// the oracle the incremental maintenance is audited against.
    pub fn rebuild_from<'a, L: Language + 'a>(nodes: impl Iterator<Item = &'a L>) -> RelIndex {
        let mut cols: FxHashMap<SlotKey, Vec<Id>> = FxHashMap::default();
        for node in nodes {
            let children = node.children();
            if children.is_empty() {
                continue;
            }
            let op = node.op_key();
            let arity = children.len() as u32;
            for (slot, &child) in children.iter().enumerate() {
                cols.entry(SlotKey {
                    op,
                    arity,
                    slot: slot as u32,
                })
                .or_default()
                .push(child);
            }
        }
        for col in cols.values_mut() {
            col.sort_unstable();
            col.dedup();
        }
        RelIndex { cols }
    }
}

/// One e-node atom of a compiled relational query.
#[derive(Clone, Debug)]
struct RelAtom<L> {
    /// Register holding the class this atom's node must inhabit.
    reg: usize,
    /// Head template (pattern-internal child ids are never read at run
    /// time — only the head is consulted, exactly like `Insn::Bind`).
    node: L,
    /// First register of this atom's contiguous child block.
    out: usize,
    /// Link to the parent atom: `(parent atom index, child slot)`.
    /// `None` for the root atom.
    parent: Option<(usize, usize)>,
    /// This atom's e-node children as `(slot, atom index)`.
    enode_children: Vec<(usize, usize)>,
}

/// A pattern compiled for relational execution: its atom tree plus the
/// register occurrences of every pattern variable. Built once per
/// pattern ([`crate::Pattern::new`]); per-sweep state lives in
/// [`RelPlan`]. Registers use the same layout as the structural
/// machine: register 0 is the candidate root, every atom owns a
/// contiguous block for its children.
#[derive(Clone, Debug)]
pub(crate) struct RelQuery<L> {
    /// Atom 0 is the pattern root (empty when the root is a variable).
    atoms: Vec<RelAtom<L>>,
    /// Each variable with the registers of all its occurrences.
    var_occ: Vec<(Var, Vec<usize>)>,
    n_regs: usize,
    /// Precompiled static plan: slot-ordered DFS, no guards. Small
    /// sweeps execute this directly — per-sweep planning (column
    /// lookups, selectivity estimates, guard merges) costs more than it
    /// saves below [`PLANNED_SWEEP_MIN`] candidates.
    static_insns: Vec<RelInsn<L>>,
    /// Variable → binding register for the static plan.
    static_subst_regs: Vec<(Var, usize)>,
}

/// BFS worklist entry of [`RelQuery::compile`]: pattern node, its
/// register, and the `(parent atom, slot)` it hangs off (root: `None`).
type CompileItem = (Id, usize, Option<(usize, usize)>);

impl<L: Language> RelQuery<L> {
    /// Lower `ast` breadth-first into the atom tree (same traversal as
    /// the structural `Program::compile`, so the register files of the
    /// two machines line up instruction-for-instruction).
    pub(crate) fn compile(ast: &RecExpr<ENodeOrVar<L>>) -> RelQuery<L> {
        let mut atoms: Vec<RelAtom<L>> = Vec::new();
        let mut var_occ: Vec<(Var, Vec<usize>)> = Vec::new();
        let mut n_regs = 1usize;
        let mut work: VecDeque<CompileItem> = VecDeque::from([(ast.root(), 0, None)]);
        while let Some((pat, reg, parent)) = work.pop_front() {
            match ast.node(pat) {
                ENodeOrVar::Var(v) => match var_occ.iter_mut().find(|(u, _)| u == v) {
                    Some((_, occ)) => occ.push(reg),
                    None => var_occ.push((*v, vec![reg])),
                },
                ENodeOrVar::ENode(n) => {
                    let ix = atoms.len();
                    let out = n_regs;
                    n_regs += n.children().len();
                    atoms.push(RelAtom {
                        reg,
                        node: n.clone(),
                        out,
                        parent,
                        enode_children: Vec::new(),
                    });
                    if let Some((p, slot)) = parent {
                        atoms[p].enode_children.push((slot, ix));
                    }
                    for (i, &child) in n.children().iter().enumerate() {
                        work.push_back((child, out + i, Some((ix, i))));
                    }
                }
            }
        }
        let (static_insns, static_subst_regs) = emit_plan(&atoms, &var_occ, n_regs, None);
        RelQuery {
            atoms,
            var_occ,
            n_regs,
            static_insns,
            static_subst_regs,
        }
    }

    /// Execute the precompiled static plan with `eclass` (canonical) as
    /// the candidate root. Same scratch-buffer contract as
    /// [`RelPlan::run_into`]; bit-identical results to the planned path
    /// (plan shape only affects the work done, never the match set —
    /// `finish_matches` normalizes substitution order downstream).
    pub(crate) fn run_static_into<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        eclass: Id,
        regs: &mut Vec<Id>,
        out: &mut Vec<Subst>,
    ) {
        debug_assert!(out.is_empty());
        regs.clear();
        regs.resize(self.n_regs, eclass);
        exec(
            &self.static_insns,
            &[],
            &self.static_subst_regs,
            egraph,
            0,
            regs,
            out,
        );
    }

    /// Semi-join impossibility precheck: `true` when some non-root atom
    /// has an empty op-head column or an empty (parent op, arity, slot)
    /// child column, which proves no candidate anywhere can match —
    /// every match must bind that atom to a class carrying its operator
    /// that also appears in the parent's child column. O(#atoms) hash
    /// lookups against [`RelIndex`], no allocation: cheap enough to run
    /// before *every* sweep, letting inapplicable rules skip execution
    /// entirely (the structural machine has no index over inner
    /// operators and must fail candidate by candidate).
    pub(crate) fn sweep_is_impossible<A: Analysis<L>>(&self, egraph: &EGraph<L, A>) -> bool {
        self.atoms.iter().any(|atom| {
            let Some((p, slot)) = atom.parent else {
                return false;
            };
            let parent = &self.atoms[p];
            egraph.classes_with_op(atom.node.op_key()).is_empty()
                || egraph
                    .classes_with_op_child(parent.node.op_key(), parent.node.children().len(), slot)
                    .is_empty()
        })
    }
}

/// Emit the DFS instruction list over `atoms`. With `guarded =
/// Some((atom_est, atom_guard))`, each atom's e-node children are
/// visited in ascending selectivity order and a `Guard` precedes every
/// descent (the planned generic join); with `None`, children stay in
/// slot order and no guards are emitted (the static plan). Returns the
/// instructions and each variable's binding register (its first
/// occurrence in execution order — later occurrences are
/// `Compare`-checked equal, so any of them would produce the same
/// substitution).
fn emit_plan<L: Language>(
    atoms: &[RelAtom<L>],
    var_occ: &[(Var, Vec<usize>)],
    n_regs: usize,
    guarded: Option<(&[usize], &[Option<usize>])>,
) -> (Vec<RelInsn<L>>, Vec<(Var, usize)>) {
    let mut insns: Vec<RelInsn<L>> = Vec::new();
    let mut first_bound: Vec<Option<usize>> = vec![None; var_occ.len()];
    // reg → index into var_occ, for occurrence registers only.
    let mut reg_var: Vec<Option<usize>> = vec![None; n_regs];
    for (vi, (_, occ)) in var_occ.iter().enumerate() {
        for &r in occ {
            reg_var[r] = Some(vi);
        }
    }
    if atoms.is_empty() {
        // Root is a bare variable: every candidate matches itself.
        if let Some(vi) = reg_var[0] {
            first_bound[vi] = Some(0);
        }
    } else {
        let mut stack: Vec<usize> = vec![0];
        while let Some(ix) = stack.pop() {
            let atom = &atoms[ix];
            let arity = atom.node.children().len();
            insns.push(RelInsn::Scan {
                reg: atom.reg,
                node: atom.node.clone(),
                out: atom.out,
            });
            for (r, rv) in reg_var.iter().enumerate().skip(atom.out).take(arity) {
                if let Some(vi) = *rv {
                    match first_bound[vi] {
                        Some(first) => insns.push(RelInsn::Compare { a: first, b: r }),
                        None => first_bound[vi] = Some(r),
                    }
                }
            }
            // `enode_children` is built in slot order; re-sort only for
            // the selectivity-planned variant (tie-break on slot keeps
            // the order deterministic).
            let mut children = atom.enode_children.clone();
            if let Some((atom_est, atom_guard)) = guarded {
                children.sort_by_key(|&(slot, child)| (atom_est[child], slot));
                for &(slot, child) in &children {
                    insns.push(RelInsn::Guard {
                        reg: atom.out + slot,
                        col: atom_guard[child].expect("non-root atom has a guard"),
                    });
                }
            }
            // LIFO stack: push in reverse so the first-ordered (most
            // selective, or lowest-slot) subtree is scanned first.
            for &(_, child) in children.iter().rev() {
                stack.push(child);
            }
        }
    }
    let subst_regs = var_occ
        .iter()
        .enumerate()
        .map(|(vi, (var, _))| {
            (
                *var,
                first_bound[vi].expect("every variable occurrence is bound by some scan"),
            )
        })
        .collect();
    (insns, subst_regs)
}

/// A guard column of an instantiated plan: either the op-head column
/// borrowed straight from the e-graph (lazy — membership in the
/// parent's child column is implied by construction, because every
/// binding a `Scan` produces came out of that very column), or the
/// owned sorted-merge intersection of the two (eager — tighter, and
/// computed only when the sweep is large enough to amortize the merge).
enum GuardCol<'g> {
    Borrowed(&'g [Id]),
    Owned(Vec<Id>),
}

impl GuardCol<'_> {
    fn as_slice(&self) -> &[Id] {
        match self {
            GuardCol::Borrowed(ids) => ids,
            GuardCol::Owned(ids) => ids,
        }
    }
}

/// Sorted-merge intersection of two sorted id columns.
fn intersect_sorted(a: &[Id], b: &[Id]) -> Vec<Id> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// One instruction of an instantiated join plan.
#[derive(Clone, Debug)]
enum RelInsn<L> {
    /// For each node of the class in `reg` matching `node`, write its
    /// children into `out..` and continue — the only backtracking point
    /// (identical semantics to the structural `Insn::Bind`).
    Scan { reg: usize, node: L, out: usize },
    /// Continue iff registers `a` and `b` hold the same class
    /// (repeated pattern variable).
    Compare { a: usize, b: usize },
    /// Continue iff the class in `reg` is a member of guard column
    /// `col` (binary search) — the sorted-column intersection step of
    /// the generic join, applied before descending into the child atom.
    Guard { reg: usize, col: usize },
}

/// Sweeps at least this large get a per-sweep [`RelPlan`]:
/// selectivity-ordered scans plus eager guard intersections. Below it
/// (delta sweeps, small shards, tiny graphs) planning itself — column
/// lookups, estimates, O(|column|) merges, span bookkeeping — costs
/// more than the sweep, so the precompiled static plan runs instead.
/// Purely a performance switch: both plans accept exactly the same
/// bindings, so results never depend on the threshold.
pub(crate) const PLANNED_SWEEP_MIN: usize = 32;

/// A [`RelQuery`] instantiated against one e-graph snapshot: the
/// selectivity-ordered instruction list plus the guard columns it
/// binary-searches. Built once per (rule, shard) sweep; `'g` borrows
/// the e-graph's index columns.
pub(crate) struct RelPlan<'g, L> {
    insns: Vec<RelInsn<L>>,
    guards: Vec<GuardCol<'g>>,
    /// Register holding each variable's binding (its first occurrence
    /// in execution order — later occurrences are `Compare`-checked
    /// equal, so any of them would produce the same substitution).
    subst_regs: Vec<(Var, usize)>,
    n_regs: usize,
    /// Some guard is provably empty: no candidate anywhere can match,
    /// so execution is skipped for the whole sweep (visited counts are
    /// unaffected — the funnel still counts every candidate).
    impossible: bool,
}

impl<'g, L: Language> RelPlan<'g, L> {
    /// Instantiate `query` against `egraph` for a sweep of `sweep_len`
    /// candidates. Deterministic: depends only on the e-graph snapshot
    /// and the query, never on thread or shard identity.
    pub(crate) fn build<A: Analysis<L>>(
        query: &RelQuery<L>,
        egraph: &'g EGraph<L, A>,
        sweep_len: usize,
    ) -> RelPlan<'g, L> {
        let _span = spores_telemetry::span!(
            "saturation.search.join_plan",
            atoms = query.atoms.len(),
            sweep = sweep_len,
        );
        let mut guards: Vec<GuardCol<'g>> = Vec::new();
        // Per-atom guard column index and selectivity estimate (root has
        // no guard: its candidates already come from the op-head index).
        let mut atom_guard: Vec<Option<usize>> = vec![None; query.atoms.len()];
        let mut atom_est: Vec<usize> = vec![usize::MAX; query.atoms.len()];
        let mut impossible = false;
        let eager = sweep_len >= PLANNED_SWEEP_MIN;
        for (ix, atom) in query.atoms.iter().enumerate() {
            let Some((p, slot)) = atom.parent else {
                continue;
            };
            let parent = &query.atoms[p];
            let head = egraph.classes_with_op(atom.node.op_key());
            let child_col = egraph.classes_with_op_child(
                parent.node.op_key(),
                parent.node.children().len(),
                slot,
            );
            let mut est = head.len().min(child_col.len());
            let col = if eager && est > 0 {
                let merged = intersect_sorted(head, child_col);
                est = merged.len();
                GuardCol::Owned(merged)
            } else {
                GuardCol::Borrowed(head)
            };
            if est == 0 {
                impossible = true;
            }
            atom_est[ix] = est;
            atom_guard[ix] = Some(guards.len());
            guards.push(col);
        }

        // Emit depth-first from the root, visiting each atom's e-node
        // children in ascending selectivity order. After each `Scan`,
        // repeated variables are `Compare`d and every child atom's
        // guard is checked before any descent — fail-fast on cheap
        // filters.
        let (insns, subst_regs) = emit_plan(
            &query.atoms,
            &query.var_occ,
            query.n_regs,
            Some((&atom_est, &atom_guard)),
        );
        RelPlan {
            insns,
            guards,
            subst_regs,
            n_regs: query.n_regs,
            impossible,
        }
    }

    /// Can any candidate match under this plan? False when a guard
    /// column is empty — the caller may skip executions for the whole
    /// sweep (while still counting candidates as visited).
    pub(crate) fn is_impossible(&self) -> bool {
        self.impossible
    }

    /// Run the plan with `eclass` (canonical) as the candidate root,
    /// appending one [`Subst`] per successful join path to `out`.
    /// Scratch-buffer contract identical to the structural
    /// `Program::run_into`.
    pub(crate) fn run_into<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        eclass: Id,
        regs: &mut Vec<Id>,
        out: &mut Vec<Subst>,
    ) {
        debug_assert!(out.is_empty());
        if self.impossible {
            return;
        }
        regs.clear();
        regs.resize(self.n_regs, eclass);
        exec(
            &self.insns,
            &self.guards,
            &self.subst_regs,
            egraph,
            0,
            regs,
            out,
        );
    }
}

/// The join-plan interpreter, shared by the planned and static paths
/// (the static path passes no guards and its instruction list contains
/// no `Guard` insns).
fn exec<L: Language, A: Analysis<L>>(
    insns: &[RelInsn<L>],
    guards: &[GuardCol<'_>],
    subst_regs: &[(Var, usize)],
    egraph: &EGraph<L, A>,
    pc: usize,
    regs: &mut [Id],
    out: &mut Vec<Subst>,
) {
    let Some(insn) = insns.get(pc) else {
        let mut subst = Subst::default();
        for &(var, reg) in subst_regs {
            subst.insert(var, regs[reg]);
        }
        out.push(subst);
        return;
    };
    match insn {
        RelInsn::Scan { reg, node, out: o } => {
            let class = egraph.class_canonical(regs[*reg]);
            let arity = node.children().len();
            for enode in class.iter() {
                if !node.matches(enode) {
                    continue;
                }
                debug_assert_eq!(enode.children().len(), arity);
                regs[*o..*o + arity].copy_from_slice(enode.children());
                exec(insns, guards, subst_regs, egraph, pc + 1, regs, out);
            }
        }
        RelInsn::Compare { a, b } => {
            if regs[*a] == regs[*b] {
                exec(insns, guards, subst_regs, egraph, pc + 1, regs, out);
            }
        }
        RelInsn::Guard { reg, col } => {
            if guards[*col].as_slice().binary_search(&regs[*reg]).is_ok() {
                exec(insns, guards, subst_regs, egraph, pc + 1, regs, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    type EG = EGraph<Arith, ()>;

    fn add_str(eg: &mut EG, s: &str) -> Id {
        eg.add_expr(&parse_rec_expr(s).unwrap())
    }

    /// From-scratch oracle over the live class nodes.
    fn from_scratch(eg: &EG) -> RelIndex {
        RelIndex::rebuild_from(eg.classes().flat_map(|c| c.nodes.iter()))
    }

    #[test]
    fn columns_reflect_child_positions() {
        let mut eg = EG::default();
        let root = add_str(&mut eg, "(* x (+ y 2))");
        eg.rebuild();
        let mul = Arith::Mul([root, root]).op_key();
        let add = Arith::Add([root, root]).op_key();
        let x = eg.lookup_expr(&parse_rec_expr("x").unwrap()).unwrap();
        let plus = eg.lookup_expr(&parse_rec_expr("(+ y 2)").unwrap()).unwrap();
        assert_eq!(eg.classes_with_op_child(mul, 2, 0), &[x]);
        assert_eq!(eg.classes_with_op_child(mul, 2, 1), &[plus]);
        assert_eq!(eg.classes_with_op_child(add, 2, 1).len(), 1);
        // arity participates in the key: no (mul, 3, _) columns exist
        assert!(eg.classes_with_op_child(mul, 3, 0).is_empty());
        assert_eq!(eg.rel_index(), &from_scratch(&eg));
    }

    #[test]
    fn index_is_searchable_without_rebuild_after_adds() {
        // `add` keeps the graph clean, so the relational index must be
        // correct immediately — a search may run before any rebuild.
        let mut eg = EG::default();
        add_str(&mut eg, "(+ (neg x) y)");
        assert!(eg.is_clean());
        assert_eq!(eg.rel_index(), &from_scratch(&eg));
        // sorted even though children were added before their parents
        // (sorted insert, not append)
        let add = Arith::Add([Id::from(0usize), Id::from(0usize)]).op_key();
        let col = eg.classes_with_op_child(add, 2, 0);
        assert!(col.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn union_rebuild_remaps_columns() {
        let mut eg = EG::default();
        let x = add_str(&mut eg, "x");
        let y = add_str(&mut eg, "y");
        add_str(&mut eg, "(+ x a)");
        add_str(&mut eg, "(+ y b)");
        eg.rebuild();
        let add = Arith::Add([x, y]).op_key();
        assert_eq!(eg.classes_with_op_child(add, 2, 0).len(), 2);
        eg.union(x, y);
        eg.rebuild();
        // the two slot-0 occurrences collapse to one canonical id
        let col = eg.classes_with_op_child(add, 2, 0);
        assert_eq!(col, &[eg.find(x)]);
        assert_eq!(eg.rel_index(), &from_scratch(&eg));
        eg.check_invariants();
    }

    /// Satellite: incremental maintenance equals from-scratch
    /// construction after random interleaved add/union/rebuild
    /// sequences, and `check_invariants` (which embeds the same audit)
    /// stays green throughout.
    #[test]
    fn incremental_equals_from_scratch_under_random_mutation() {
        let mut state = 0x5EED_u64;
        let mut next = move |n: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % n
        };
        for round in 0..20 {
            let mut eg = EG::default();
            let mut ids: Vec<Id> = (0..4)
                .map(|i| eg.add(Arith::Num(i as i64 + round)))
                .collect();
            for step in 0..60 {
                match next(10) {
                    0..=4 => {
                        let a = ids[next(ids.len() as u64) as usize];
                        let b = ids[next(ids.len() as u64) as usize];
                        let node = match next(3) {
                            0 => Arith::Add([a, b]),
                            1 => Arith::Mul([a, b]),
                            _ => Arith::Neg(a),
                        };
                        ids.push(eg.add(node));
                    }
                    5..=6 => {
                        let a = ids[next(ids.len() as u64) as usize];
                        let b = ids[next(ids.len() as u64) as usize];
                        eg.union(a, b);
                    }
                    7 => {
                        ids.push(eg.add(Arith::Num(100 + step)));
                    }
                    _ => {
                        eg.rebuild();
                        assert_eq!(
                            eg.rel_index(),
                            &from_scratch(&eg),
                            "incremental index diverged (round {round}, step {step})"
                        );
                        eg.check_invariants();
                    }
                }
            }
            eg.rebuild();
            assert_eq!(
                eg.rel_index(),
                &from_scratch(&eg),
                "final state, round {round}"
            );
            eg.check_invariants();
        }
    }

    #[test]
    fn empty_guard_short_circuits_but_counts_visits() {
        // Enough `*` classes that the sweep crosses PLANNED_SWEEP_MIN
        // and actually builds a plan (small sweeps run the unguarded
        // static plan, which cannot short-circuit).
        let mut eg = EG::default();
        for i in 0..40 {
            add_str(&mut eg, &format!("(* s{i} s{})", (i + 1) % 40));
        }
        eg.rebuild();
        let n_mul = 40;
        // (* (+ ?a ?b) ?c): `*` classes exist but no `+` node anywhere,
        // so the inner atom's guard is empty and the plan is impossible.
        let p: crate::Pattern<Arith> = "(* (+ ?a ?b) ?c)".parse().unwrap();
        let (matches, visited) = p.search_relational_with_stats(&eg);
        assert!(matches.is_empty());
        let (smatches, svisited) = p.search_with_stats(&eg);
        assert!(smatches.is_empty());
        assert_eq!(visited, svisited, "visited counts identical across modes");
        assert_eq!(visited, n_mul, "every * class counts as visited");
    }

    #[test]
    fn plan_results_match_structural_on_nested_patterns() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(* x (+ y 2))");
        let b = add_str(&mut eg, "(+ (neg x) (* x 2))");
        add_str(&mut eg, "(+ 1 (neg (neg y)))");
        eg.union(a, b);
        eg.rebuild();
        let x = add_str(&mut eg, "x");
        let y = add_str(&mut eg, "y");
        eg.union(x, y);
        eg.rebuild();
        for src in [
            "?a",
            "(+ ?a ?b)",
            "(+ ?a ?a)",
            "(* ?a (+ ?b ?c))",
            "(+ (neg ?a) ?b)",
            "(neg (neg ?a))",
            "(+ 1 ?x)",
            "(* ?a 2)",
            "(+ (neg ?a) (* ?a ?b))",
            "x",
            "7",
        ] {
            let p: crate::Pattern<Arith> = src.parse().unwrap();
            let (rel, rel_visited) = p.search_relational_with_stats(&eg);
            let (structural, s_visited) = p.search_with_stats(&eg);
            assert_eq!(rel_visited, s_visited, "pattern {src}");
            assert_eq!(rel.len(), structural.len(), "pattern {src}");
            for (r, s) in rel.iter().zip(&structural) {
                assert_eq!(r.eclass, s.eclass, "pattern {src}");
                assert_eq!(r.substs, s.substs, "pattern {src}");
            }
        }
    }

    #[test]
    fn planned_and_static_plans_accept_the_same_bindings() {
        // Build a graph with > PLANNED_SWEEP_MIN candidate classes so a
        // full sweep takes the planned (selectivity-ordered, eager
        // guards) path, then compare against per-class sweeps (len 1,
        // always the precompiled static plan).
        let mut eg = EG::default();
        for i in 0..40 {
            add_str(&mut eg, &format!("(+ (neg s{i}) s{})", (i + 1) % 40));
        }
        eg.rebuild();
        let p: crate::Pattern<Arith> = "(+ (neg ?a) ?b)".parse().unwrap();
        let (eager, visited) = p.search_relational_with_stats(&eg);
        assert_eq!(visited, 40);
        let mut lazy = Vec::new();
        for id in eg.class_ids() {
            let bucket = eg.classes_with_op(Arith::Add([id, id]).op_key());
            if !bucket.contains(&id) {
                continue;
            }
            let (m, v) = p.search_ids_with_stats_mode(&eg, &[id], MatchingMode::Relational);
            assert_eq!(v, 1);
            lazy.extend(m);
        }
        assert_eq!(eager.len(), lazy.len());
        for (e, l) in eager.iter().zip(&lazy) {
            assert_eq!(e.eclass, l.eclass);
            assert_eq!(e.substs, l.substs);
        }
    }
}
