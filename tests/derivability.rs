//! The Figure 14 experiment as a regression test: every hand-coded
//! SystemML sum-product rewrite pattern in the corpus must be derivable
//! from the relational rules (via canonical forms, e-graph saturation,
//! or the nnz=0 invariant).

use spores::core::analysis::{MathGraph, MetaAnalysis};
use spores::core::translate::translate_pair;
use spores::core::{canon_of_la, polyterm_isomorphic, VarMeta};
use spores::egraph::{Runner, Scheduler};
use spores::ir::{ExprArena, Symbol};
use spores::systemml::{RewritePattern, Validation, CORPUS};
use std::collections::HashMap;

fn vars_of(p: &RewritePattern) -> HashMap<Symbol, VarMeta> {
    p.vars
        .iter()
        .map(|&(n, r, c, s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
        .collect()
}

fn derivable(p: &RewritePattern) -> bool {
    let mut arena = ExprArena::new();
    let lhs = spores::ir::parse_expr(&mut arena, p.lhs).unwrap();
    let rhs = spores::ir::parse_expr(&mut arena, p.rhs).unwrap();
    let vars = vars_of(p);

    if p.validation == Validation::ZeroInvariant {
        let tr = spores::core::translate(&arena, lhs, &vars).unwrap();
        let mut eg = MathGraph::new(MetaAnalysis::new(tr.ctx.clone()));
        let id = eg.add_expr(&tr.expr);
        eg.rebuild();
        return eg.class(id).data.sparsity == 0.0;
    }

    if let (Ok(a), Ok(b)) = (
        canon_of_la(&arena, lhs, &vars),
        canon_of_la(&arena, rhs, &vars),
    ) {
        if polyterm_isomorphic(&a, &b) {
            return true;
        }
    }
    let tr = translate_pair(&arena, lhs, rhs, &vars).unwrap();
    let runner = Runner::new(MetaAnalysis::new(tr.ctx.clone()))
        .with_expr(&tr.expr)
        .with_scheduler(Scheduler::DepthFirst)
        .with_node_limit(30_000)
        .with_iter_limit(20)
        .run(&spores::core::default_rules());
    let root_class = runner.egraph.class(runner.roots[0]);
    root_class.nodes.iter().any(|n| {
        matches!(n, spores::core::Math::Add([l, r])
            if runner.egraph.find(*l) == runner.egraph.find(*r))
    })
}

#[test]
fn all_figure_14_patterns_derive() {
    let mut failures = Vec::new();
    for p in CORPUS {
        if !derivable(p) {
            failures.push(format!("{}: {} => {}", p.method, p.lhs, p.rhs));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} patterns failed:\n{}",
        failures.len(),
        CORPUS.len(),
        failures.join("\n")
    );
}
