//! The SPORES optimizer as a *service*: a thread-safe front-end that
//! memoizes optimization results behind shape-polymorphic plan
//! fingerprints.
//!
//! The paper's pipeline (§4.3) pays translate → saturate → extract →
//! lower on every statement, but production workloads — SystemML scripts
//! looping over epochs, model-serving fleets compiling the same script
//! per request — re-optimize the *same algebraic shapes* with only leaf
//! dimensions and sparsities drifting. This crate adds the serving layer:
//!
//! * [`OptimizerService`] — a two-tier front-end: warm hits run a
//!   synchronous lock-minimal fast path on the caller's thread (read-
//!   locked cache probe + α-instantiation, never touching the worker
//!   queue); misses coalesce through a striped single-flight table into
//!   a **bounded** worker pool with explicit backpressure. The blocking
//!   [`OptimizerService::optimize`] always succeeds (full queue → the
//!   pipeline runs inline on the caller); the non-blocking
//!   [`OptimizerService::try_optimize`] returns a hit, a pollable
//!   [`Ticket`], or a typed [`ServiceError::Overloaded`] rejection with
//!   a retry-after hint. Hits are re-checked against the cost model so
//!   they are never worse than the caller's own plan.
//! * [`ShardedCache`]/[`CachedPlan`] — the cache: canonical fingerprint →
//!   plan template (α-renamed leaves), with size-polymorphic templates
//!   reusable at any dimensions of the same shape classes and size-pinned
//!   templates keyed by exact shapes. Probes take per-shard *read* locks
//!   and stamp recency with per-shard epoch atomics, so a warm cache
//!   scales with cores instead of serializing on shard mutexes.
//! * [`ServiceStats`] — hits/misses/coalesces/evictions/cost-rejections,
//!   backpressure + contention gauges (queue depth, shard-lock waits,
//!   poisoned shards, worker panics) plus a log₂ latency histogram.

#![forbid(unsafe_code)]

pub mod cache;
pub mod service;
pub mod stats;
pub mod workload;

pub use cache::{CacheEntry, CacheInstruments, CachedPlan, PlanTemplate, ShardedCache};
pub use service::{
    OptimizerService, PlanSource, Request, Served, ServiceConfig, ServiceError, Ticket, TryOptimize,
};
pub use stats::{LatencyHistogram, ServiceStats, StatsSnapshot};
pub use workload::{CachedWorkloadPlan, ServedWorkload, WorkloadRequest};
