//! Tier-1 integration tests for the optimizer service: concurrent
//! correctness under a mixed repeated/fresh request stream, and the
//! warm-path latency win over cold pipeline runs.

use spores::core::{plan_cost, OptimizerConfig, VarMeta};
use spores::ir::{parse_expr, ExprArena, Symbol};
use spores::service::{OptimizerService, PlanSource, Request, ServiceConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn vars(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, VarMeta> {
    list.iter()
        .map(|&(n, (r, c), s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
        .collect()
}

fn request(src: &str, vs: &HashMap<Symbol, VarMeta>) -> Request {
    let mut arena = ExprArena::new();
    let root = parse_expr(&mut arena, src).unwrap();
    Request::new(arena, root, vs.clone())
}

/// The paper's hot statements (§4.2) as service request constructors,
/// parameterized by a size knob so threads can generate both repeated
/// and fresh shapes.
fn workload_request(kind: usize, size: u64) -> Request {
    let (m, n) = (200 + size * 10, 100 + size * 5);
    match kind % 4 {
        // §1 headline / ALS loss
        0 => request(
            "sum((X - u %*% t(v))^2)",
            &vars(&[("X", (m, n), 0.001), ("u", (m, 1), 1.0), ("v", (n, 1), 1.0)]),
        ),
        // ALS residual step
        1 => request(
            "(U %*% t(V) - X) %*% V",
            &vars(&[("X", (m, n), 0.001), ("U", (m, 8), 1.0), ("V", (n, 8), 1.0)]),
        ),
        // PNMF objective term
        2 => request(
            "sum(W %*% H)",
            &vars(&[("W", (m, 8), 1.0), ("H", (8, n), 1.0)]),
        ),
        // MLR inner loop
        _ => request(
            "P * X - P * rowSums(P) * X",
            &vars(&[("P", (m, 1), 1.0), ("X", (m, 1), 0.01)]),
        ),
    }
}

#[test]
fn concurrent_stress_mixed_repeated_and_fresh_shapes() {
    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 12;

    let svc = Arc::new(OptimizerService::new(ServiceConfig {
        optimizer: OptimizerConfig {
            node_limit: 4_000,
            iter_limit: 8,
            ..OptimizerConfig::default()
        },
        workers: 4,
        ..ServiceConfig::default()
    }));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    let kind = (t + i) % 4;
                    // threads repeat a small set of sizes (cache traffic,
                    // coalescing) and sprinkle in fresh ones (misses)
                    let size = if i % 3 == 0 {
                        (t + i) as u64 % 17
                    } else {
                        (i % 2) as u64
                    };
                    let req = workload_request(kind, size);
                    let served = svc.optimize(req.clone()).expect("request served");
                    // every served plan must price no worse than the
                    // caller's own input plan under the caller's metadata
                    let served_cost =
                        plan_cost(&served.arena, served.root, &req.vars).expect("plan prices");
                    let input_cost =
                        plan_cost(&req.arena, req.root, &req.vars).expect("input prices");
                    // 2% = the service's documented cost re-check slack
                    assert!(
                        served_cost <= input_cost * 1.021 + 1e-6,
                        "thread {t} req {i}: served {served_cost} > input {input_cost}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }

    let stats = svc.stats();
    assert_eq!(
        stats.requests() as usize,
        THREADS * REQUESTS_PER_THREAD,
        "{stats:?}"
    );
    assert!(stats.hits > 0, "repeated shapes never hit: {stats:?}");
    assert!(stats.misses > 0, "fresh shapes never missed: {stats:?}");
    // every request's latency was recorded
    assert!(svc.latency_quantile_us(1.0) > 0);
}

#[test]
fn warm_cache_is_much_faster_than_cold_pipeline() {
    let svc = OptimizerService::new(ServiceConfig {
        optimizer: OptimizerConfig {
            node_limit: 8_000,
            iter_limit: 15,
            ..OptimizerConfig::default()
        },
        workers: 2,
        ..ServiceConfig::default()
    });
    let vs = vars(&[
        ("X", (1000, 500), 0.001),
        ("u", (1000, 1), 1.0),
        ("v", (500, 1), 1.0),
    ]);
    let src = "sum((X - u %*% t(v))^2)";

    let t0 = Instant::now();
    let cold = svc.optimize(request(src, &vs)).unwrap();
    let cold_time = t0.elapsed();
    assert_eq!(cold.source, PlanSource::Miss);

    const WARM_ROUNDS: u32 = 10;
    let t0 = Instant::now();
    for _ in 0..WARM_ROUNDS {
        let warm = svc.optimize(request(src, &vs)).unwrap();
        assert_eq!(warm.source, PlanSource::Hit);
    }
    let warm_time = t0.elapsed() / WARM_ROUNDS;

    // the acceptance bar is 10× in the benches; assert a conservative 5×
    // here so CI noise cannot flake the test
    assert!(
        warm_time * 5 < cold_time,
        "warm {warm_time:?} not ≫ cold {cold_time:?}"
    );
}
