//! LA plan execution engine.
//!
//! Stands in for the SystemML runtime: interprets `spores_ir` expression
//! DAGs over `spores_matrix` values with sparse-aware kernels, fused
//! operators (`wsloss`, `mmchain`, `sprop`, `sigmoid`) and deterministic
//! FLOP/allocation accounting for the benchmark tables.

#![forbid(unsafe_code)]

pub mod exec;
pub mod stats;

pub use exec::{ExecConfig, ExecError, Executor};
pub use stats::ExecStats;
