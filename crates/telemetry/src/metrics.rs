//! Metric instruments (counters, gauges, log2 histograms) and the named
//! registry with Prometheus-style text exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of log2 histogram buckets. Bucket `k` covers the value range
/// `[2^k, 2^(k+1))` (bucket 0 additionally holds zero), so 64 buckets
/// span the full `u64` domain.
pub const LOG2_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A histogram over `u64` samples with power-of-two bucket bounds:
/// bucket `k` counts samples in `[2^k, 2^(k+1))`, with zero landing in
/// bucket 0. Constant memory, lock-free recording — the same shape
/// `ServiceStats` used for request latencies, now shared.
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `(lower, upper)` value bounds of bucket `k`.
    pub fn bucket_bounds(k: usize) -> (u64, u64) {
        let lower = if k == 0 { 0 } else { 1u64 << k };
        let upper = if k >= 63 {
            u64::MAX
        } else {
            (1u64 << (k + 1)) - 1
        };
        (lower, upper)
    }

    /// Human-readable bound label for bucket `k`, e.g. `"16..31"`.
    pub fn bucket_label(k: usize) -> String {
        let (lo, hi) = Self::bucket_bounds(k);
        format!("{lo}..{hi}")
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Per-bucket counts.
    pub fn snapshot(&self) -> [u64; LOG2_BUCKETS] {
        std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed))
    }

    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Conservative quantile estimate: the exclusive upper bound
    /// `2^(k+1)` of the bucket containing the `q`-quantile sample
    /// (0 when empty). Matches the historical `ServiceStats` estimate.
    pub fn quantile(&self, q: f64) -> u64 {
        let snap = self.snapshot();
        let total: u64 = snap.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in snap.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if k >= 63 { u64::MAX } else { 1u64 << (k + 1) };
            }
        }
        u64::MAX
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

/// One row of [`Registry::counter_values`]: `(name, labels, value)`.
pub type CounterValue = (String, Vec<(String, String)>, u64);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Log2Histogram>),
}

/// A named collection of instruments. Instrument lookup takes a lock;
/// callers on hot paths fetch their `Arc` handle once and record through
/// it lock-free afterwards (see [`CounterHandle`]).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_labeled(name, &[])
    }

    /// Get or create a counter with labels (e.g. `rule="mul-assoc"`).
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match entry {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics
            .entry(Self::key(name, &[]))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match entry {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Log2Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics
            .entry(Self::key(name, &[]))
            .or_insert_with(|| Metric::Histogram(Arc::new(Log2Histogram::new())));
        match entry {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Sum of a counter's value across all label sets. Zero if the
    /// counter was never registered.
    pub fn counter_sum(&self, name: &str) -> u64 {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// All counter values: `(name, labels, value)` triples, sorted by
    /// name then labels.
    pub fn counter_values(&self) -> Vec<CounterValue> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .filter_map(|(k, m)| match m {
                Metric::Counter(c) => Some((k.name.clone(), k.labels.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Reset every instrument to zero. Entries (and outstanding `Arc`
    /// handles) stay valid — only values are cleared.
    pub fn zero(&self) {
        let metrics = self.metrics.lock().unwrap();
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.zero(),
                Metric::Gauge(g) => g.zero(),
                Metric::Histogram(h) => h.zero(),
            }
        }
    }

    /// Prometheus-style text exposition. Metric names are sanitized
    /// (`.` and `-` become `_`); histograms render cumulative
    /// `_bucket{le="..."}` lines with explicit inclusive upper bounds
    /// (`le="1"`, `le="3"`, `le="7"`, ... — the log2 bucket bounds),
    /// plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::new();
        let mut last_typed: Option<(String, &'static str)> = None;
        for (key, metric) in metrics.iter() {
            let name = sanitize(&key.name);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if last_typed.as_ref() != Some(&(name.clone(), kind)) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_typed = Some((name.clone(), kind));
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&name);
                    render_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&name);
                    render_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let total: u64 = snap.iter().sum();
                    let top = snap.iter().rposition(|&c| c > 0).map_or(0, |k| k + 1);
                    let mut cumulative = 0u64;
                    for (k, &c) in snap.iter().enumerate().take(top) {
                        cumulative += c;
                        let (_, upper) = Log2Histogram::bucket_bounds(k);
                        out.push_str(&format!("{name}_bucket"));
                        render_labels(&mut out, &key.labels, Some(&upper.to_string()));
                        out.push_str(&format!(" {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket"));
                    render_labels(&mut out, &key.labels, Some("+Inf"));
                    out.push_str(&format!(" {total}\n"));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {total}\n"));
                }
            }
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c == '.' || c == '-' { '_' } else { c })
        .collect()
}

fn render_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", sanitize(k), v.replace('"', "\\\"")));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
}

/// A const-constructible static handle to a counter in the **global**
/// registry, for hook sites deep in library code:
///
/// ```
/// static MEMO_HITS: spores_telemetry::CounterHandle =
///     spores_telemetry::CounterHandle::new("exec.memo_hits");
/// MEMO_HITS.add(1);
/// ```
///
/// `add` is gated on [`crate::enabled`] (one relaxed load when off) and
/// resolves the registry entry once, on first enabled use.
pub struct CounterHandle {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl CounterHandle {
    pub const fn new(name: &'static str) -> CounterHandle {
        CounterHandle {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.resolve().add(n);
        }
    }

    /// Current value (0 if never recorded).
    pub fn get(&self) -> u64 {
        self.resolve().get()
    }

    fn resolve(&self) -> &Arc<Counter> {
        self.cell
            .get_or_init(|| crate::global().registry().counter(self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_histogram_buckets_and_quantiles() {
        let h = Log2Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000);
        let snap = h.snapshot();
        assert_eq!(snap[0], 2, "0 and 1 land in bucket 0");
        assert_eq!(snap[1], 2, "2 and 3 land in bucket 1");
        assert_eq!(snap[9], 1, "1000 lands in [512, 1024)");
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.quantile(0.5), 4, "median bucket 1 → upper bound 4");
        assert_eq!(h.quantile(0.99), 1024);
        assert_eq!(Log2Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Log2Histogram::bucket_bounds(9), (512, 1023));
        assert_eq!(Log2Histogram::bucket_label(4), "16..31");
    }

    #[test]
    fn registry_render_text_exposition() {
        let r = Registry::new();
        r.counter("svc.hits").add(3);
        r.counter_labeled("rule.applied", &[("rule", "mul-assoc")])
            .add(2);
        r.counter_labeled("rule.applied", &[("rule", "sum-pull")])
            .add(5);
        r.gauge("svc.evictions").set(7);
        let h = r.histogram("svc.latency_us");
        h.record(1);
        h.record(700);
        let text = r.render_text();
        assert!(
            text.contains("# TYPE svc_hits counter\nsvc_hits 3\n"),
            "{text}"
        );
        assert!(
            text.contains("rule_applied{rule=\"mul-assoc\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("rule_applied{rule=\"sum-pull\"} 5\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE svc_evictions gauge\nsvc_evictions 7\n"),
            "{text}"
        );
        assert!(
            text.contains("svc_latency_us_bucket{le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("svc_latency_us_bucket{le=\"1023\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("svc_latency_us_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("svc_latency_us_sum 701\n"), "{text}");
        assert!(text.contains("svc_latency_us_count 2\n"), "{text}");
        // The `# TYPE` header appears once per metric name, not per label set.
        assert_eq!(text.matches("# TYPE rule_applied counter").count(), 1);
    }

    #[test]
    fn registry_zero_keeps_handles_valid() {
        let r = Registry::new();
        let c = r.counter("a");
        c.add(9);
        let h = r.histogram("b");
        h.record(100);
        r.zero();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.add(1);
        assert_eq!(r.counter("a").get(), 1, "same underlying counter");
        assert_eq!(r.counter_sum("a"), 1);
    }

    #[test]
    fn counter_sum_across_labels() {
        let r = Registry::new();
        r.counter_labeled("x", &[("rule", "a")]).add(2);
        r.counter_labeled("x", &[("rule", "b")]).add(3);
        r.counter("y").add(10);
        assert_eq!(r.counter_sum("x"), 5);
        assert_eq!(r.counter_values().len(), 3);
    }
}
