//! Criterion benchmarks comparing greedy and ILP extraction on the
//! saturated headline expression (the §4.3 trade-off).

use criterion::{criterion_group, criterion_main, Criterion};
use spores_core::analysis::{Context, MathGraph, MetaAnalysis, VarMeta};
use spores_core::{extract_greedy, extract_ilp, parse_math};
use spores_egraph::{Runner, Scheduler};
use std::hint::black_box;

fn saturated() -> (spores_egraph::Id, MathGraph) {
    let ctx = Context::new()
        .with_var("X", VarMeta::sparse(1000, 500, 0.001))
        .with_var("U", VarMeta::dense(1000, 1))
        .with_var("V", VarMeta::dense(500, 1))
        .with_index("i", 1000)
        .with_index("j", 500);
    let expr =
        parse_math("(sum i (sum j (pow (+ (b i j X) (* -1 (* (b i _ U) (b j _ V)))) 2)))").unwrap();
    let runner = Runner::new(MetaAnalysis::new(ctx))
        .with_expr(&expr)
        .with_scheduler(Scheduler::DepthFirst)
        .with_node_limit(10_000)
        .run(&spores_core::default_rules());
    (runner.roots[0], runner.egraph)
}

fn bench_extraction(c: &mut Criterion) {
    let (root, eg) = saturated();
    let mut group = c.benchmark_group("extraction/headline");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| extract_greedy(black_box(&eg), root).unwrap().0);
    });
    group.bench_function("ilp", |b| {
        let solver = spores_ilp::Solver {
            time_limit: std::time::Duration::from_secs(2),
            ..Default::default()
        };
        b.iter(|| extract_ilp(black_box(&eg), root, &solver).unwrap().0);
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
