//! The unified matrix value: dense or CSR, with SystemML-style dynamic
//! representation selection.
//!
//! Operations pick the representation of their result the way SystemML's
//! runtime does: element-wise multiplication with a sparse operand stays
//! sparse, addition densifies beyond a threshold, matrix multiplication
//! with a sparse left operand uses the row-streaming kernel, and
//! zero-preserving maps stay sparse.

use crate::dense::Dense;
use crate::sparse::Csr;

/// Densify sparse results above this fill fraction (SystemML uses 0.4).
const DENSIFY_THRESHOLD: f64 = 0.4;

/// A matrix in either representation.
#[derive(Clone, Debug, PartialEq)]
pub enum Matrix {
    Dense(Dense),
    Sparse(Csr),
}

impl From<Dense> for Matrix {
    fn from(d: Dense) -> Matrix {
        Matrix::Dense(d)
    }
}

impl From<Csr> for Matrix {
    fn from(s: Csr) -> Matrix {
        Matrix::Sparse(s)
    }
}

impl Matrix {
    pub fn scalar(v: f64) -> Matrix {
        Matrix::Dense(Dense::scalar(v))
    }

    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix::Sparse(Csr::zeros(rows, cols))
    }

    pub fn filled(rows: usize, cols: usize, v: f64) -> Matrix {
        if v == 0.0 {
            Matrix::zeros(rows, cols)
        } else {
            Matrix::Dense(Dense::filled(rows, cols, v))
        }
    }

    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.rows,
            Matrix::Sparse(s) => s.rows,
        }
    }

    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.cols,
            Matrix::Sparse(s) => s.cols,
        }
    }

    pub fn is_scalar(&self) -> bool {
        self.rows() == 1 && self.cols() == 1
    }

    pub fn is_sparse(&self) -> bool {
        matches!(self, Matrix::Sparse(_))
    }

    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.nnz(),
            Matrix::Sparse(s) => s.nnz(),
        }
    }

    pub fn sparsity(&self) -> f64 {
        let cells = self.rows() * self.cols();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            Matrix::Dense(d) => d.get(r, c),
            Matrix::Sparse(s) => s.row(r).find(|&(cc, _)| cc == c).map_or(0.0, |(_, v)| v),
        }
    }

    /// Scalar value of a 1×1 matrix.
    pub fn as_scalar(&self) -> f64 {
        assert!(
            self.is_scalar(),
            "not a scalar: {}x{}",
            self.rows(),
            self.cols()
        );
        self.get(0, 0)
    }

    pub fn to_dense(&self) -> Dense {
        match self {
            Matrix::Dense(d) => d.clone(),
            Matrix::Sparse(s) => s.to_dense(),
        }
    }

    fn maybe_sparsify(s: Csr) -> Matrix {
        if s.sparsity() > DENSIFY_THRESHOLD {
            Matrix::Dense(s.to_dense())
        } else {
            Matrix::Sparse(s)
        }
    }

    pub fn transpose(&self) -> Matrix {
        match self {
            Matrix::Dense(d) => Matrix::Dense(d.transpose()),
            Matrix::Sparse(s) => Matrix::Sparse(s.transpose()),
        }
    }

    /// Matrix multiplication with representation-aware kernels.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Sparse(a), Matrix::Dense(b)) => Matrix::Dense(a.matmul_dense(b)),
            (Matrix::Dense(a), Matrix::Sparse(b)) => Matrix::Dense(b.rmatmul_dense(a)),
            (Matrix::Sparse(a), Matrix::Sparse(b)) => {
                // S·S: stream rows of a against rows of b
                let mut triplets = Vec::new();
                for r in 0..a.rows {
                    let mut acc: std::collections::HashMap<usize, f64> =
                        std::collections::HashMap::new();
                    for (k, va) in a.row(r) {
                        for (c, vb) in b.row(k) {
                            *acc.entry(c).or_insert(0.0) += va * vb;
                        }
                    }
                    triplets.extend(acc.into_iter().map(|(c, v)| (r, c, v)));
                }
                Matrix::maybe_sparsify(Csr::from_triplets(a.rows, b.cols, triplets))
            }
            (Matrix::Dense(a), Matrix::Dense(b)) => Matrix::Dense(a.matmul(b)),
        }
    }

    /// Element-wise multiply with broadcasting; sparse-aware.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Sparse(a), b) if compatible_broadcast(self, other) => {
                Matrix::maybe_sparsify(a.mul_elem_dense(&b.to_dense()))
            }
            (a, Matrix::Sparse(b)) if compatible_broadcast(other, self) => {
                Matrix::maybe_sparsify(b.mul_elem_dense(&a.to_dense()))
            }
            (a, b) => Matrix::Dense(a.to_dense().zip(&b.to_dense(), |x, y| x * y)),
        }
    }

    /// Element-wise add with broadcasting.
    pub fn add(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Sparse(a), Matrix::Sparse(b)) if a.rows == b.rows && a.cols == b.cols => {
                Matrix::maybe_sparsify(a.add(b))
            }
            (a, b) => Matrix::Dense(a.to_dense().zip(&b.to_dense(), |x, y| x + y)),
        }
    }

    pub fn sub(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Sparse(a), Matrix::Sparse(b)) if a.rows == b.rows && a.cols == b.cols => {
                Matrix::maybe_sparsify(a.add(&b.scale(-1.0)))
            }
            (a, b) => Matrix::Dense(a.to_dense().zip(&b.to_dense(), |x, y| x - y)),
        }
    }

    pub fn div(&self, other: &Matrix) -> Matrix {
        match self {
            // 0 / y = 0: division preserves the left operand's zeros
            Matrix::Sparse(a) if compatible_broadcast(self, other) => {
                let d = other.to_dense();
                Matrix::maybe_sparsify(a.map_row_col(|r, c, v| v / d.bget(r, c)))
            }
            _ => Matrix::Dense(self.to_dense().zip(&other.to_dense(), |x, y| x / y)),
        }
    }

    /// Element-wise binary op via densification (comparisons, min/max,
    /// pow).
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        Matrix::Dense(self.to_dense().zip(&other.to_dense(), f))
    }

    /// Point-wise map. `zero_preserving` enables the sparse fast path
    /// (caller asserts `f(0) == 0`).
    pub fn map(&self, zero_preserving: bool, f: impl Fn(f64) -> f64) -> Matrix {
        match self {
            Matrix::Sparse(s) if zero_preserving => {
                Matrix::maybe_sparsify(s.map_zero_preserving(f))
            }
            m => Matrix::Dense(m.to_dense().map(f)),
        }
    }

    pub fn scale(&self, k: f64) -> Matrix {
        match self {
            Matrix::Sparse(s) => Matrix::Sparse(s.scale(k)),
            Matrix::Dense(d) => Matrix::Dense(d.map(|v| v * k)),
        }
    }

    pub fn row_sums(&self) -> Matrix {
        Matrix::Dense(match self {
            Matrix::Dense(d) => d.row_sums(),
            Matrix::Sparse(s) => s.row_sums(),
        })
    }

    pub fn col_sums(&self) -> Matrix {
        Matrix::Dense(match self {
            Matrix::Dense(d) => d.col_sums(),
            Matrix::Sparse(s) => s.col_sums(),
        })
    }

    pub fn sum(&self) -> f64 {
        match self {
            Matrix::Dense(d) => d.sum(),
            Matrix::Sparse(s) => s.sum(),
        }
    }

    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.to_dense().approx_eq(&other.to_dense(), tol)
    }
}

/// Can `rhs` broadcast against the (sparse) `lhs` shape for a
/// zero-preserving operation?
fn compatible_broadcast(lhs: &Matrix, rhs: &Matrix) -> bool {
    let (r, c) = (lhs.rows(), lhs.cols());
    let (br, bc) = (rhs.rows(), rhs.cols());
    (br == r || br == 1) && (bc == c || bc == 1)
}

impl Csr {
    /// Position-aware zero-preserving map (used by broadcast division).
    pub fn map_row_col(&self, f: impl Fn(usize, usize, f64) -> f64) -> Csr {
        let mut out = self.clone();
        let mut k = 0;
        for r in 0..self.rows {
            let span = self.indptr[r]..self.indptr[r + 1];
            for idx in span {
                let c = self.indices[idx] as usize;
                out.values[k] = f(r, c, self.values[idx]);
                k += 1;
            }
        }
        out.prune()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse() -> Matrix {
        Matrix::Sparse(Csr::from_triplets(
            3,
            3,
            vec![(0, 1, 2.0), (1, 0, -1.0), (2, 2, 4.0)],
        ))
    }

    fn dense() -> Matrix {
        Matrix::Dense(Dense::new(3, 3, vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]))
    }

    #[test]
    fn mixed_matmul_agrees_with_dense() {
        let s = sparse();
        let d = dense();
        let want = Matrix::Dense(s.to_dense().matmul(&d.to_dense()));
        assert!(s.matmul(&d).approx_eq(&want, 1e-12));
        let want2 = Matrix::Dense(d.to_dense().matmul(&s.to_dense()));
        assert!(d.matmul(&s).approx_eq(&want2, 1e-12));
    }

    #[test]
    fn sparse_sparse_matmul() {
        let s = sparse();
        let got = s.matmul(&s);
        let want = Matrix::Dense(s.to_dense().matmul(&s.to_dense()));
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn elementwise_mul_stays_sparse() {
        let s = sparse();
        let d = dense();
        let got = s.mul(&d);
        assert!(got.is_sparse());
        assert_eq!(got.nnz(), 3);
        let want = Matrix::Dense(s.to_dense().zip(&d.to_dense(), |a, b| a * b));
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn broadcast_scalar_and_vectors() {
        let d = dense();
        let two = Matrix::scalar(2.0);
        assert_eq!(d.mul(&two).get(2, 2), 18.0);
        let col = Matrix::Dense(Dense::new(3, 1, vec![1., 0., 2.]));
        let got = sparse().mul(&col);
        assert_eq!(got.get(1, 0), 0.0);
        assert_eq!(got.get(2, 2), 8.0);
    }

    #[test]
    fn densify_threshold_respected() {
        // adding two half-full sparse matrices crosses the threshold
        let a = Csr::from_triplets(2, 2, vec![(0, 0, 1.), (0, 1, 1.)]);
        let b = Csr::from_triplets(2, 2, vec![(1, 0, 1.), (1, 1, 1.)]);
        let got = Matrix::Sparse(a).add(&Matrix::Sparse(b));
        assert!(!got.is_sparse(), "100% fill must densify");
    }

    #[test]
    fn division_preserves_zeros() {
        let s = sparse();
        let d = dense();
        let got = s.div(&d);
        assert!(got.is_sparse());
        assert_eq!(got.get(0, 0), 0.0);
        assert_eq!(got.get(0, 1), 2.0 / 2.0);
    }

    #[test]
    fn map_zero_preserving_path() {
        let s = sparse();
        let got = s.map(true, |v| v * v);
        assert!(got.is_sparse());
        assert_eq!(got.get(2, 2), 16.0);
        let got = s.map(false, f64::exp);
        assert!(!got.is_sparse());
        assert_eq!(got.get(0, 0), 1.0);
    }

    #[test]
    fn aggregates() {
        let s = sparse();
        assert_eq!(s.sum(), 5.0);
        assert_eq!(s.row_sums().to_dense().data, vec![2., -1., 4.]);
        assert_eq!(s.col_sums().to_dense().data, vec![-1., 2., 4.]);
    }

    #[test]
    fn scalar_accessors() {
        let s = Matrix::scalar(7.5);
        assert!(s.is_scalar());
        assert_eq!(s.as_scalar(), 7.5);
    }

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Matrix::zeros(5, 4).nnz(), 0);
        assert!(Matrix::filled(2, 2, 0.0).is_sparse());
        assert_eq!(Matrix::filled(2, 2, 3.0).sum(), 12.0);
    }
}
