//! A from-scratch equality-saturation engine (e-graphs + rewriting).
//!
//! This crate replaces the `egg` library the SPORES paper built on. It
//! provides:
//!
//! * [`EGraph`] — hash-consed e-classes with deferred congruence closure
//!   ([`EGraph::rebuild`]), following the design of egg.
//! * [`Analysis`] — e-class analyses, the "class invariants" of paper
//!   §3.2 (schema, sparsity, constant folding in `spores-core`).
//! * [`Pattern`] / [`Rewrite`] — s-expression patterns compiled to flat
//!   match programs, op-head-indexed e-matching (only candidate classes
//!   are visited), conditional rewrites.
//! * [`Runner`] — the saturation loop with iteration/node/time limits and
//!   the two match-application strategies of §3.1: depth-first and
//!   sampling.
//! * [`Extractor`] — greedy bottom-up extraction against a pluggable
//!   [`CostFunction`] (ILP extraction lives in `spores-core`, which
//!   encodes Figure 11 onto the `spores-ilp` solver).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod dot;
pub mod egraph;
pub mod extract;
pub mod hash;
pub mod language;
pub mod pattern;
pub mod relational;
pub mod rewrite;
pub mod runner;
pub mod unionfind;

pub use analysis::{Analysis, DidMerge};
pub use egraph::{audit_enabled, set_rebuild_audit, EClass, EGraph};
pub use extract::{AstSize, CostFunction, Extractor};
pub use hash::{FxHashMap, FxHashSet};
pub use language::{parse_rec_expr, Id, Language, OpKey, RecExpr};
pub use pattern::{ENodeOrVar, Pattern, SearchMatches, Subst, Var};
pub use relational::{MatchingMode, RelIndex, SlotKey};
pub use rewrite::{
    check_unique_names, Applier, Condition, ConditionMeta, DeclaredCondition, PatternSide, Rewrite,
    RewriteError,
};
pub use runner::{
    search_rules_parallel, BackoffConfig, Iteration, ParallelConfig, RegionConfig, RuleIterStats,
    Runner, Scheduler, StopReason,
};
pub use unionfind::UnionFind;
