//! E-class analyses ("class invariants" in the paper, §3.2).
//!
//! An [`Analysis`] attaches a data value to every e-class and keeps it
//! consistent under insertion and merging. SPORES uses this for three
//! invariants: the relational *schema* of a class, its *sparsity* estimate
//! (tightened on merge, since equal expressions give independent bounds),
//! and *constant folding*.

use crate::egraph::EGraph;
use crate::language::{Id, Language};
use std::fmt::Debug;

/// Result of merging two analysis values: whether the left/right value
/// changed. Drives re-propagation to parents.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DidMerge(pub bool, pub bool);

impl std::ops::BitOr for DidMerge {
    type Output = DidMerge;
    fn bitor(self, rhs: DidMerge) -> DidMerge {
        DidMerge(self.0 | rhs.0, self.1 | rhs.1)
    }
}

/// Per-class semantic information maintained during saturation.
pub trait Analysis<L: Language>: Sized {
    /// The invariant value stored on each e-class.
    type Data: Debug + Clone;

    /// Compute the value for a newly inserted e-node from its children's
    /// values (accessible through `egraph`).
    fn make(egraph: &EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Combine the values of two merged classes into `a`.
    fn merge(&mut self, a: &mut Self::Data, b: Self::Data) -> DidMerge;

    /// Hook run after a class is created or its data changes; may add
    /// nodes/unions (used for constant folding).
    fn modify(_egraph: &mut EGraph<L, Self>, _id: Id) {}
}

/// The trivial analysis: no data.
impl<L: Language> Analysis<L> for () {
    type Data = ();

    fn make(_egraph: &EGraph<L, Self>, _enode: &L) -> Self::Data {}

    fn merge(&mut self, _a: &mut Self::Data, _b: Self::Data) -> DidMerge {
        DidMerge(false, false)
    }
}

/// Helper for merging `Option<T>` data where `Some` beats `None` and two
/// `Some`s are reconciled by `f`.
pub fn merge_option<T>(
    a: &mut Option<T>,
    b: Option<T>,
    f: impl FnOnce(&mut T, T) -> DidMerge,
) -> DidMerge {
    match (a.as_mut(), b) {
        (None, None) => DidMerge(false, false),
        (None, b @ Some(_)) => {
            *a = b;
            DidMerge(true, false)
        }
        (Some(_), None) => DidMerge(false, true),
        (Some(a), Some(b)) => f(a, b),
    }
}

/// Merge by taking the maximum (returns which side changed).
pub fn merge_max<T: PartialOrd>(a: &mut T, b: T) -> DidMerge {
    if *a < b {
        *a = b;
        DidMerge(true, false)
    } else if b < *a {
        DidMerge(false, true)
    } else {
        DidMerge(false, false)
    }
}

/// Merge by taking the minimum (returns which side changed).
pub fn merge_min<T: PartialOrd>(a: &mut T, b: T) -> DidMerge {
    if b < *a {
        *a = b;
        DidMerge(true, false)
    } else if *a < b {
        DidMerge(false, true)
    } else {
        DidMerge(false, false)
    }
}
