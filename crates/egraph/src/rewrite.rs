//! Rewrite rules: a searcher pattern, an applier, and optional conditions.
//!
//! Conditions implement the paper's schema-guarded rules (§3.2): e.g. rule
//! 3 of Figure 3 only applies when index `i` is not in the schema of the
//! matched sub-expression, which a plain syntactic pattern cannot express.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language};
use crate::pattern::{Pattern, SearchMatches, Subst};
use std::fmt;
use std::sync::Arc;

/// A side condition evaluated against the matched class and substitution.
pub type Condition<L, A> = dyn Fn(&EGraph<L, A>, Id, &Subst) -> bool + Send + Sync;

/// Something that can produce new ids to union with a matched class.
pub trait Applier<L: Language, A: Analysis<L>>: Send + Sync {
    /// Instantiate for one match; return the ids to union with `eclass`.
    fn apply_one(&self, egraph: &mut EGraph<L, A>, eclass: Id, subst: &Subst) -> Vec<Id>;

    /// For diagnostics.
    fn describe(&self) -> String {
        "<dynamic applier>".to_owned()
    }
}

impl<L: Language + Send + Sync, A: Analysis<L>> Applier<L, A> for Pattern<L> {
    fn apply_one(&self, egraph: &mut EGraph<L, A>, _eclass: Id, subst: &Subst) -> Vec<Id> {
        vec![self.apply(egraph, subst)]
    }

    fn describe(&self) -> String {
        self.to_string()
    }
}

/// A named rewrite rule.
pub struct Rewrite<L: Language, A: Analysis<L>> {
    pub name: String,
    pub searcher: Pattern<L>,
    pub applier: Arc<dyn Applier<L, A>>,
    pub conditions: Vec<Arc<Condition<L, A>>>,
}

impl<L: Language, A: Analysis<L>> Clone for Rewrite<L, A> {
    fn clone(&self) -> Self {
        Rewrite {
            name: self.name.clone(),
            searcher: self.searcher.clone(),
            applier: Arc::clone(&self.applier),
            conditions: self.conditions.clone(),
        }
    }
}

impl<L: Language, A: Analysis<L>> fmt::Debug for Rewrite<L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} => {}",
            self.name,
            self.searcher,
            self.applier.describe()
        )
    }
}

impl<L: Language + Send + Sync + 'static, A: Analysis<L>> Rewrite<L, A> {
    /// Build a `lhs => rhs` rule from pattern strings.
    pub fn new(name: impl Into<String>, lhs: &str, rhs: &str) -> Result<Self, String> {
        let name = name.into();
        let searcher: Pattern<L> = lhs.parse().map_err(|e| format!("rule {name}, lhs: {e}"))?;
        let applier: Pattern<L> = rhs.parse().map_err(|e| format!("rule {name}, rhs: {e}"))?;
        // every rhs variable must be bound by the lhs
        let lhs_vars = searcher.vars();
        for v in applier.vars() {
            if !lhs_vars.contains(&v) {
                return Err(format!("rule {name}: rhs variable {v} not bound by lhs"));
            }
        }
        Ok(Rewrite {
            name,
            searcher,
            applier: Arc::new(applier),
            conditions: Vec::new(),
        })
    }

    /// Add a side condition; the rule only fires when it returns true.
    pub fn with_condition(
        mut self,
        cond: impl Fn(&EGraph<L, A>, Id, &Subst) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.conditions.push(Arc::new(cond));
        self
    }

    /// Replace the applier with a dynamic one (for rules that must compute
    /// their output rather than instantiate a pattern).
    pub fn with_applier(mut self, applier: impl Applier<L, A> + 'static) -> Self {
        self.applier = Arc::new(applier);
        self
    }
}

impl<L: Language, A: Analysis<L>> Rewrite<L, A> {
    /// Search the whole e-graph for matches of this rule's lhs.
    pub fn search(&self, egraph: &EGraph<L, A>) -> Vec<SearchMatches> {
        self.searcher.search(egraph)
    }

    /// Search, also reporting how many candidate classes the op-head
    /// index proposed for this rule's lhs (for scheduler statistics).
    pub fn search_with_stats(&self, egraph: &EGraph<L, A>) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_with_stats(egraph)
    }

    /// Delta search: only candidate classes in `dirty` are visited.
    /// See [`Pattern::search_delta_with_stats`].
    pub fn search_delta_with_stats(
        &self,
        egraph: &EGraph<L, A>,
        dirty: &crate::hash::FxHashSet<Id>,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_delta_with_stats(egraph, dirty)
    }

    /// Full sweep minus the classes in `excluded` (frozen regions).
    /// See [`Pattern::search_except_with_stats`].
    pub fn search_except_with_stats(
        &self,
        egraph: &EGraph<L, A>,
        excluded: &crate::hash::FxHashSet<Id>,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_except_with_stats(egraph, excluded)
    }

    /// The candidate list a delta search of this rule visits.
    /// See [`Pattern::delta_candidate_ids`].
    pub fn delta_candidate_ids(&self, egraph: &EGraph<L, A>, dirty_sorted: &[Id]) -> Vec<Id> {
        self.searcher.delta_candidate_ids(egraph, dirty_sorted)
    }

    /// The candidate list a frozen-filtered full sweep of this rule
    /// visits. See [`Pattern::except_candidate_ids`].
    pub fn except_candidate_ids(
        &self,
        egraph: &EGraph<L, A>,
        excluded: &crate::hash::FxHashSet<Id>,
    ) -> Vec<Id> {
        self.searcher.except_candidate_ids(egraph, excluded)
    }

    /// Run this rule's compiled matcher over an explicit candidate id
    /// list (one search shard). See [`Pattern::search_ids_with_stats`].
    pub fn search_ids_with_stats(
        &self,
        egraph: &EGraph<L, A>,
        ids: &[Id],
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_ids_with_stats(egraph, ids)
    }

    /// Like [`Rewrite::search_ids_with_stats`], with an explicit
    /// e-matching backend. See [`Pattern::search_ids_with_stats_mode`].
    pub fn search_ids_with_stats_mode(
        &self,
        egraph: &EGraph<L, A>,
        ids: &[Id],
        mode: crate::relational::MatchingMode,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_ids_with_stats_mode(egraph, ids, mode)
    }

    /// Full sweep on the relational (generic-join) backend.
    /// See [`Pattern::search_relational_with_stats`].
    pub fn search_relational_with_stats(
        &self,
        egraph: &EGraph<L, A>,
    ) -> (Vec<SearchMatches>, usize) {
        self.searcher.search_relational_with_stats(egraph)
    }

    /// Apply this rule to one (class, subst) match. Returns the number of
    /// unions actually performed.
    pub fn apply_match(&self, egraph: &mut EGraph<L, A>, eclass: Id, subst: &Subst) -> usize {
        for cond in &self.conditions {
            if !cond(egraph, eclass, subst) {
                return 0;
            }
        }
        let ids = self.applier.apply_one(egraph, eclass, subst);
        let mut unions = 0;
        for id in ids {
            let (_, changed) = egraph.union(eclass, id);
            unions += usize::from(changed);
        }
        unions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    type EG = EGraph<Arith, ()>;

    #[test]
    fn rule_applies_and_unions() {
        let mut eg = EG::default();
        let root = eg.add_expr(&parse_rec_expr("(+ x y)").unwrap());
        eg.rebuild();
        let rule: Rewrite<Arith, ()> = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
        let matches = rule.search(&eg);
        assert_eq!(matches.len(), 1);
        let unions = rule.apply_match(&mut eg, matches[0].eclass, &matches[0].substs[0]);
        assert_eq!(unions, 1);
        eg.rebuild();
        let flipped = parse_rec_expr::<Arith>("(+ y x)").unwrap();
        assert_eq!(eg.lookup_expr(&flipped), Some(eg.find(root)));
    }

    #[test]
    fn unbound_rhs_var_rejected() {
        let r: Result<Rewrite<Arith, ()>, _> = Rewrite::new("bad", "(+ ?a ?b)", "(+ ?a ?c)");
        assert!(r.is_err());
    }

    #[test]
    fn condition_blocks_application() {
        let mut eg = EG::default();
        eg.add_expr(&parse_rec_expr("(+ x y)").unwrap());
        eg.rebuild();
        let rule: Rewrite<Arith, ()> = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")
            .unwrap()
            .with_condition(|_, _, _| false);
        let matches = rule.search(&eg);
        let unions = rule.apply_match(&mut eg, matches[0].eclass, &matches[0].substs[0]);
        assert_eq!(unions, 0);
    }

    #[test]
    fn reapplying_is_idempotent() {
        let mut eg = EG::default();
        eg.add_expr(&parse_rec_expr("(+ x y)").unwrap());
        eg.rebuild();
        let rule: Rewrite<Arith, ()> = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
        for _ in 0..3 {
            let matches = rule.search(&eg);
            for m in matches {
                for s in &m.substs {
                    rule.apply_match(&mut eg, m.eclass, s);
                }
            }
            eg.rebuild();
        }
        // (+ x y) and (+ y x) in one class; x, y separate: 3 classes
        assert_eq!(eg.number_of_classes(), 3);
        assert_eq!(eg.total_number_of_nodes(), 4);
    }
}
