//! Chrome trace-event export, a schema checker for the emitted JSON,
//! and span aggregation for phase breakdowns.

use crate::journal::{ArgValue, Event, EventKind};
use crate::json::{escape_into, parse_json, Json};
use std::collections::BTreeMap;
use std::time::Duration;

/// Serialize journal events as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
/// <https://ui.perfetto.dev>. Begin/End events map to `ph: "B"`/`"E"`,
/// marks to instant events (`ph: "i"`); timestamps are microseconds
/// since the journal epoch.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_into(&mut out, &e.name);
        out.push_str(",\"cat\":\"spores\",\"ph\":\"");
        out.push_str(match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Mark => "i",
        });
        out.push_str(&format!(
            "\",\"ts\":{},\"pid\":1,\"tid\":{}",
            e.ts_us, e.tid
        ));
        if e.kind == EventKind::Mark {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                escape_into(&mut out, k);
                out.push(':');
                match v {
                    ArgValue::Int(n) => out.push_str(&n.to_string()),
                    ArgValue::UInt(n) => out.push_str(&n.to_string()),
                    ArgValue::Float(f) if f.is_finite() => out.push_str(&format!("{f}")),
                    ArgValue::Float(_) => out.push_str("null"),
                    ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                    ArgValue::Str(s) => escape_into(&mut out, s),
                }
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// What [`validate_chrome_trace`] learned about a well-formed trace.
#[derive(Debug, Default)]
pub struct TraceCheck {
    /// Total trace events.
    pub events: usize,
    /// Completed spans (matched B/E pairs plus `X` events) per name.
    pub span_counts: BTreeMap<String, u64>,
}

impl TraceCheck {
    /// Completed spans named `name`.
    pub fn spans(&self, name: &str) -> u64 {
        self.span_counts.get(name).copied().unwrap_or(0)
    }
}

/// Schema-check a Chrome trace-event JSON document: a `traceEvents`
/// array whose entries carry `name`/`ph`/`ts`/`pid`/`tid`, with
/// balanced and properly nested B/E events per thread (E must close the
/// innermost open B of the same name), non-decreasing timestamps per
/// thread, and `dur` present on `X` events. This is what CI runs
/// against `profile_workload --trace-out` artifacts.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing 'traceEvents' key")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;
    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    // Per-(pid, tid) open-span stack; per-(pid, tid) last timestamp.
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let obj = event.as_obj().ok_or(format!("event {i}: not an object"))?;
        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string 'name'"))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string 'ph'"))?;
        // Metadata events carry no timeline position; skip the rest.
        if ph == "M" {
            continue;
        }
        let ts = obj
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing numeric 'ts'"))?;
        let pid = obj
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing numeric 'pid'"))? as u64;
        let tid = obj
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing numeric 'tid'"))? as u64;
        let lane = (pid, tid);
        if let Some(&prev) = last_ts.get(&lane) {
            if ts < prev {
                return Err(format!(
                    "event {i} ('{name}'): ts {ts} goes backwards on tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(lane, ts);
        match ph {
            "B" => stacks.entry(lane).or_default().push(name.to_string()),
            "E" => {
                let open = stacks.entry(lane).or_default().pop().ok_or(format!(
                    "event {i}: 'E' for '{name}' with no open span on tid {tid}"
                ))?;
                if open != name {
                    return Err(format!(
                        "event {i}: 'E' for '{name}' but innermost open span on tid {tid} is '{open}'"
                    ));
                }
                *check.span_counts.entry(open).or_default() += 1;
            }
            "X" => {
                obj.get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: 'X' event missing numeric 'dur'"))?;
                *check.span_counts.entry(name.to_string()).or_default() += 1;
            }
            "i" | "I" => {}
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unbalanced trace: span '{open}' on pid {pid} tid {tid} never closed ({} open)",
                stack.len()
            ));
        }
    }
    Ok(check)
}

/// Aggregated wall time per span name, from [`span_durations`].
#[derive(Debug, Default)]
pub struct SpanTotals {
    totals: BTreeMap<String, (Duration, u64)>,
}

impl SpanTotals {
    /// Total wall time across completed spans named `name`.
    pub fn total(&self, name: &str) -> Duration {
        self.totals.get(name).map(|(d, _)| *d).unwrap_or_default()
    }

    /// Number of completed spans named `name`.
    pub fn count(&self, name: &str) -> u64 {
        self.totals.get(name).map_or(0, |(_, c)| *c)
    }

    /// `(name, total, count)` rows, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration, u64)> {
        self.totals.iter().map(|(n, (d, c))| (n.as_str(), *d, *c))
    }
}

/// Fold a drained journal into per-name span totals by replaying each
/// thread's begin/end stack. Unclosed spans are ignored.
pub fn span_durations(events: &[Event]) -> SpanTotals {
    let mut stacks: BTreeMap<u64, Vec<(&str, u64)>> = BTreeMap::new();
    let mut totals = SpanTotals::default();
    for e in events {
        match e.kind {
            EventKind::Begin => stacks.entry(e.tid).or_default().push((&e.name, e.ts_us)),
            EventKind::End => {
                if let Some((name, begin_ts)) = stacks.entry(e.tid).or_default().pop() {
                    let entry = totals.totals.entry(name.to_string()).or_default();
                    entry.0 += Duration::from_micros(e.ts_us.saturating_sub(begin_ts));
                    entry.1 += 1;
                }
            }
            EventKind::Mark => {}
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(name: &'static str, kind: EventKind, ts_us: u64, seq: u64, tid: u64) -> Event {
        Event {
            name: Cow::Borrowed(name),
            kind,
            ts_us,
            seq,
            tid,
            args: Vec::new(),
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev("outer", EventKind::Begin, 0, 0, 1),
            ev("inner", EventKind::Begin, 10, 1, 1),
            ev("other-thread", EventKind::Begin, 12, 2, 2),
            ev("mark", EventKind::Mark, 15, 3, 1),
            ev("inner", EventKind::End, 30, 4, 1),
            ev("other-thread", EventKind::End, 35, 5, 2),
            ev("outer", EventKind::End, 50, 6, 1),
        ]
    }

    #[test]
    fn export_roundtrips_through_validator() {
        let mut events = sample_events();
        events[0].args = vec![
            ("iter", ArgValue::UInt(3)),
            ("tag", ArgValue::Str("a\"b".into())),
        ];
        let json = chrome_trace_json(&events);
        let check = validate_chrome_trace(&json).unwrap();
        assert_eq!(check.events, 7);
        assert_eq!(check.spans("outer"), 1);
        assert_eq!(check.spans("inner"), 1);
        assert_eq!(check.spans("other-thread"), 1);
        assert_eq!(check.spans("mark"), 0, "instant events are not spans");
    }

    #[test]
    fn validator_rejects_unbalanced_and_misnested() {
        // Unclosed span.
        let json = chrome_trace_json(&[ev("open", EventKind::Begin, 0, 0, 1)]);
        assert!(validate_chrome_trace(&json)
            .unwrap_err()
            .contains("never closed"));
        // End with nothing open.
        let json = chrome_trace_json(&[ev("stray", EventKind::End, 0, 0, 1)]);
        assert!(validate_chrome_trace(&json)
            .unwrap_err()
            .contains("no open span"));
        // Misnested names.
        let json = chrome_trace_json(&[
            ev("a", EventKind::Begin, 0, 0, 1),
            ev("b", EventKind::Begin, 1, 1, 1),
            ev("a", EventKind::End, 2, 2, 1),
        ]);
        assert!(validate_chrome_trace(&json)
            .unwrap_err()
            .contains("innermost"));
        // Backwards timestamps on one thread.
        let json = chrome_trace_json(&[
            ev("a", EventKind::Begin, 10, 0, 1),
            ev("a", EventKind::End, 5, 1, 1),
        ]);
        assert!(validate_chrome_trace(&json)
            .unwrap_err()
            .contains("backwards"));
        // Structurally broken documents.
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn span_durations_folds_nested_spans() {
        let totals = span_durations(&sample_events());
        assert_eq!(totals.total("outer"), Duration::from_micros(50));
        assert_eq!(totals.total("inner"), Duration::from_micros(20));
        assert_eq!(totals.total("other-thread"), Duration::from_micros(23));
        assert_eq!(totals.count("outer"), 1);
        assert_eq!(totals.count("missing"), 0);
        assert_eq!(totals.iter().count(), 3);
    }
}
