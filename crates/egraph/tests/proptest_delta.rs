//! Differential property test for dirty-class delta e-matching.
//!
//! `naive_search` stays the oracle: over a sequence of "iterations"
//! (random rule applications, random unions, rebuilds), the delta search
//! restricted to the e-graph's dirty set must find exactly the matches
//! full indexed search finds, minus matches already reported before the
//! round's mutations (modulo id canonicalization). Concretely, after
//! every round:
//!
//! * `search_delta` ⊆ `search` ⊆ `naive_search` (all equal per class), and
//! * every full-search match missing from the delta results is *old*:
//!   canonicalizing the previous round's matches through the union-find
//!   yields it.
//!
//! Together these say delta search loses nothing: anything new since the
//! last iteration has a dirty root.

use proptest::prelude::*;
use spores_egraph::{EGraph, Id, Language, Pattern, Rewrite, Var};
use std::collections::HashSet;

/// Tiny arithmetic language (mirrors `proptest_invariants.rs`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Node {
    Add([Id; 2]),
    Neg(Id),
    Leaf(u8),
}

impl Language for Node {
    fn children(&self) -> &[Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_ref(c),
            Node::Leaf(_) => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            Node::Add(c) => c,
            Node::Neg(c) => std::slice::from_mut(c),
            Node::Leaf(_) => &mut [],
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (Node::Add(_), Node::Add(_)) => true,
            (Node::Neg(_), Node::Neg(_)) => true,
            (Node::Leaf(a), Node::Leaf(b)) => a == b,
            _ => false,
        }
    }

    fn op_display(&self) -> String {
        match self {
            Node::Add(_) => "+".into(),
            Node::Neg(_) => "neg".into(),
            Node::Leaf(v) => v.to_string(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        match (op, children.len()) {
            ("+", 2) => Ok(Node::Add([children[0], children[1]])),
            ("neg", 1) => Ok(Node::Neg(children[0])),
            (s, 0) => s.parse::<u8>().map(Node::Leaf).map_err(|e| e.to_string()),
            _ => Err("bad arity".into()),
        }
    }
}

/// Construction script: grow an expression bottom-up.
#[derive(Clone, Debug)]
enum Step {
    Leaf(u8),
    Add(usize, usize),
    Neg(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..5).prop_map(Step::Leaf),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
            any::<usize>().prop_map(Step::Neg),
        ],
        1..30,
    )
}

/// One mutation round between searches: a random subset of rules applied
/// to a random slice of their matches, plus random direct unions.
#[derive(Clone, Debug)]
struct Round {
    /// Bitmask over `rules()` — which rules fire this round.
    rule_mask: u8,
    /// Per-rule cap on how many (class, subst) instances get applied.
    apply_cap: usize,
    /// Random union endpoints (indices into the built id list).
    unions: Vec<(usize, usize)>,
}

fn rounds() -> impl Strategy<Value = Vec<Round>> {
    prop::collection::vec(
        (
            any::<u8>(),
            1usize..4,
            prop::collection::vec((any::<usize>(), any::<usize>()), 0..3),
        )
            .prop_map(|(rule_mask, apply_cap, unions)| Round {
                rule_mask,
                apply_cap,
                unions,
            }),
        1..6,
    )
}

fn rules() -> Vec<Rewrite<Node, ()>> {
    vec![
        Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
        Rewrite::new("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
        Rewrite::new("neg-neg", "(neg (neg ?a))", "?a").unwrap(),
        Rewrite::new("add-self-neg", "(+ ?a ?a)", "(neg (neg (+ ?a ?a)))").unwrap(),
    ]
}

fn patterns() -> Vec<Pattern<Node>> {
    [
        "?a",
        "(+ ?a ?b)",
        "(+ ?a ?a)",
        "(neg ?a)",
        "(neg (neg ?a))",
        "(+ (neg ?a) ?b)",
        "(+ ?a (+ ?b ?c))",
        "(+ 1 ?x)",
        "2",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

/// A match set in comparable form: (class, sorted substitution) pairs.
type MatchSet = HashSet<(Id, Vec<(Var, Id)>)>;

fn match_set(matches: &[spores_egraph::SearchMatches]) -> MatchSet {
    let mut out = MatchSet::default();
    for m in matches {
        for s in &m.substs {
            let mut subst: Vec<(Var, Id)> = s.iter().collect();
            subst.sort();
            out.insert((m.eclass, subst));
        }
    }
    out
}

/// Canonicalize a previously-recorded match set through the union-find.
fn canonicalize(set: &MatchSet, eg: &EGraph<Node, ()>) -> MatchSet {
    set.iter()
        .map(|(class, subst)| {
            let mut subst: Vec<(Var, Id)> = subst.iter().map(|&(v, id)| (v, eg.find(id))).collect();
            subst.sort();
            (eg.find(*class), subst)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_search_finds_exactly_the_new_matches(
        script in steps(),
        rounds in rounds(),
    ) {
        let mut eg: EGraph<Node, ()> = EGraph::default();
        let mut ids: Vec<Id> = Vec::new();
        for step in &script {
            let id = match *step {
                Step::Leaf(v) => eg.add(Node::Leaf(v)),
                Step::Add(a, b) if !ids.is_empty() => {
                    eg.add(Node::Add([ids[a % ids.len()], ids[b % ids.len()]]))
                }
                Step::Neg(a) if !ids.is_empty() => eg.add(Node::Neg(ids[a % ids.len()])),
                _ => eg.add(Node::Leaf(0)),
            };
            ids.push(id);
        }
        eg.rebuild();
        eg.check_invariants();

        let patterns = patterns();
        let rules = rules();

        // Round 0 baseline: the full sweep (the runner's "dirty set
        // seeded with all classes"), after which the dirty set is taken.
        let mut previous: Vec<MatchSet> = patterns
            .iter()
            .map(|p| match_set(&p.search(&eg)))
            .collect();
        eg.take_dirty();

        for round in &rounds {
            // --- mutate: rule applications + random unions ----------
            // (search everything first, apply after: matching needs a
            // clean graph, like the runner's search/apply phases)
            let selected: Vec<(usize, Vec<spores_egraph::SearchMatches>)> = rules
                .iter()
                .enumerate()
                .filter(|(ri, _)| round.rule_mask & (1 << ri) != 0)
                .map(|(ri, rule)| (ri, rule.search(&eg)))
                .collect();
            for (ri, matches) in selected {
                let rule = &rules[ri];
                let mut applied = 0;
                'outer: for m in &matches {
                    for s in &m.substs {
                        if applied >= round.apply_cap {
                            break 'outer;
                        }
                        rule.apply_match(&mut eg, m.eclass, s);
                        applied += 1;
                    }
                }
            }
            for &(a, b) in &round.unions {
                let a = ids[a % ids.len()];
                let b = ids[b % ids.len()];
                eg.union(a, b);
            }
            eg.rebuild();
            eg.check_invariants();

            // --- differential: delta vs full vs naive ---------------
            let dirty = eg.dirty_classes().clone();
            for (pi, p) in patterns.iter().enumerate() {
                let full = match_set(&p.search(&eg));
                let naive = match_set(&p.naive_search(&eg));
                prop_assert_eq!(&full, &naive, "indexed != naive for {}", p);

                let (delta_matches, visited) = p.search_delta_with_stats(&eg, &dirty);
                let delta = match_set(&delta_matches);
                prop_assert!(visited <= dirty.len().max(eg.number_of_classes()));

                // delta results are genuine matches
                for m in &delta {
                    prop_assert!(full.contains(m), "delta found non-match for {}", p);
                }
                // anything delta skipped was already known before the round
                let old = canonicalize(&previous[pi], &eg);
                for m in &full {
                    prop_assert!(
                        delta.contains(m) || old.contains(m),
                        "pattern {}: new match {:?} missed by delta search",
                        p,
                        m
                    );
                }
                previous[pi] = full;
            }
            eg.take_dirty();
        }
    }
}
