//! Dense and CSR sparse matrix kernels + synthetic data generators.
//!
//! This crate is the execution substrate standing in for SystemML's
//! matrix runtime (DESIGN.md, substitution table): row-major dense
//! matrices, CSR sparse matrices with sparsity-exploiting kernels, a
//! unified [`Matrix`] value with SystemML-style representation selection,
//! and the synthetic generators behind every benchmark table.

#![forbid(unsafe_code)]

pub mod dense;
pub mod gen;
pub mod matrix;
pub mod sparse;

pub use dense::Dense;
pub use matrix::Matrix;
pub use sparse::Csr;
