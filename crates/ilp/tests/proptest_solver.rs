//! Property tests: the branch & bound solver agrees with exhaustive
//! enumeration on random small instances, and its solutions always
//! satisfy the constraints.

use proptest::prelude::*;
use spores_ilp::{solver::brute_force, Lit, Problem, SolveResult, Solver};

#[derive(Clone, Debug)]
struct Instance {
    costs: Vec<u8>,
    clauses: Vec<Vec<(usize, bool)>>,
}

fn instances() -> impl Strategy<Value = Instance> {
    (1usize..=9).prop_flat_map(|n| {
        let clauses =
            prop::collection::vec(prop::collection::vec((0..n, any::<bool>()), 1..=3), 0..=10);
        let costs = prop::collection::vec(0u8..50, n..=n);
        (costs, clauses).prop_map(|(costs, clauses)| Instance { costs, clauses })
    })
}

fn build(inst: &Instance) -> Problem {
    let mut p = Problem::new();
    for &c in &inst.costs {
        p.add_var(c as f64);
    }
    for clause in &inst.clauses {
        let lits = clause
            .iter()
            .map(|&(v, pos)| {
                if pos {
                    Lit::pos(v as u32)
                } else {
                    Lit::neg(v as u32)
                }
            })
            .collect();
        p.add_clause(lits);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_brute_force(inst in instances()) {
        let p = build(&inst);
        let got = Solver::default().solve(&p);
        let want = brute_force(&p);
        match (got, want) {
            (SolveResult::Optimal(s), Some(best)) => {
                prop_assert!(p.check(&s.assignment), "returned infeasible assignment");
                prop_assert!((s.cost - best.cost).abs() < 1e-9,
                    "got {} want {}", s.cost, best.cost);
            }
            (SolveResult::Infeasible, None) => {}
            (got, want) => prop_assert!(false, "mismatch: {got:?} vs {want:?}"),
        }
    }

    #[test]
    fn extraction_shaped_instances(n_classes in 2usize..6, seed in any::<u64>()) {
        // AND-OR shaped instances like Figure 11 produces
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut p = Problem::new();
        let classes: Vec<u32> = (0..n_classes).map(|_| p.add_var(0.0)).collect();
        let mut ops_of: Vec<Vec<u32>> = vec![vec![]; n_classes];
        for (ci, _) in classes.iter().enumerate() {
            for _ in 0..rng.random_range(1..=2usize) {
                let op = p.add_var(rng.random_range(1..20u32) as f64);
                ops_of[ci].push(op);
                // children only among later classes → acyclic
                for &class in classes.iter().skip(ci + 1) {
                    if rng.random_bool(0.4) {
                        p.imply(op, class);
                    }
                }
            }
        }
        for (ci, ops) in ops_of.iter().enumerate() {
            p.imply_any(classes[ci], ops);
        }
        p.require(classes[0]);
        let got = Solver::default().solve(&p);
        let want = brute_force(&p);
        match (got, want) {
            (SolveResult::Optimal(s), Some(best)) => {
                prop_assert!((s.cost - best.cost).abs() < 1e-9);
            }
            (SolveResult::Infeasible, None) => {}
            (got, want) => prop_assert!(false, "mismatch: {got:?} vs {want:?}"),
        }
    }
}
