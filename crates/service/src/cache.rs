//! Sharded LRU plan cache keyed by canonical fingerprints.
//!
//! The cache maps a [`Fingerprint`]'s canonical form to a small set of
//! *variants*: one size-polymorphic template (valid for any concrete
//! dimensions of the same shape classes) and/or several size-pinned
//! templates (plans whose lowering embedded concrete dimension constants,
//! keyed by the exact per-slot shapes they were optimized for). Lookups
//! take one shard mutex, chosen by the fingerprint hash, so concurrent
//! requests for different shapes rarely contend.

use spores_core::PhaseTimings;
use spores_ir::{ExprArena, Fingerprint, NodeId, Shape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// An optimized plan over α-slot leaves (`$0`, `$1`, …), ready to be
/// re-instantiated against a caller's symbols.
#[derive(Clone, Debug)]
pub struct PlanTemplate {
    pub arena: ExprArena,
    pub root: NodeId,
}

/// One cache entry: the plan template plus the facts needed to decide
/// whether (and how cheaply) a later request may reuse it.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    pub template: PlanTemplate,
    /// [`spores_core::NnzCost`] estimate at creation time.
    pub cost: f64,
    /// Pipeline phase timings of the run that produced the template.
    pub timings: PhaseTimings,
    /// Did the producing run's saturation reach a fixpoint?
    pub converged: bool,
    /// Did the producing run's saturation hit its wall-clock budget?
    pub timed_out: bool,
    /// E-graph size of the producing run.
    pub e_nodes: usize,
    /// Valid for any concrete sizes within the fingerprint's classes.
    pub size_polymorphic: bool,
    /// Concrete per-slot shapes the template was optimized for (the
    /// exact-match key when `size_polymorphic` is false).
    pub slot_shapes: Vec<Shape>,
}

/// What the sharded cache needs to know about an entry to run its
/// admission and variant-replacement policies. Implemented by the
/// single-statement [`CachedPlan`] and the workload-level
/// [`crate::workload::CachedWorkloadPlan`]. The admission rule itself is
/// a provided method so both caches always enforce the same policy.
pub trait CacheEntry {
    /// Valid at any concrete sizes within the fingerprint's classes?
    fn size_polymorphic(&self) -> bool;
    /// Concrete per-slot shapes the entry was optimized for.
    fn slot_shapes(&self) -> &[Shape];

    /// May a request with these per-slot shapes reuse this entry?
    fn admits(&self, slot_shapes: &[Shape]) -> bool {
        self.size_polymorphic() || self.slot_shapes() == slot_shapes
    }
}

impl CacheEntry for CachedPlan {
    fn size_polymorphic(&self) -> bool {
        self.size_polymorphic
    }

    fn slot_shapes(&self) -> &[Shape] {
        &self.slot_shapes
    }
}

struct Entry<P> {
    plan: std::sync::Arc<P>,
    last_used: u64,
}

struct Shard<P> {
    entries: HashMap<String, Vec<Entry<P>>>,
    len: usize,
}

impl<P> Default for Shard<P> {
    fn default() -> Self {
        Shard {
            entries: HashMap::new(),
            len: 0,
        }
    }
}

/// Sharded LRU over `canon → [variants]`, generic over the entry type
/// (single-statement plan templates by default; workload templates via
/// `ShardedCache<CachedWorkloadPlan>`).
pub struct ShardedCache<P: CacheEntry = CachedPlan> {
    shards: Vec<Mutex<Shard<P>>>,
    /// Per-shard capacity (total capacity / shard count, at least 1).
    shard_capacity: usize,
    /// Cap on size-pinned variants kept per canonical form.
    max_variants: usize,
    /// Global LRU clock (coarse: one tick per touch).
    tick: AtomicU64,
    evictions: AtomicU64,
}

impl<P: CacheEntry> ShardedCache<P> {
    pub fn new(shards: usize, capacity: usize, max_variants: usize) -> ShardedCache<P> {
        let shards = shards.max(1);
        ShardedCache {
            shard_capacity: (capacity / shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            max_variants: max_variants.max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: &Fingerprint) -> &Mutex<Shard<P>> {
        &self.shards[(fp.hash() as usize) % self.shards.len()]
    }

    /// Fetch a template admitting these per-slot shapes, updating LRU state.
    pub fn get(&self, fp: &Fingerprint, slot_shapes: &[Shape]) -> Option<std::sync::Arc<P>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(fp).lock().unwrap();
        let variants = shard.entries.get_mut(fp.canon())?;
        let entry = variants.iter_mut().find(|e| e.plan.admits(slot_shapes))?;
        entry.last_used = tick;
        Some(entry.plan.clone())
    }

    /// Insert (or replace) the variant for this fingerprint + shape key,
    /// evicting least-recently-used entries beyond the shard capacity.
    /// Takes the caller's `Arc` so cached plans are shared, not copied.
    pub fn insert(&self, fp: &Fingerprint, plan: std::sync::Arc<P>) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(fp).lock().unwrap();
        let mut grew = 0isize;
        let mut variant_evictions = 0u64;
        {
            let variants = shard.entries.entry(fp.canon().to_string()).or_default();
            // replace the variant with the same reuse key, if any
            let same_key = variants.iter_mut().find(|e| {
                e.plan.size_polymorphic() == plan.size_polymorphic()
                    && (plan.size_polymorphic() || e.plan.slot_shapes() == plan.slot_shapes())
            });
            match same_key {
                Some(entry) => {
                    entry.plan = plan;
                    entry.last_used = tick;
                }
                None => {
                    if variants.len() >= self.max_variants {
                        // too many size-pinned variants: drop the stalest
                        let stale = variants
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(i, _)| i)
                            .expect("variants non-empty");
                        variants.remove(stale);
                        grew -= 1;
                        variant_evictions += 1;
                    }
                    variants.push(Entry {
                        plan,
                        last_used: tick,
                    });
                    grew += 1;
                }
            }
        }
        shard.len = (shard.len as isize + grew) as usize;
        self.evictions
            .fetch_add(variant_evictions, Ordering::Relaxed);
        while shard.len > self.shard_capacity {
            evict_lru(&mut shard);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total cached templates across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries displaced by the LRU policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

fn evict_lru<P>(shard: &mut Shard<P>) {
    let victim = shard
        .entries
        .iter()
        .flat_map(|(canon, variants)| variants.iter().map(move |e| (canon.clone(), e.last_used)))
        .min_by_key(|&(_, used)| used)
        .map(|(canon, _)| canon);
    let Some(canon) = victim else { return };
    let variants = shard.entries.get_mut(&canon).expect("victim exists");
    let stale = variants
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.last_used)
        .map(|(i, _)| i)
        .expect("victim non-empty");
    variants.remove(stale);
    shard.len -= 1;
    if variants.is_empty() {
        shard.entries.remove(&canon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spores_ir::{fingerprint, LeafClass, Symbol};

    fn fp_of(src: &str, rows: u64, cols: u64) -> (Fingerprint, ExprArena, NodeId) {
        let mut a = ExprArena::new();
        let root = spores_ir::parse_expr(&mut a, src).unwrap();
        let classes: HashMap<Symbol, LeafClass> = a
            .free_vars(root)
            .into_iter()
            .map(|v| (v, LeafClass::classify(Shape::new(rows, cols), 1.0)))
            .collect();
        let fp = fingerprint(&a, root, &classes).unwrap();
        (fp, a, root)
    }

    fn plan(
        arena: &ExprArena,
        root: NodeId,
        poly: bool,
        shapes: Vec<Shape>,
    ) -> std::sync::Arc<CachedPlan> {
        std::sync::Arc::new(CachedPlan {
            template: PlanTemplate {
                arena: arena.clone(),
                root,
            },
            cost: 1.0,
            timings: PhaseTimings::default(),
            converged: true,
            timed_out: false,
            e_nodes: 0,
            size_polymorphic: poly,
            slot_shapes: shapes,
        })
    }

    #[test]
    fn polymorphic_entry_admits_any_sizes() {
        let cache = ShardedCache::new(4, 16, 4);
        let (fp, a, root) = fp_of("X + Y", 10, 10);
        cache.insert(&fp, plan(&a, root, true, vec![Shape::new(10, 10); 2]));
        assert!(cache
            .get(&fp, &[Shape::new(99, 77), Shape::new(99, 77)])
            .is_some());
    }

    #[test]
    fn pinned_entry_requires_exact_shapes() {
        let cache = ShardedCache::new(4, 16, 4);
        let (fp, a, root) = fp_of("X + Y", 10, 10);
        let shapes = vec![Shape::new(10, 10); 2];
        cache.insert(&fp, plan(&a, root, false, shapes.clone()));
        assert!(cache.get(&fp, &shapes).is_some());
        assert!(cache
            .get(&fp, &[Shape::new(99, 77), Shape::new(99, 77)])
            .is_none());
        // a second size becomes its own variant
        let other = vec![Shape::new(99, 77); 2];
        cache.insert(&fp, plan(&a, root, false, other.clone()));
        assert!(cache.get(&fp, &other).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_replaces_same_key() {
        let cache = ShardedCache::new(1, 16, 4);
        let (fp, a, root) = fp_of("X + Y", 10, 10);
        cache.insert(&fp, plan(&a, root, true, vec![Shape::new(10, 10); 2]));
        cache.insert(&fp, plan(&a, root, true, vec![Shape::new(10, 10); 2]));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ShardedCache::new(1, 2, 4);
        let (fp1, a1, r1) = fp_of("X + Y", 10, 10);
        let (fp2, a2, r2) = fp_of("X * Y", 10, 10);
        let (fp3, a3, r3) = fp_of("X %*% Y", 10, 10);
        let shapes = vec![Shape::new(10, 10); 2];
        cache.insert(&fp1, plan(&a1, r1, true, shapes.clone()));
        cache.insert(&fp2, plan(&a2, r2, true, shapes.clone()));
        // touch fp1 so fp2 is the LRU victim
        assert!(cache.get(&fp1, &shapes).is_some());
        cache.insert(&fp3, plan(&a3, r3, true, shapes.clone()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&fp1, &shapes).is_some());
        assert!(cache.get(&fp2, &shapes).is_none());
        assert!(cache.get(&fp3, &shapes).is_some());
    }
}
