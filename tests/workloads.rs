//! Cross-mode agreement of the five evaluation workloads: the plans
//! produced by base / opt2 / SPORES(greedy) / SPORES(ILP) must compute
//! numerically identical results over several training iterations.

use spores::core::ExtractorKind;
use spores::egraph::Scheduler;
use spores::ml::{run, workloads, Mode};

fn all_modes() -> Vec<Mode> {
    vec![
        Mode::Base,
        Mode::Opt2,
        Mode::spores(),
        Mode::Spores {
            scheduler: Scheduler::DepthFirst,
            extractor: ExtractorKind::Greedy,
        },
        Mode::Spores {
            scheduler: Scheduler::default(),
            extractor: ExtractorKind::Ilp,
        },
    ]
}

fn check(w: &workloads::Workload) {
    let reports: Vec<_> = all_modes()
        .iter()
        .map(|m| run(w, m).unwrap_or_else(|e| panic!("{} {}: {e}", w.name, m.label())))
        .collect();
    let reference = &reports[0];
    assert!(!reference.scalars.is_empty());
    for r in &reports[1..] {
        for (name, &v) in &reference.scalars {
            let got = r.scalars[name];
            assert!(
                (v - got).abs() <= 1e-5 * (1.0 + v.abs()),
                "{} {}: {name} = {v} (base) vs {got} ({})",
                w.name,
                r.mode,
                r.mode
            );
        }
    }
}

#[test]
fn als_all_modes_agree() {
    check(&workloads::als(80, 60, 4, 7));
}

#[test]
fn glm_all_modes_agree() {
    check(&workloads::glm(100, 15, 8));
}

#[test]
fn svm_all_modes_agree() {
    check(&workloads::svm(100, 15, 9));
}

#[test]
fn mlr_all_modes_agree() {
    check(&workloads::mlr(100, 12, 10));
}

#[test]
fn pnmf_all_modes_agree() {
    check(&workloads::pnmf(60, 50, 4, 11));
}

#[test]
fn spores_never_slower_in_flops_at_scale() {
    // deterministic counter comparison on medium-small sizes
    for w in [
        workloads::als(400, 300, 8, 21),
        workloads::pnmf(200, 300, 6, 23),
    ] {
        let base = run(&w, &Mode::Base).unwrap();
        let spores = run(&w, &Mode::spores()).unwrap();
        assert!(
            spores.stats.flops <= base.stats.flops,
            "{}: spores {} > base {}",
            w.name,
            spores.stats.flops,
            base.stats.flops
        );
    }
}
