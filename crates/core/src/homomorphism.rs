//! Term homomorphisms (Appendix A, Definitions A.3–A.4).
//!
//! A homomorphism `f : t₁ → t₂` maps the bound indices of `t₁` onto those
//! of `t₂` such that the atom bags coincide; the appendix's uniqueness
//! proof (Lemma 2.2) rests on three executable facts checked here:
//!
//! * homomorphisms are **surjective** on indices (Corollary 1),
//! * they **compose** (Corollary 2),
//! * a pair of opposing homomorphisms yields an **isomorphism**
//!   (Lemma A.1), so homomorphism induces a partial order on the terms of
//!   a canonical form with no cycles between non-isomorphic terms.
//!
//! The uniqueness proof picks the *minimal* term under this order as the
//! witness construction; [`minimal_terms`] exposes that choice.

use crate::canon::{IndexRef, Term};

/// A homomorphism from term `a` to term `b`: the image of each of `a`'s
/// bound indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Homomorphism {
    /// `map[i]` is the image in `b` of bound index `i` of `a`.
    pub map: Vec<u32>,
}

impl Homomorphism {
    /// Is this map surjective onto `0..n_bound_b` (Corollary 1 says every
    /// homomorphism must be)?
    pub fn is_surjective(&self, n_bound_b: u32) -> bool {
        let mut hit = vec![false; n_bound_b as usize];
        for &q in &self.map {
            if let Some(h) = hit.get_mut(q as usize) {
                *h = true;
            }
        }
        hit.into_iter().all(|b| b)
    }

    /// Is this map a bijection (an isomorphism witness)?
    pub fn is_bijective(&self, n_bound_b: u32) -> bool {
        self.map.len() == n_bound_b as usize && self.is_surjective(n_bound_b)
    }

    /// Compose: `self : a → b`, `other : b → c` gives `a → c`
    /// (Corollary 2).
    pub fn then(&self, other: &Homomorphism) -> Homomorphism {
        Homomorphism {
            map: self.map.iter().map(|&q| other.map[q as usize]).collect(),
        }
    }
}

/// Apply a bound-index mapping to a term's atoms and compare bags.
fn maps_onto(a: &Term, b: &Term, map: &[u32]) -> bool {
    let image: Vec<Vec<IndexRef>> = a
        .atoms
        .iter()
        .map(|atom| {
            atom.indices
                .iter()
                .map(|i| match i {
                    IndexRef::Bound(p) => IndexRef::Bound(map[*p as usize]),
                    free => *free,
                })
                .collect()
        })
        .collect();
    // bag comparison keyed by (tensor, mapped indices)
    let mut b_atoms: Vec<(usize, bool)> = (0..b.atoms.len()).map(|i| (i, false)).collect();
    for (ai, atom) in a.atoms.iter().enumerate() {
        let found = b_atoms.iter_mut().find(|(bi, used)| {
            !*used && b.atoms[*bi].tensor == atom.tensor && b.atoms[*bi].indices == image[ai]
        });
        match found {
            Some((_, used)) => *used = true,
            None => return false,
        }
    }
    b_atoms.into_iter().all(|(_, used)| used)
}

/// Find a homomorphism `a → b` (same atom count; frees fixed), if any,
/// by backtracking over bound-index images.
pub fn find_homomorphism(a: &Term, b: &Term) -> Option<Homomorphism> {
    if a.atoms.len() != b.atoms.len() {
        return None;
    }
    fn go(a: &Term, b: &Term, map: &mut Vec<Option<u32>>, next: usize) -> bool {
        if next == map.len() {
            let m: Vec<u32> = map.iter().map(|o| o.expect("complete")).collect();
            return maps_onto(a, b, &m);
        }
        for q in 0..b.n_bound {
            map[next] = Some(q);
            // prune: partial consistency — every atom fully mapped so far
            // must have a counterpart; cheap variant: defer to the full
            // check at the leaves for these small terms
            if go(a, b, map, next + 1) {
                return true;
            }
        }
        map[next] = None;
        false
    }
    if a.n_bound == 0 {
        return maps_onto(a, b, &[]).then(|| Homomorphism { map: vec![] });
    }
    let mut map = vec![None; a.n_bound as usize];
    if go(a, b, &mut map, 0) {
        Some(Homomorphism {
            map: map.into_iter().map(|o| o.expect("complete")).collect(),
        })
    } else {
        None
    }
}

/// Lemma A.1: homomorphisms in both directions imply isomorphism.
pub fn mutually_homomorphic_implies_isomorphic(a: &Term, b: &Term) -> bool {
    match (find_homomorphism(a, b), find_homomorphism(b, a)) {
        (Some(_), Some(_)) => crate::canon::terms_isomorphic(a, b),
        _ => true, // vacuous
    }
}

/// The minimal terms of a polyterm under the homomorphism partial order —
/// the witness terms the uniqueness proof (Lemma 2.2) evaluates on a
/// crafted input. Ties (isomorphic duplicates cannot occur in a canonical
/// polyterm) are all returned.
pub fn minimal_terms(terms: &[Term]) -> Vec<usize> {
    (0..terms.len())
        .filter(|&i| {
            // t_i is minimal if no other t_j < t_i (hom j→i but not i→j)
            !(0..terms.len()).any(|j| {
                j != i
                    && find_homomorphism(&terms[j], &terms[i]).is_some()
                    && find_homomorphism(&terms[i], &terms[j]).is_none()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonical_form;
    use crate::lang::parse_math;
    use spores_ir::Symbol;
    use std::collections::HashMap;

    fn dims() -> HashMap<Symbol, u64> {
        ["i", "j", "k", "v", "w", "s", "z"]
            .iter()
            .map(|s| (Symbol::new(s), 5))
            .collect()
    }

    fn term_of(src: &str) -> Term {
        let p = canonical_form(&parse_math(src).unwrap(), &dims()).unwrap();
        assert_eq!(p.terms.len(), 1, "{src} must canonicalize to one term");
        p.terms[0].1.clone()
    }

    #[test]
    fn example_2_homomorphism() {
        // Appendix Example 2: t1 = Σ_vwst A(i,v)B(v,w)A(i,s)B(s,t)
        //                     t2 = Σ_jk  A²(i,j)B²(j,k)  (z for the paper, s t)
        // there is a homomorphism t1 → t2 ([v,s ↦ j], [w,z ↦ k])
        let t1 = term_of(
            "(sum v (sum w (sum s (sum z (* (b i v A) (* (b v w B) (* (b i s A) (b s z B))))))))",
        );
        let t2 = term_of("(sum j (sum k (* (b i j A) (* (b j k B) (* (b i j A) (b j k B))))))");
        let hom = find_homomorphism(&t1, &t2).expect("homomorphism exists");
        assert!(hom.is_surjective(t2.n_bound));
        // but not in the other direction, so they are NOT isomorphic
        assert!(find_homomorphism(&t2, &t1).is_none());
        assert!(!crate::canon::terms_isomorphic(&t1, &t2));
    }

    #[test]
    fn alpha_variants_mutually_homomorphic() {
        let t1 = term_of("(sum i (sum j (* (b i j X) (b i j Y))))");
        let t2 = term_of("(sum k (sum w (* (b k w X) (b k w Y))))");
        let f = find_homomorphism(&t1, &t2).unwrap();
        let g = find_homomorphism(&t2, &t1).unwrap();
        assert!(f.is_bijective(t2.n_bound));
        // Lemma A.1
        assert!(mutually_homomorphic_implies_isomorphic(&t1, &t2));
        // Corollary 2: composition is a homomorphism t1 → t1
        let round = f.then(&g);
        assert!(round.is_surjective(t1.n_bound));
    }

    #[test]
    fn no_homomorphism_between_different_tensors() {
        let t1 = term_of("(sum i (b i _ X))");
        let t2 = term_of("(sum i (b i _ Y))");
        assert!(find_homomorphism(&t1, &t2).is_none());
    }

    #[test]
    fn free_indices_block_remapping() {
        // frees are fixed: X(i) vs X(j) (both free) are not homomorphic
        let t1 = term_of("(* (b i _ X) (b i _ X))");
        let t2 = term_of("(* (b j _ X) (b j _ X))");
        assert!(find_homomorphism(&t1, &t2).is_none());
    }

    #[test]
    fn minimal_term_selection() {
        // the collapsed (merged-index) term receives a homomorphism from
        // the spread term, so the spread term is the minimal one
        let spread = term_of(
            "(sum v (sum w (sum s (sum z (* (b i v A) (* (b v w B) (* (b i s A) (b s z B))))))))",
        );
        let collapsed =
            term_of("(sum j (sum k (* (b i j A) (* (b j k B) (* (b i j A) (b j k B))))))");
        let terms = vec![collapsed, spread];
        let minimal = minimal_terms(&terms);
        assert_eq!(minimal, vec![1], "the spread term is minimal");
    }
}
