//! Pairwise overlap, subsumption, and explosiveness analysis.
//!
//! Two lhs patterns *overlap* when some non-variable subterm of one
//! unifies with the other — a critical pair: both rules can fire on the
//! same class, and every overlap is a site where the e-graph pays for
//! both. A rule is *subsumed* when a more general rule performs the
//! same rewrite (its lhs→rhs instantiates to the other's), making the
//! specific rule redundant.
//!
//! The per-rule *explosiveness score* combines rhs growth, permutative
//! shape (AC rules whose rhs is a rearrangement of the lhs — the
//! classic e-graph exploders), self-feeding (the rhs contains a fresh
//! redex of the same rule), and fan-out (how many other rules' lhs
//! patterns a produced rhs can wake). The scores are exported as
//! initial backoff streaks (`Runner::with_rule_priors`): explosive
//! rules get paced down sooner once fruitless, which shifts *when*
//! work happens, never the fixpoint.

use spores_core::lang::Math;
use spores_core::rules::MathRewrite;
use spores_egraph::{ENodeOrVar, FxHashMap, Id, Language, Pattern, RecExpr, Var};

type PNode = ENodeOrVar<Math>;

/// A subterm of one of the two patterns being unified: (side, node id).
type Loc = (u8, Id);

struct Unifier<'a> {
    pats: [&'a [PNode]; 2],
    /// (side, var) → bound subterm.
    subst: FxHashMap<(u8, Var), Loc>,
}

impl<'a> Unifier<'a> {
    fn new(a: &'a RecExpr<PNode>, b: &'a RecExpr<PNode>) -> Self {
        Unifier {
            pats: [a.nodes(), b.nodes()],
            subst: FxHashMap::default(),
        }
    }

    fn node(&self, loc: Loc) -> &PNode {
        &self.pats[loc.0 as usize][loc.1.index()]
    }

    /// Chase variable bindings to a non-bound location.
    fn resolve(&self, mut loc: Loc) -> Loc {
        loop {
            match self.node(loc) {
                ENodeOrVar::Var(v) => match self.subst.get(&(loc.0, *v)) {
                    Some(&next) => loc = next,
                    None => return loc,
                },
                ENodeOrVar::ENode(_) => return loc,
            }
        }
    }

    fn occurs(&self, var: (u8, Var), loc: Loc) -> bool {
        let loc = self.resolve(loc);
        match self.node(loc) {
            ENodeOrVar::Var(v) => (loc.0, *v) == var,
            ENodeOrVar::ENode(n) => n.children().iter().any(|&c| self.occurs(var, (loc.0, c))),
        }
    }

    fn unify(&mut self, a: Loc, b: Loc) -> bool {
        let a = self.resolve(a);
        let b = self.resolve(b);
        if a == b {
            return true;
        }
        match (self.node(a).clone(), self.node(b).clone()) {
            (ENodeOrVar::Var(v), _) => {
                if self.occurs((a.0, v), b) {
                    return false;
                }
                self.subst.insert((a.0, v), b);
                true
            }
            (_, ENodeOrVar::Var(v)) => {
                if self.occurs((b.0, v), a) {
                    return false;
                }
                self.subst.insert((b.0, v), a);
                true
            }
            (ENodeOrVar::ENode(na), ENodeOrVar::ENode(nb)) => {
                na.matches(&nb)
                    && na
                        .children()
                        .iter()
                        .zip(nb.children())
                        .all(|(&ca, &cb)| self.unify((a.0, ca), (b.0, cb)))
            }
        }
    }
}

/// Do the two pattern terms unify (after renaming apart)?
fn unifiable(a: &RecExpr<PNode>, ra: Id, b: &RecExpr<PNode>, rb: Id) -> bool {
    Unifier::new(a, b).unify((0, ra), (1, rb))
}

/// Non-variable subterm roots of a pattern, including the root itself.
fn enode_positions(p: &RecExpr<PNode>) -> Vec<Id> {
    (0..p.nodes().len())
        .map(Id::from)
        .filter(|&id| matches!(p.nodes()[id.index()], ENodeOrVar::ENode(_)))
        .collect()
}

// ---------------------------------------------------------------------
// subsumption: one-directional matching
// ---------------------------------------------------------------------

/// Structural equality of two pattern subterms (vars equal iff same
/// name).
fn pat_eq(a: &RecExpr<PNode>, ia: Id, b: &RecExpr<PNode>, ib: Id) -> bool {
    match (&a.nodes()[ia.index()], &b.nodes()[ib.index()]) {
        (ENodeOrVar::Var(va), ENodeOrVar::Var(vb)) => va == vb,
        (ENodeOrVar::ENode(na), ENodeOrVar::ENode(nb)) => {
            na.matches(nb)
                && na
                    .children()
                    .iter()
                    .zip(nb.children())
                    .all(|(&ca, &cb)| pat_eq(a, ca, b, cb))
        }
        _ => false,
    }
}

/// Match `general` onto `specific`: vars of `general` bind to subterms
/// of `specific`; `specific` is rigid.
fn match_onto(
    general: &RecExpr<PNode>,
    ig: Id,
    specific: &RecExpr<PNode>,
    is: Id,
    subst: &mut FxHashMap<Var, Id>,
) -> bool {
    match &general.nodes()[ig.index()] {
        ENodeOrVar::Var(v) => match subst.get(v) {
            Some(&bound) => pat_eq(specific, bound, specific, is),
            None => {
                subst.insert(*v, is);
                true
            }
        },
        ENodeOrVar::ENode(ng) => match &specific.nodes()[is.index()] {
            ENodeOrVar::ENode(ns) => {
                ng.matches(ns)
                    && ng
                        .children()
                        .iter()
                        .zip(ns.children())
                        .all(|(&cg, &cs)| match_onto(general, cg, specific, cs, subst))
            }
            ENodeOrVar::Var(_) => false,
        },
    }
}

/// Does rule `general` subsume rule `specific` (same rewrite, strictly
/// through a variable instantiation)?
fn subsumes(general: &MathRewrite, specific: &MathRewrite) -> bool {
    let (Some(grhs), Some(srhs)) = (general.rhs_pattern(), specific.rhs_pattern()) else {
        return false;
    };
    let mut subst = FxHashMap::default();
    match_onto(
        general.searcher.ast(),
        general.searcher.ast().root(),
        specific.searcher.ast(),
        specific.searcher.ast().root(),
        &mut subst,
    ) && {
        // rhs must instantiate under the SAME substitution; general rhs
        // vars are all lhs-bound, so every one is already in subst
        let g = grhs.ast();
        let s = srhs.ast();
        rhs_instantiates(g, g.root(), s, s.root(), &subst, specific.searcher.ast())
    }
}

/// Does σ(general-rhs) equal specific-rhs, where σ binds general vars
/// to subterms of the specific *lhs*?
fn rhs_instantiates(
    general: &RecExpr<PNode>,
    ig: Id,
    specific: &RecExpr<PNode>,
    is: Id,
    subst: &FxHashMap<Var, Id>,
    specific_lhs: &RecExpr<PNode>,
) -> bool {
    match &general.nodes()[ig.index()] {
        ENodeOrVar::Var(v) => match subst.get(v) {
            Some(&bound) => pat_eq(specific_lhs, bound, specific, is),
            None => false,
        },
        ENodeOrVar::ENode(ng) => match &specific.nodes()[is.index()] {
            ENodeOrVar::ENode(ns) => {
                ng.matches(ns)
                    && ng.children().iter().zip(ns.children()).all(|(&cg, &cs)| {
                        rhs_instantiates(general, cg, specific, cs, subst, specific_lhs)
                    })
            }
            ENodeOrVar::Var(_) => false,
        },
    }
}

// ---------------------------------------------------------------------
// per-rule explosiveness
// ---------------------------------------------------------------------

/// Overlap/explosiveness metrics for one rule.
#[derive(Debug, Clone, Default)]
pub struct OverlapReport {
    /// Names of rules this rule is subsumed by (redundancy warning).
    pub subsumed_by: Vec<String>,
    /// Number of other rules whose lhs overlaps this rule's lhs
    /// (critical pairs at some position).
    pub lhs_overlaps: usize,
    /// rhs node count minus lhs node count (growth per application).
    pub growth: isize,
    /// The rhs is a rearrangement of the lhs (same size, same operator
    /// multiset) — AC-style permutation.
    pub permutative: bool,
    /// Some rhs subterm unifies with this rule's own lhs: each
    /// application can enable the next.
    pub self_feeding: bool,
    /// Other rules whose lhs unifies with some rhs subterm.
    pub fans_out_to: usize,
    /// Combined score (unitless; see `score`).
    pub score: f64,
    /// Suggested initial backoff streak (0–3).
    pub prior: u32,
}

fn op_multiset(p: &RecExpr<PNode>) -> Vec<String> {
    let mut ops: Vec<String> = p
        .nodes()
        .iter()
        .map(|n| match n {
            ENodeOrVar::Var(_) => "?".to_owned(),
            ENodeOrVar::ENode(m) => m.op_display(),
        })
        .collect();
    ops.sort();
    ops
}

fn pattern_ast(p: &Pattern<Math>) -> &RecExpr<PNode> {
    p.ast()
}

/// Compute overlap reports for the whole ruleset, in rule order.
pub fn analyze(rules: &[MathRewrite]) -> Vec<OverlapReport> {
    let mut out: Vec<OverlapReport> = Vec::with_capacity(rules.len());
    for (i, rule) in rules.iter().enumerate() {
        let lhs = pattern_ast(&rule.searcher);
        let mut rep = OverlapReport::default();

        // pairwise lhs overlap + subsumption
        for (j, other) in rules.iter().enumerate() {
            if i == j {
                continue;
            }
            let olhs = pattern_ast(&other.searcher);
            let overlapping = enode_positions(lhs)
                .into_iter()
                .any(|p| unifiable(lhs, p, olhs, olhs.root()));
            if overlapping {
                rep.lhs_overlaps += 1;
            }
            if subsumes(other, rule) {
                rep.subsumed_by.push(other.name.clone());
            }
        }

        if let Some(rhs) = rule.rhs_pattern() {
            let rhs = pattern_ast(rhs);
            rep.growth = rhs.nodes().len() as isize - lhs.nodes().len() as isize;
            rep.permutative = rep.growth == 0 && op_multiset(lhs) == op_multiset(rhs);
            rep.self_feeding = enode_positions(rhs)
                .into_iter()
                .any(|p| unifiable(rhs, p, lhs, lhs.root()));
            rep.fans_out_to = rules
                .iter()
                .enumerate()
                .filter(|&(j, other)| {
                    j != i && {
                        let olhs = pattern_ast(&other.searcher);
                        enode_positions(rhs)
                            .into_iter()
                            .any(|p| unifiable(rhs, p, olhs, olhs.root()))
                    }
                })
                .count();
        }

        rep.score = rep.growth.max(0) as f64
            + if rep.permutative { 1.5 } else { 0.0 }
            + if rep.self_feeding { 1.0 } else { 0.0 }
            + 0.25 * rep.fans_out_to as f64 / rules.len().max(1) as f64 * 10.0;
        out.push(rep);
    }

    // normalize scores into 0..=3 initial streaks
    let max = out.iter().map(|r| r.score).fold(0.0f64, f64::max);
    if max > 0.0 {
        for r in &mut out {
            r.prior = ((r.score / max) * 3.0).round() as u32;
        }
    }
    out
}

/// The backoff priors (rule name → initial streak) the overlap pass
/// suggests, ready for `Runner::with_rule_priors` /
/// `OptimizerConfig::rule_priors`.
pub fn backoff_priors(rules: &[MathRewrite]) -> FxHashMap<String, u32> {
    analyze(rules)
        .into_iter()
        .zip(rules)
        .filter(|(rep, _)| rep.prior > 0)
        .map(|(rep, rule)| (rule.name.clone(), rep.prior))
        .collect()
}
