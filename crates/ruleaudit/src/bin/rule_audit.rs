//! `rule_audit` — audit the SPORES rewrite ruleset.
//!
//! ```text
//! rule_audit [--ruleset default|complete] [--json PATH]
//!            [--write-semiring PATH] [--check-semiring PATH]
//!            [--max-structure S] [--priors]
//! ```
//!
//! Prints the human table to stdout. Exits 1 if the audit finds any
//! violation, or if `--check-semiring` detects drift against the
//! committed snapshot.

use std::process::ExitCode;

use spores_core::rules;
use spores_ruleaudit::{audit_with_policy, AuditPolicy, Structure};

fn usage() -> ! {
    eprintln!(
        "usage: rule_audit [--ruleset default|complete] [--json PATH]\n\
         \x20                 [--write-semiring PATH] [--check-semiring PATH]\n\
         \x20                 [--max-structure semiring|commutative-semiring|ring|field|real]\n\
         \x20                 [--priors]"
    );
    std::process::exit(2);
}

fn parse_structure(s: &str) -> Structure {
    match s {
        "semiring" => Structure::Semiring,
        "commutative-semiring" => Structure::CommutativeSemiring,
        "ring" => Structure::Ring,
        "field" => Structure::Field,
        "real" => Structure::Real,
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let mut ruleset = "complete".to_owned();
    let mut json_path: Option<String> = None;
    let mut write_semiring: Option<String> = None;
    let mut check_semiring: Option<String> = None;
    let mut policy = AuditPolicy::default();
    let mut show_priors = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ruleset" => ruleset = args.next().unwrap_or_else(|| usage()),
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--write-semiring" => write_semiring = Some(args.next().unwrap_or_else(|| usage())),
            "--check-semiring" => check_semiring = Some(args.next().unwrap_or_else(|| usage())),
            "--max-structure" => {
                policy.max_structure =
                    Some(parse_structure(&args.next().unwrap_or_else(|| usage())));
            }
            "--priors" => show_priors = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let rules = match ruleset.as_str() {
        "default" => rules::default_rules(),
        "complete" => rules::complete(),
        _ => usage(),
    };

    let report = audit_with_policy(&rules, &policy);
    print!("{}", report.render_table());

    if show_priors {
        let mut priors: Vec<(String, u32)> = spores_ruleaudit::backoff_priors(&rules)
            .into_iter()
            .collect();
        priors.sort();
        println!();
        println!("suggested backoff priors (initial fruitless-streak):");
        for (name, p) in priors {
            println!("  {name}: {p}");
        }
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("rule_audit: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rule_audit: wrote JSON report to {path}");
    }

    if let Some(path) = write_semiring {
        if let Err(e) = std::fs::write(&path, report.semiring_table_json()) {
            eprintln!("rule_audit: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rule_audit: wrote semiring table to {path}");
    }

    if let Some(path) = check_semiring {
        let expected = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rule_audit: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let actual = report.semiring_table_json();
        if expected != actual {
            eprintln!(
                "rule_audit: semiring table drifted from {path};\n\
                 re-run with --write-semiring {path} and review the diff"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("rule_audit: semiring table matches {path}");
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
