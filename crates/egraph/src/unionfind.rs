//! Union-find over e-class ids, with path compression.
//!
//! Union order matters for e-graphs: [`UnionFind::union`] makes the
//! *first* argument the new root, letting the e-graph decide which class
//! survives a merge (it keeps the class with more parents to move less
//! data).

use crate::language::Id;

/// Disjoint-set forest keyed by dense [`Id`]s.
#[derive(Default, Clone, Debug)]
pub struct UnionFind {
    parents: Vec<Id>,
}

impl UnionFind {
    /// Create a fresh singleton set and return its id.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from(self.parents.len());
        self.parents.push(id);
        id
    }

    pub fn len(&self) -> usize {
        self.parents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    fn parent(&self, id: Id) -> Id {
        self.parents[id.index()]
    }

    /// Find the canonical representative without mutating (no compression).
    pub fn find_immutable(&self, mut current: Id) -> Id {
        while current != self.parent(current) {
            current = self.parent(current);
        }
        current
    }

    /// Find the canonical representative, compressing the path.
    pub fn find(&mut self, mut current: Id) -> Id {
        let root = self.find_immutable(current);
        // second pass: point everything on the path at the root
        while current != root {
            let next = self.parent(current);
            self.parents[current.index()] = root;
            current = next;
        }
        root
    }

    /// Merge the sets of `root1` and `root2` (both must be roots);
    /// `root1` becomes the root of the union.
    pub fn union(&mut self, root1: Id, root2: Id) -> Id {
        debug_assert_eq!(root1, self.find_immutable(root1));
        debug_assert_eq!(root2, self.find_immutable(root2));
        self.parents[root2.index()] = root1;
        root1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::default();
        let ids: Vec<Id> = (0..10).map(|_| uf.make_set()).collect();
        assert_eq!(uf.len(), 10);
        for &id in &ids {
            assert_eq!(uf.find(id), id);
        }
        uf.union(ids[0], ids[1]);
        uf.union(ids[0], ids[2]);
        uf.union(ids[5], ids[6]);
        assert_eq!(uf.find(ids[1]), ids[0]);
        assert_eq!(uf.find(ids[2]), ids[0]);
        assert_eq!(uf.find(ids[6]), ids[5]);
        assert_ne!(uf.find(ids[3]), uf.find(ids[2]));
    }

    #[test]
    fn first_argument_is_root() {
        let mut uf = UnionFind::default();
        let a = uf.make_set();
        let b = uf.make_set();
        assert_eq!(uf.union(b, a), b);
        assert_eq!(uf.find(a), b);
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::default();
        let ids: Vec<Id> = (0..100).map(|_| uf.make_set()).collect();
        // build a chain: each root unioned under the next
        for w in ids.windows(2) {
            let (ra, rb) = (uf.find(w[1]), uf.find(w[0]));
            uf.union(ra, rb);
        }
        let root = uf.find(ids[0]);
        for &id in &ids {
            assert_eq!(uf.find(id), root);
            // after find, parent must point directly at root
            assert_eq!(uf.parent(id), root);
        }
    }
}
