//! Quickstart: optimize the paper's §1 headline expression.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! `sum((X − u vᵀ)²)` with a sparse X naively materializes the dense
//! rank-1 matrix `u vᵀ` (0.5M cells here). SPORES translates the
//! expression to relational algebra, saturates with the seven relational
//! identities, and extracts a plan that only ever touches X's non-zeros.

use spores::core::{ExtractorKind, Optimizer, OptimizerConfig, VarMeta};
use spores::exec::Executor;
use spores::ir::{ExprArena, Symbol};
use spores::matrix::gen;
use std::collections::HashMap;

fn main() {
    // the loss function of §1, in DML-like syntax
    let src = "sum((X - u %*% t(v))^2)";
    let mut arena = ExprArena::new();
    let root = spores::ir::parse_expr(&mut arena, src).expect("parses");

    // X is a 1000×500 sparse matrix (0.1% non-zeros); u, v dense vectors
    let vars: HashMap<Symbol, VarMeta> = HashMap::from([
        (Symbol::new("X"), VarMeta::sparse(1000, 500, 0.001)),
        (Symbol::new("u"), VarMeta::dense(1000, 1)),
        (Symbol::new("v"), VarMeta::dense(500, 1)),
    ]);

    println!("input    : {}", arena.display(root));

    let optimizer = Optimizer::new(OptimizerConfig {
        extractor: ExtractorKind::Ilp,
        ..OptimizerConfig::default()
    });
    let result = optimizer.optimize(&arena, root, &vars).expect("optimizes");

    println!("optimized: {}", result.arena.display(result.root));
    println!(
        "cost     : {:.0} -> {:.0} nnz-units ({:.0}x estimated improvement)",
        result.cost_before,
        result.cost_after,
        result.speedup_estimate()
    );
    println!(
        "phases   : translate {:?}, saturate {:?} ({} e-nodes, converged={}), extract {:?}, lower {:?}",
        result.timings.translate,
        result.timings.saturate,
        result.saturation.e_nodes,
        result.saturation.converged,
        result.timings.extract,
        result.timings.lower,
    );

    // run both plans on real data to confirm they agree
    let mut rng = gen::rng(7);
    let env = HashMap::from([
        (
            Symbol::new("X"),
            gen::rand_sparse(1000, 500, 0.001, -1.0, 1.0, &mut rng),
        ),
        (
            Symbol::new("u"),
            gen::rand_dense(1000, 1, -1.0, 1.0, &mut rng),
        ),
        (
            Symbol::new("v"),
            gen::rand_dense(500, 1, -1.0, 1.0, &mut rng),
        ),
    ]);
    let mut exec = Executor::default();
    let before = exec.run(&arena, root, &env).expect("runs");
    let flops_before = exec.stats.flops;
    let mut exec = Executor::default();
    let after = exec.run(&result.arena, result.root, &env).expect("runs");
    println!(
        "executed : {:.6} == {:.6} | flops {} -> {}",
        before.as_scalar(),
        after.as_scalar(),
        flops_before,
        exec.stats.flops,
    );
    assert!((before.as_scalar() - after.as_scalar()).abs() < 1e-6 * before.as_scalar().abs());
}
