//! Service counters and the request-latency histogram, backed by a
//! private `spores_telemetry::Registry`.
//!
//! The counters used to be loose `AtomicU64` fields and the histogram a
//! hand-rolled log2 array; both now live in one per-service metrics
//! registry so the same instruments drive the snapshot API *and* the
//! Prometheus-style text exposition
//! ([`crate::OptimizerService::metrics_text`]). The registry is owned
//! per [`ServiceStats`] (not the process-global one), so concurrent
//! services in one process never mix their counters.

use spores_telemetry::{Counter, Gauge, Log2Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Number of power-of-two latency buckets (µs) in [`LatencyHistogram`]
/// snapshots: bucket `k` counts requests with `latency_us` in
/// `[2^k, 2^(k+1))` (bucket 0 also takes sub-µs requests, the last
/// bucket everything beyond).
pub const LATENCY_BUCKETS: usize = 32;

/// Histogram over request latencies, log₂-spaced in microseconds — a
/// view over the registry's [`Log2Histogram`] that keeps the historical
/// 32-bucket snapshot shape (the underlying instrument spans all 64
/// power-of-two buckets; the text exposition renders those directly).
pub struct LatencyHistogram {
    inner: Arc<Log2Histogram>,
}

impl LatencyHistogram {
    pub fn record(&self, latency: Duration) {
        self.inner.record_duration(latency);
    }

    /// Bucket counts, index `k` covering `[2^k, 2^(k+1))` µs; counts
    /// beyond the last bucket's range fold into it.
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let full = self.inner.snapshot();
        let mut out = [0u64; LATENCY_BUCKETS];
        for (k, &c) in full.iter().enumerate() {
            out[k.min(LATENCY_BUCKETS - 1)] += c;
        }
        out
    }

    /// Explicit inclusive `(lower, upper)` µs bounds of snapshot bucket
    /// `k` — the semantics the text exposition's `le="..."` labels use.
    pub fn bucket_bounds_us(k: usize) -> (u64, u64) {
        assert!(k < LATENCY_BUCKETS);
        if k == LATENCY_BUCKETS - 1 {
            // the fold-in tail bucket is unbounded above
            (1u64 << k, u64::MAX)
        } else {
            Log2Histogram::bucket_bounds(k)
        }
    }

    /// Human-readable bound label for snapshot bucket `k`, e.g.
    /// `"512..1023us"`.
    pub fn bucket_label(k: usize) -> String {
        let (lo, hi) = Self::bucket_bounds_us(k);
        if hi == u64::MAX {
            format!("{lo}..+Infus")
        } else {
            format!("{lo}..{hi}us")
        }
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.inner.quantile(q)
    }
}

/// Live counters of an [`crate::OptimizerService`].
pub struct ServiceStats {
    registry: Registry,
    /// Requests served from the cache (template instantiated).
    pub hits: Arc<Counter>,
    /// Requests that ran the full pipeline.
    pub misses: Arc<Counter>,
    /// Requests that piggybacked on an identical in-flight optimization.
    pub coalesced: Arc<Counter>,
    /// Cache hits rejected by the cost re-check (the cached template
    /// priced worse than the caller's own plan at their sizes) and
    /// re-optimized from scratch.
    pub cost_rejections: Arc<Counter>,
    /// End-to-end request latencies (hits and misses alike).
    pub latency: LatencyHistogram,
    /// Evictions live on the caches, not here; this gauge mirrors their
    /// sum into the exposition at render time.
    evictions: Arc<Gauge>,
}

impl Default for ServiceStats {
    fn default() -> Self {
        let registry = Registry::new();
        let hits = registry.counter("spores.service.hits");
        let misses = registry.counter("spores.service.misses");
        let coalesced = registry.counter("spores.service.coalesced");
        let cost_rejections = registry.counter("spores.service.cost_rejections");
        let evictions = registry.gauge("spores.service.evictions");
        let latency = LatencyHistogram {
            inner: registry.histogram("spores.service.latency_us"),
        };
        ServiceStats {
            registry,
            hits,
            misses,
            coalesced,
            cost_rejections,
            latency,
            evictions,
        }
    }
}

impl ServiceStats {
    /// Point-in-time copy of the counters. Evictions live on the cache,
    /// not here — `evictions` is filled in by the snapshot's caller
    /// ([`crate::OptimizerService::stats`]).
    pub fn snapshot(&self, evictions: u64) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
            evictions,
            cost_rejections: self.cost_rejections.get(),
            latency_p50_us: self.latency.quantile_us(0.5),
            latency_p99_us: self.latency.quantile_us(0.99),
        }
    }

    /// Prometheus-style text exposition of every service metric:
    /// `spores_service_{hits,misses,coalesced,cost_rejections,evictions}`
    /// plus the `spores_service_latency_us` histogram with explicit
    /// `le="<µs>"` bucket bounds (the same log2 bounds
    /// [`LatencyHistogram::bucket_bounds_us`] documents).
    pub fn render_text(&self, evictions: u64) -> String {
        self.evictions.set(evictions as i64);
        self.registry.render_text()
    }
}

/// Plain-value view of [`ServiceStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
    pub cost_rejections: u64,
    pub latency_p50_us: u64,
    pub latency_p99_us: u64,
}

impl StatsSnapshot {
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of requests that avoided the full pipeline.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_us() {
        let s = ServiceStats::default();
        let h = &s.latency;
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap[0], 1); // [1, 2) µs
        assert_eq!(snap[1], 1); // [2, 4) µs
        assert_eq!(snap[9], 1); // [512, 1024) µs
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_are_monotone() {
        let s = ServiceStats::default();
        let h = &s.latency;
        for us in [1u64, 2, 4, 8, 16, 500, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert!(h.quantile_us(0.5) <= h.quantile_us(0.99));
        assert!(h.quantile_us(0.99) >= 100_000);
    }

    #[test]
    fn bucket_bounds_match_snapshot_semantics() {
        assert_eq!(LatencyHistogram::bucket_bounds_us(0), (0, 1));
        assert_eq!(LatencyHistogram::bucket_bounds_us(9), (512, 1023));
        assert_eq!(
            LatencyHistogram::bucket_bounds_us(LATENCY_BUCKETS - 1),
            (1 << (LATENCY_BUCKETS - 1), u64::MAX),
            "the tail bucket absorbs everything beyond"
        );
        assert_eq!(LatencyHistogram::bucket_label(9), "512..1023us");
        // A sample beyond the 32-bucket range folds into the tail bucket
        // of the snapshot view.
        let s = ServiceStats::default();
        s.latency.record(Duration::from_secs(1 << 40));
        assert_eq!(s.latency.snapshot()[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn hit_rate() {
        let s = ServiceStats::default();
        s.hits.add(3);
        s.misses.add(1);
        let snap = s.snapshot(0);
        assert_eq!(snap.requests(), 4);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_text_exposes_all_counters_with_labeled_buckets() {
        let s = ServiceStats::default();
        s.hits.add(5);
        s.misses.add(2);
        s.coalesced.add(1);
        s.cost_rejections.add(1);
        s.latency.record(Duration::from_micros(700));
        let text = s.render_text(9);
        for line in [
            "spores_service_hits 5",
            "spores_service_misses 2",
            "spores_service_coalesced 1",
            "spores_service_cost_rejections 1",
            "spores_service_evictions 9",
            "spores_service_latency_us_bucket{le=\"1023\"} 1",
            "spores_service_latency_us_bucket{le=\"+Inf\"} 1",
            "spores_service_latency_us_count 1",
        ] {
            assert!(text.contains(line), "missing '{line}' in:\n{text}");
        }
    }

    #[test]
    fn stats_registries_are_isolated_per_service() {
        let a = ServiceStats::default();
        let b = ServiceStats::default();
        a.hits.add(7);
        assert_eq!(b.snapshot(0).hits, 0);
        assert!(b.render_text(0).contains("spores_service_hits 0"));
    }
}
