//! Shape-polymorphic plan fingerprints.
//!
//! A production optimizer re-compiles the *same* algebraic shapes over and
//! over: model-serving fleets re-optimize one script per request, iterative
//! scripts re-optimize their loop body every epoch, and only the leaf
//! dimensions and sparsities drift. The fingerprint makes that reuse
//! addressable: it canonicalizes the expression DAG with leaf symbols
//! α-renamed (the first leaf in canonical order becomes slot 0, the next
//! distinct one slot 1, …) and leaf dimensions abstracted into coarse
//! [`LeafClass`]es (scalar / row / col / matrix × sparsity bucket), so two
//! requests that differ only in names and sizes map to the same key.
//!
//! The canonical form is a linear DAG serialization — not a tree
//! unfolding — so fingerprints of heavily shared expressions stay linear
//! in the arena, and two hash-consed arenas describing the same DAG
//! serialize identically regardless of node-insertion order.

use crate::arena::{ExprArena, LaNode, NodeId};
use crate::shape::Shape;
use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// Coarse shape of a leaf: the four regimes the rewrite rules care about.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ShapeClass {
    /// `1×1`.
    Scalar,
    /// `1×N`, `N > 1`.
    Row,
    /// `M×1`, `M > 1`.
    Col,
    /// `M×N`, both `> 1`.
    Mat,
}

impl ShapeClass {
    pub fn of(shape: Shape) -> ShapeClass {
        match (shape.rows, shape.cols) {
            (1, 1) => ShapeClass::Scalar,
            (1, _) => ShapeClass::Row,
            (_, 1) => ShapeClass::Col,
            _ => ShapeClass::Mat,
        }
    }

    fn code(self) -> char {
        match self {
            ShapeClass::Scalar => 's',
            ShapeClass::Row => 'r',
            ShapeClass::Col => 'c',
            ShapeClass::Mat => 'm',
        }
    }
}

/// Sparsity regime of a leaf, bucketed so nearby densities share plans.
///
/// The boundaries straddle the densities the cost model's plan choices
/// actually flip on: fully-dense factors, mildly sparse data, the ~1%
/// regime of the evaluation workloads, and hyper-sparse inputs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SparsityBucket {
    /// `nnz/size ≥ 0.5` — treat as dense.
    Dense,
    /// `[0.05, 0.5)`.
    Loose,
    /// `[0.005, 0.05)` — the workloads' 1% regime.
    Sparse,
    /// `< 0.005` — the headline example's 0.1% regime.
    Hyper,
}

impl SparsityBucket {
    pub fn of(sparsity: f64) -> SparsityBucket {
        if sparsity >= 0.5 {
            SparsityBucket::Dense
        } else if sparsity >= 0.05 {
            SparsityBucket::Loose
        } else if sparsity >= 0.005 {
            SparsityBucket::Sparse
        } else {
            SparsityBucket::Hyper
        }
    }

    fn code(self) -> char {
        match self {
            SparsityBucket::Dense => 'D',
            SparsityBucket::Loose => 'L',
            SparsityBucket::Sparse => 'S',
            SparsityBucket::Hyper => 'H',
        }
    }
}

/// Abstracted metadata of one leaf variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct LeafClass {
    pub shape: ShapeClass,
    pub sparsity: SparsityBucket,
}

impl LeafClass {
    pub fn classify(shape: Shape, sparsity: f64) -> LeafClass {
        LeafClass {
            shape: ShapeClass::of(shape),
            sparsity: SparsityBucket::of(sparsity),
        }
    }
}

impl fmt::Display for LeafClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.shape.code(), self.sparsity.code())
    }
}

/// A leaf variable with no entry in the classification map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FingerprintError {
    pub var: Symbol,
}

impl fmt::Display for FingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no leaf class for variable {}", self.var)
    }
}

impl std::error::Error for FingerprintError {}

/// The canonical identity of an optimization request.
///
/// `canon` is an exact structural key (two requests collide iff their DAGs
/// are identical after α-renaming and shape abstraction); `hash` is a
/// 64-bit digest of it for cheap sharding and table lookup. `slots`
/// records, per α-slot, which of the *caller's* symbols it stands for —
/// the map a cached plan template is re-instantiated through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    hash: u64,
    canon: String,
    slots: Vec<Symbol>,
    classes: Vec<LeafClass>,
}

impl Fingerprint {
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The exact canonical serialization (collision-free cache key).
    pub fn canon(&self) -> &str {
        &self.canon
    }

    /// Caller symbol standing behind each α-slot, in slot order.
    pub fn slots(&self) -> &[Symbol] {
        &self.slots
    }

    /// Leaf class of each slot, in slot order.
    pub fn classes(&self) -> &[LeafClass] {
        &self.classes
    }

    /// The interned symbol a plan template uses for slot `k` (`$0`, `$1`, …).
    pub fn slot_symbol(k: usize) -> Symbol {
        Symbol::new(&format!("${k}"))
    }

    /// `caller symbol → slot symbol`: α-renames a request into template space.
    pub fn to_template_map(&self) -> HashMap<Symbol, Symbol> {
        self.slots
            .iter()
            .enumerate()
            .map(|(k, &sym)| (sym, Fingerprint::slot_symbol(k)))
            .collect()
    }

    /// `slot symbol → caller symbol`: instantiates a template for this request.
    pub fn from_template_map(&self) -> HashMap<Symbol, Symbol> {
        self.slots
            .iter()
            .enumerate()
            .map(|(k, &sym)| (Fingerprint::slot_symbol(k), sym))
            .collect()
    }
}

/// FNV-1a, inlined so `spores-ir` stays dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint the DAG rooted at `root`.
///
/// `classes` must cover every free variable of the expression. Scalar
/// literals are kept concrete (they are algebraically significant:
/// `x^2` and `x^3` must not share plans); `Fill` nodes keep their concrete
/// dimensions (they are rare in source programs and dimension-bearing by
/// construction).
pub fn fingerprint(
    arena: &ExprArena,
    root: NodeId,
    classes: &HashMap<Symbol, LeafClass>,
) -> Result<Fingerprint, FingerprintError> {
    let (fp, _) = fingerprint_roots(arena, &[root], classes)?;
    Ok(fp)
}

/// Fingerprint a whole *workload*: the multi-root DAG of all statement
/// roots, in root order. The canonical form extends the single-root one
/// with per-root markers (`R<node>:<slot|_>`) recording which canonical
/// node each root selects and — when the root's name is itself read as a
/// leaf by a later statement (SSA def-use wiring) — which α-slot that
/// name occupies, so two workloads only collide when their statements,
/// their sharing structure, *and* their def-use wiring all coincide.
pub fn fingerprint_workload(
    arena: &ExprArena,
    roots: &[(Symbol, NodeId)],
    classes: &HashMap<Symbol, LeafClass>,
) -> Result<Fingerprint, FingerprintError> {
    use std::fmt::Write;
    let ids: Vec<NodeId> = roots.iter().map(|&(_, id)| id).collect();
    let (mut fp, canon_ix) = fingerprint_roots(arena, &ids, classes)?;
    for (name, id) in roots {
        match fp.slots.iter().position(|s| s == name) {
            Some(slot) => write!(fp.canon, "R{}:{slot};", canon_ix[id]).unwrap(),
            None => write!(fp.canon, "R{}:_;", canon_ix[id]).unwrap(),
        }
    }
    fp.hash = fnv1a(fp.canon.as_bytes());
    Ok(fp)
}

/// Shared serializer; also returns the canonical node numbering so
/// multi-root callers can reference nodes without re-traversing.
fn fingerprint_roots(
    arena: &ExprArena,
    roots: &[NodeId],
    classes: &HashMap<Symbol, LeafClass>,
) -> Result<(Fingerprint, HashMap<NodeId, usize>), FingerprintError> {
    use std::fmt::Write;

    // The postorder sequence is determined purely by the DAG structure
    // (children are followed in operand order and shared nodes are
    // visited once), so numbering nodes by their position in it is
    // canonical across arenas with different insertion orders.
    let order = arena.postorder_multi(roots);
    let mut canon_ix: HashMap<NodeId, usize> = HashMap::with_capacity(order.len());
    let mut slots: Vec<Symbol> = Vec::new();
    let mut slot_classes: Vec<LeafClass> = Vec::new();
    let mut canon = String::with_capacity(order.len() * 8);

    for (ix, &id) in order.iter().enumerate() {
        canon_ix.insert(id, ix);
        match arena.node(id) {
            LaNode::Var(v) => {
                let slot = match slots.iter().position(|s| s == v) {
                    Some(k) => k,
                    None => {
                        let class = *classes.get(v).ok_or(FingerprintError { var: *v })?;
                        slots.push(*v);
                        slot_classes.push(class);
                        slots.len() - 1
                    }
                };
                write!(canon, "v{slot}:{};", slot_classes[slot]).unwrap();
            }
            LaNode::Scalar(n) => {
                write!(canon, "s{:016x};", n.get().to_bits()).unwrap();
            }
            LaNode::Fill(n, r, c) => {
                write!(canon, "f{:016x}:{r}x{c};", n.get().to_bits()).unwrap();
            }
            LaNode::Un(op, a) => {
                write!(canon, "{}({});", op.name(), canon_ix[a]).unwrap();
            }
            LaNode::Bin(op, a, b) => {
                write!(canon, "{}({},{});", op.token(), canon_ix[a], canon_ix[b]).unwrap();
            }
        }
    }

    Ok((
        Fingerprint {
            hash: fnv1a(canon.as_bytes()),
            canon,
            slots,
            classes: slot_classes,
        },
        canon_ix,
    ))
}

impl ExprArena {
    /// Rebuild the DAG rooted at `root` into a fresh arena with leaf
    /// variables renamed through `map` (symbols absent from the map are
    /// kept). Hash-consing in the target arena preserves sharing.
    pub fn rename_vars(&self, root: NodeId, map: &HashMap<Symbol, Symbol>) -> (ExprArena, NodeId) {
        let (out, roots) = self.rename_vars_multi(&[root], map);
        (out, roots[0])
    }

    /// [`ExprArena::rename_vars`] over a multi-root DAG: all roots land in
    /// one fresh arena, so sub-plans shared across roots stay shared.
    pub fn rename_vars_multi(
        &self,
        roots: &[NodeId],
        map: &HashMap<Symbol, Symbol>,
    ) -> (ExprArena, Vec<NodeId>) {
        let mut out = ExprArena::new();
        let new_roots = roots.iter().map(|&r| out.graft(self, r, map)).collect();
        (out, new_roots)
    }

    /// Copy the DAG rooted at `root` of `src` into `self`, renaming leaf
    /// variables through `map`. Hash-consing in `self` shares structure
    /// with everything already grafted, which is what lets a workload
    /// bundle accumulate statements with cross-statement sharing.
    pub fn graft(
        &mut self,
        src: &ExprArena,
        root: NodeId,
        map: &HashMap<Symbol, Symbol>,
    ) -> NodeId {
        let mut new_id: HashMap<NodeId, NodeId> = HashMap::new();
        for id in src.postorder(root) {
            let node = match src.node(id) {
                LaNode::Var(v) => LaNode::Var(*map.get(v).unwrap_or(v)),
                LaNode::Un(op, a) => LaNode::Un(*op, new_id[a]),
                LaNode::Bin(op, a, b) => LaNode::Bin(*op, new_id[a], new_id[b]),
                leaf => *leaf,
            };
            new_id.insert(id, self.insert(node));
        }
        new_id[&root]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn classes(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, LeafClass> {
        list.iter()
            .map(|&(n, (r, c), s)| (Symbol::new(n), LeafClass::classify(Shape::new(r, c), s)))
            .collect()
    }

    fn fp(src: &str, cls: &HashMap<Symbol, LeafClass>) -> Fingerprint {
        let mut a = ExprArena::new();
        let root = parse_expr(&mut a, src).unwrap();
        fingerprint(&a, root, cls).unwrap()
    }

    #[test]
    fn alpha_renaming_and_dims_are_abstracted() {
        let a = fp(
            "sum((X - u %*% t(v))^2)",
            &classes(&[
                ("X", (1000, 500), 0.001),
                ("u", (1000, 1), 1.0),
                ("v", (500, 1), 1.0),
            ]),
        );
        let b = fp(
            "sum((M - p %*% t(q))^2)",
            &classes(&[
                ("M", (800, 900), 0.002),
                ("p", (800, 1), 0.7),
                ("q", (900, 1), 1.0),
            ]),
        );
        assert_eq!(a.canon(), b.canon());
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.slots().len(), 3);
        // slots pair up positionally across the two requests
        for (sa, sb) in a.slots().iter().zip(b.slots()) {
            let map: HashMap<&str, &str> = [("X", "M"), ("u", "p"), ("v", "q")].into();
            assert_eq!(map[&*sa.to_string()], &*sb.to_string());
        }
    }

    #[test]
    fn sparsity_bucket_distinguishes_regimes() {
        let dense = classes(&[("X", (100, 100), 1.0)]);
        let sparse = classes(&[("X", (100, 100), 0.01)]);
        assert_ne!(
            fp("sum(X^2)", &dense).hash(),
            fp("sum(X^2)", &sparse).hash()
        );
    }

    #[test]
    fn shape_class_distinguishes_vectors_from_matrices() {
        let col = classes(&[("X", (100, 1), 1.0)]);
        let mat = classes(&[("X", (100, 100), 1.0)]);
        assert_ne!(fp("sum(X^2)", &col).canon(), fp("sum(X^2)", &mat).canon());
    }

    #[test]
    fn literals_stay_concrete() {
        let cls = classes(&[("X", (100, 100), 1.0)]);
        assert_ne!(fp("sum(X^2)", &cls).canon(), fp("sum(X^3)", &cls).canon());
    }

    #[test]
    fn insertion_order_is_canonicalized() {
        let cls = classes(&[("A", (10, 10), 1.0), ("B", (10, 10), 1.0)]);
        // same DAG, different arena insertion orders
        let mut a1 = ExprArena::new();
        let x = a1.var("A");
        let y = a1.var("B");
        let r1 = a1.mul(x, y);
        let mut a2 = ExprArena::new();
        let junk = a2.var("B"); // B interned first this time
        let _ = a2.t(junk);
        let x = a2.var("A");
        let r2 = a2.mul(x, junk);
        let f1 = fingerprint(&a1, r1, &cls).unwrap();
        let f2 = fingerprint(&a2, r2, &cls).unwrap();
        assert_eq!(f1.canon(), f2.canon());
        assert_eq!(f1.slots(), f2.slots());
    }

    #[test]
    fn distinct_structure_distinct_fingerprint() {
        let cls = classes(&[("A", (10, 10), 1.0), ("B", (10, 10), 1.0)]);
        assert_ne!(fp("A + B", &cls).canon(), fp("A * B", &cls).canon());
        // A+A has one slot, A+B two
        assert_ne!(fp("A + A", &cls).canon(), fp("A + B", &cls).canon());
        // A+B and B+A are α-equivalent when the leaf classes agree (the
        // slot maps reconcile the operand order) …
        assert_eq!(fp("A + B", &cls).canon(), fp("B + A", &cls).canon());
        // … but not when the operands live in different regimes.
        let mixed = classes(&[("A", (10, 10), 1.0), ("B", (10, 10), 0.001)]);
        assert_ne!(fp("A + B", &mixed).canon(), fp("B + A", &mixed).canon());
    }

    #[test]
    fn sharing_is_canonical_via_hash_consing() {
        // (A*B) + (A*B): hash-consing collapses the shared product in both
        // arenas, so the canon is a DAG serialization of 4 nodes.
        let cls = classes(&[("A", (10, 10), 1.0), ("B", (10, 10), 1.0)]);
        let f = fp("A * B + A * B", &cls);
        assert_eq!(f.canon().matches(';').count(), 4);
    }

    fn wfp(stmts: &[(&str, &str)], cls: &HashMap<Symbol, LeafClass>) -> Fingerprint {
        let mut a = ExprArena::new();
        let roots: Vec<(Symbol, NodeId)> = stmts
            .iter()
            .map(|&(n, src)| (Symbol::new(n), parse_expr(&mut a, src).unwrap()))
            .collect();
        fingerprint_workload(&a, &roots, cls).unwrap()
    }

    #[test]
    fn workload_fingerprint_alpha_renames_across_statements() {
        let a = wfp(
            &[("g", "X %*% v"), ("h", "sum(g * g) + sum(X)")],
            &classes(&[
                ("X", (100, 50), 0.01),
                ("v", (50, 1), 1.0),
                ("g", (100, 1), 1.0),
            ]),
        );
        let b = wfp(
            &[("p", "M %*% w"), ("q", "sum(p * p) + sum(M)")],
            &classes(&[
                ("M", (900, 40), 0.02),
                ("w", (40, 1), 1.0),
                ("p", (900, 1), 1.0),
            ]),
        );
        assert_eq!(a.canon(), b.canon());
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn workload_fingerprint_captures_def_use_wiring() {
        let cls = classes(&[
            ("X", (100, 50), 0.01),
            ("v", (50, 1), 1.0),
            ("g", (100, 1), 1.0),
            ("u", (100, 1), 1.0),
        ]);
        // same statement texts, but the second workload reads an *input*
        // `u` where the first reads the earlier root `g`
        let wired = wfp(&[("g", "X %*% v"), ("out", "sum(g * g)")], &cls);
        let unwired = wfp(&[("h", "X %*% v"), ("out", "sum(u * u)")], &cls);
        assert_ne!(wired.canon(), unwired.canon());
    }

    #[test]
    fn workload_fingerprint_distinguishes_root_selection() {
        let cls = classes(&[("A", (10, 10), 1.0), ("B", (10, 10), 1.0)]);
        // same DAG, roots select different nodes
        let mut a1 = ExprArena::new();
        let x = a1.var("A");
        let y = a1.var("B");
        let m = a1.mul(x, y);
        let s = a1.sum(m);
        let f1 = fingerprint_workload(&a1, &[(Symbol::new("r"), s)], &cls).unwrap();
        let f2 = fingerprint_workload(&a1, &[(Symbol::new("r"), m)], &cls).unwrap();
        assert_ne!(f1.canon(), f2.canon());
        // and a single-root workload differs from the two-root one
        let f3 = fingerprint_workload(&a1, &[(Symbol::new("r"), s), (Symbol::new("q"), m)], &cls)
            .unwrap();
        assert_ne!(f1.canon(), f3.canon());
    }

    #[test]
    fn rename_vars_multi_preserves_sharing() {
        let mut a = ExprArena::new();
        let r1 = parse_expr(&mut a, "sum(W %*% H)").unwrap();
        let r2 = parse_expr(&mut a, "sum(X * log(W %*% H))").unwrap();
        let map: HashMap<Symbol, Symbol> = [(Symbol::new("W"), Symbol::new("$0"))].into();
        let (out, roots) = a.rename_vars_multi(&[r1, r2], &map);
        assert_eq!(roots.len(), 2);
        // the shared W %*% H survived as one node
        let shared: Vec<NodeId> = out
            .postorder_multi(&roots)
            .into_iter()
            .filter(|&id| matches!(out.node(id), LaNode::Bin(crate::arena::BinOp::MatMul, _, _)))
            .collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(out.display(shared[0]), "$0 %*% H");
    }

    #[test]
    fn rename_vars_roundtrip() {
        let mut a = ExprArena::new();
        let root = parse_expr(&mut a, "sum((X - u %*% t(v))^2)").unwrap();
        let cls = classes(&[
            ("X", (1000, 500), 0.001),
            ("u", (1000, 1), 1.0),
            ("v", (500, 1), 1.0),
        ]);
        let f = fingerprint(&a, root, &cls).unwrap();
        let (tpl, tpl_root) = a.rename_vars(root, &f.to_template_map());
        assert_eq!(
            tpl.free_vars(tpl_root),
            (0..3).map(Fingerprint::slot_symbol).collect::<Vec<_>>()
        );
        let (back, back_root) = tpl.rename_vars(tpl_root, &f.from_template_map());
        assert_eq!(back.display(back_root), a.display(root));
    }
}
