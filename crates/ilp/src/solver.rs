//! Exact branch & bound over the CNF + linear-objective problems.
//!
//! A DPLL-style search: unit propagation after every decision, branching
//! false-first (all objective weights are non-negative, so the cheap
//! branch is explored first), and pruning any branch whose accumulated
//! cost already matches the incumbent. The search is exhaustive, so the
//! returned solution is optimal — the guarantee the paper gets from
//! Gurobi.

use crate::problem::Problem;
use std::time::{Duration, Instant};

/// A satisfying assignment with its objective value.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    pub assignment: Vec<bool>,
    pub cost: f64,
}

/// Outcome of [`Solver::solve`].
#[derive(Clone, Debug, PartialEq)]
pub enum SolveResult {
    /// Search completed; this is the global optimum.
    Optimal(Solution),
    /// No assignment satisfies the constraints.
    Infeasible,
    /// A limit tripped; the incumbent (if any) may be sub-optimal.
    Unknown(Option<Solution>),
}

impl SolveResult {
    /// The best solution found, if any (optimal or incumbent).
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SolveResult::Optimal(s) => Some(s),
            SolveResult::Unknown(s) => s.as_ref(),
            SolveResult::Infeasible => None,
        }
    }
}

/// Branch & bound solver with time and node limits.
#[derive(Clone, Debug)]
pub struct Solver {
    pub time_limit: Duration,
    pub node_limit: u64,
    /// Warm-start incumbent bound: the objective value of a solution the
    /// caller already knows to be achievable (e.g. the greedy extraction's
    /// plan). Branches whose accumulated cost strictly exceeds the bound
    /// are pruned before any incumbent is found, which is where
    /// branch-and-bound loses most of its time on cold starts.
    ///
    /// Solutions *equal* to the bound are still found (pruning is strict),
    /// so with an achievable bound [`SolveResult::Infeasible`] keeps its
    /// meaning. With an unachievably low bound, `Infeasible` means "no
    /// solution within the bound".
    pub upper_bound: Option<f64>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            time_limit: Duration::from_secs(10),
            node_limit: 10_000_000,
            upper_bound: None,
        }
    }
}

impl Solver {
    /// This solver with a warm-start incumbent upper bound.
    pub fn with_upper_bound(mut self, bound: f64) -> Self {
        self.upper_bound = Some(bound);
        self
    }
}

const UNASSIGNED: i8 = -1;

struct Search<'p> {
    problem: &'p Problem,
    /// var -> clause indices containing it
    occurs: Vec<Vec<u32>>,
    assign: Vec<i8>,
    trail: Vec<u32>,
    cost: f64,
    best: Option<Solution>,
    /// caller-provided achievable objective value (warm start)
    upper_bound: Option<f64>,
    /// branchable vars, most expensive first
    branch_order: Vec<u32>,
    nodes: u64,
}

enum Propagation {
    Ok,
    Conflict,
}

impl<'p> Search<'p> {
    fn new(problem: &'p Problem, upper_bound: Option<f64>) -> Self {
        let n = problem.n_vars() as usize;
        let mut occurs = vec![Vec::new(); n];
        for (ci, clause) in problem.clauses.iter().enumerate() {
            for lit in &clause.lits {
                occurs[lit.var as usize].push(ci as u32);
            }
        }
        // Branch only on vars that occur in constraints; others default to
        // false (they can only add cost). Most expensive first, so the
        // false-branch prunes the largest weights early.
        let mut branch_order: Vec<u32> = (0..problem.n_vars())
            .filter(|&v| !occurs[v as usize].is_empty())
            .collect();
        branch_order.sort_by(|&a, &b| {
            problem.objective[b as usize]
                .partial_cmp(&problem.objective[a as usize])
                .unwrap()
        });
        Search {
            problem,
            occurs,
            assign: vec![UNASSIGNED; n],
            trail: Vec::new(),
            cost: 0.0,
            best: None,
            upper_bound,
            branch_order,
            nodes: 0,
        }
    }

    fn assign(&mut self, var: u32, value: bool) {
        debug_assert_eq!(self.assign[var as usize], UNASSIGNED);
        self.assign[var as usize] = i8::from(value);
        self.trail.push(var);
        if value {
            self.cost += self.problem.objective[var as usize];
        }
    }

    fn unassign_to(&mut self, trail_len: usize) {
        while self.trail.len() > trail_len {
            let var = self.trail.pop().expect("trail non-empty");
            if self.assign[var as usize] == 1 {
                self.cost -= self.problem.objective[var as usize];
            }
            self.assign[var as usize] = UNASSIGNED;
        }
    }

    fn bound_exceeded(&self) -> bool {
        // Against the incumbent the check is ≥: an equal-cost solution is
        // redundant. Against the warm-start bound it is strictly >: the
        // bound's own solution must remain findable so completing the
        // search still proves optimality.
        if let Some(best) = &self.best {
            if self.cost >= best.cost - 1e-12 {
                return true;
            }
        }
        match self.upper_bound {
            // relative epsilon: objectives are nnz-scale (up to ~1e8+),
            // where an absolute 1e-9 is below one ulp and summation-order
            // drift between the caller's bound and our accumulation could
            // otherwise prune the bound's own solution
            Some(ub) => self.cost > ub + ub.abs() * 1e-9 + 1e-9,
            None => false,
        }
    }

    /// Unit-propagate from `start` (index into the trail).
    fn propagate(&mut self, mut start: usize) -> Propagation {
        while start < self.trail.len() {
            let var = self.trail[start];
            start += 1;
            for ci in self.occurs[var as usize].clone() {
                let clause = &self.problem.clauses[ci as usize];
                let mut satisfied = false;
                let mut unassigned = None;
                let mut n_unassigned = 0;
                for lit in &clause.lits {
                    match self.assign[lit.var as usize] {
                        UNASSIGNED => {
                            n_unassigned += 1;
                            unassigned = Some(*lit);
                        }
                        v => {
                            if lit.satisfied_by(v == 1) {
                                satisfied = true;
                                break;
                            }
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return Propagation::Conflict,
                    1 => {
                        let lit = unassigned.expect("one unassigned literal");
                        self.assign(lit.var, lit.positive);
                        if self.bound_exceeded() {
                            return Propagation::Conflict;
                        }
                    }
                    _ => {}
                }
            }
        }
        Propagation::Ok
    }

    fn next_branch_var(&self) -> Option<u32> {
        self.branch_order
            .iter()
            .copied()
            .find(|&v| self.assign[v as usize] == UNASSIGNED)
    }

    fn record_solution(&mut self) {
        // Unbranched vars default to false.
        let assignment: Vec<bool> = self.assign.iter().map(|&a| a == 1).collect();
        debug_assert!(self.problem.check(&assignment));
        let cost = self.cost;
        if self.best.as_ref().is_none_or(|b| cost < b.cost - 1e-12) {
            self.best = Some(Solution { assignment, cost });
        }
    }

    /// Exhaustive DFS with an explicit decision stack.
    /// Returns false if a limit tripped before the search completed.
    fn run(&mut self, deadline: Instant, node_limit: u64) -> bool {
        // decision: (trail length before the decision, var, tried_true)
        let mut decisions: Vec<(usize, u32, bool)> = Vec::new();

        // initial propagation of unit clauses
        let units: Vec<_> = self
            .problem
            .clauses
            .iter()
            .filter(|c| c.lits.len() == 1)
            .map(|c| c.lits[0])
            .collect();
        for lit in units {
            match self.assign[lit.var as usize] {
                UNASSIGNED => self.assign(lit.var, lit.positive),
                v => {
                    if !lit.satisfied_by(v == 1) {
                        return true; // contradictory units: infeasible, search done
                    }
                }
            }
        }
        let mut status = self.propagate(0);

        loop {
            self.nodes += 1;
            if self.nodes >= node_limit || Instant::now() >= deadline {
                return false;
            }
            let conflict = matches!(status, Propagation::Conflict) || self.bound_exceeded();
            if conflict {
                // backtrack: find a decision to flip
                loop {
                    match decisions.pop() {
                        None => return true, // search exhausted
                        Some((trail_len, var, tried_true)) => {
                            self.unassign_to(trail_len);
                            if !tried_true {
                                decisions.push((trail_len, var, true));
                                let prop_from = self.trail.len();
                                self.assign(var, true);
                                status = if self.bound_exceeded() {
                                    Propagation::Conflict
                                } else {
                                    self.propagate(prop_from)
                                };
                                break;
                            }
                        }
                    }
                }
                continue;
            }
            match self.next_branch_var() {
                None => {
                    self.record_solution();
                    // force a backtrack to continue exploring
                    status = Propagation::Conflict;
                }
                Some(var) => {
                    decisions.push((self.trail.len(), var, false));
                    let prop_from = self.trail.len();
                    self.assign(var, false);
                    status = self.propagate(prop_from);
                }
            }
        }
    }
}

impl Solver {
    /// Solve `problem` to optimality (or until a limit trips).
    pub fn solve(&self, problem: &Problem) -> SolveResult {
        let mut span = spores_telemetry::span!(
            "ilp.solve",
            n_vars = problem.n_vars() as u64,
            n_clauses = problem.clauses.len(),
        );
        // trivially infeasible: an empty clause
        if problem.clauses.iter().any(|c| c.lits.is_empty()) {
            return SolveResult::Infeasible;
        }
        let mut search = Search::new(problem, self.upper_bound);
        let completed = search.run(Instant::now() + self.time_limit, self.node_limit);
        span.arg("completed", completed);
        match (completed, search.best) {
            (true, Some(best)) => SolveResult::Optimal(best),
            (true, None) => SolveResult::Infeasible,
            (false, best) => SolveResult::Unknown(best),
        }
    }
}

/// Exhaustive reference solver for testing (exponential; `n_vars ≤ 24`).
pub fn brute_force(problem: &Problem) -> Option<Solution> {
    let n = problem.n_vars() as usize;
    assert!(n <= 24, "brute force limited to 24 variables");
    let mut best: Option<Solution> = None;
    for bits in 0u64..(1 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if !problem.check(&assignment) {
            continue;
        }
        let cost = problem.cost(&assignment);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Solution { assignment, cost });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn solve(p: &Problem) -> SolveResult {
        Solver::default().solve(p)
    }

    #[test]
    fn unconstrained_vars_stay_false() {
        let mut p = Problem::new();
        let _a = p.add_var(5.0);
        let b = p.add_var(1.0);
        p.require(b);
        match solve(&p) {
            SolveResult::Optimal(s) => {
                assert_eq!(s.cost, 1.0);
                assert_eq!(s.assignment, vec![false, true]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let a = p.add_var(1.0);
        p.require(a);
        p.forbid_all(&[a]);
        assert_eq!(solve(&p), SolveResult::Infeasible);
    }

    #[test]
    fn empty_clause_infeasible() {
        let mut p = Problem::new();
        p.add_var(1.0);
        p.add_clause(vec![]);
        assert_eq!(solve(&p), SolveResult::Infeasible);
    }

    #[test]
    fn picks_cheaper_disjunct() {
        let mut p = Problem::new();
        let root = p.add_var(0.0);
        let cheap = p.add_var(1.0);
        let pricey = p.add_var(10.0);
        p.require(root);
        p.imply_any(root, &[cheap, pricey]);
        let s = solve(&p);
        let sol = s.solution().unwrap();
        assert_eq!(sol.cost, 1.0);
        assert!(sol.assignment[cheap as usize]);
        assert!(!sol.assignment[pricey as usize]);
    }

    #[test]
    fn figure_10_cse_instance() {
        // The paper's Figure 10: greedy picks 1 then pays 4+4; optimal
        // picks 2 and shares the 4. Encoded as the corresponding AND-OR
        // selection problem.
        let mut p = Problem::new();
        let root = p.add_var(0.0);
        let left = p.add_var(1.0); // needs its own node of cost 4
        let right = p.add_var(2.0); // shares the node of cost 4
        let own4 = p.add_var(4.0);
        let shared4 = p.add_var(4.0);
        p.require(root);
        // the left child class offers two ops: `left` (cost 1, needing
        // its own cost-4 node) or `left_alt` (cost 2, sharing the cost-4
        // node the right child already uses)
        let left_alt = p.add_var(2.0);
        p.add_clause(vec![
            crate::problem::Lit::neg(root),
            crate::problem::Lit::pos(left),
            crate::problem::Lit::pos(left_alt),
        ]);
        p.imply_any(root, &[right]);
        p.imply(left, own4);
        p.imply(left_alt, shared4);
        p.imply(right, shared4);
        let sol = solve(&p);
        let sol = sol.solution().unwrap();
        // optimal: root + right(2) + left_alt(2) + shared4(4) = 8,
        // cheaper than root + left(1) + own4(4) + right(2) + shared4(4) = 11
        assert_eq!(sol.cost, 8.0);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..200 {
            let n = rng.random_range(1..=10usize);
            let mut p = Problem::new();
            for _ in 0..n {
                p.add_var((rng.random_range(0..100u32)) as f64);
            }
            let n_clauses = rng.random_range(0..=12usize);
            for _ in 0..n_clauses {
                let len = rng.random_range(1..=3usize);
                let lits: Vec<_> = (0..len)
                    .map(|_| {
                        let var = rng.random_range(0..n as u32);
                        if rng.random_bool(0.5) {
                            crate::problem::Lit::pos(var)
                        } else {
                            crate::problem::Lit::neg(var)
                        }
                    })
                    .collect();
                p.add_clause(lits);
            }
            let expect = brute_force(&p);
            match (solve(&p), expect) {
                (SolveResult::Optimal(got), Some(want)) => {
                    assert!(
                        (got.cost - want.cost).abs() < 1e-9,
                        "round {round}: got {} want {}",
                        got.cost,
                        want.cost
                    );
                    assert!(p.check(&got.assignment));
                }
                (SolveResult::Infeasible, None) => {}
                (got, want) => panic!("round {round}: got {got:?}, want {want:?}"),
            }
        }
    }

    #[test]
    fn chain_of_implications() {
        // root -> v1 -> v2 -> ... -> v20, all must be true
        let mut p = Problem::new();
        let vars: Vec<u32> = (0..21).map(|i| p.add_var(i as f64)).collect();
        p.require(vars[0]);
        for w in vars.windows(2) {
            p.imply(w[0], w[1]);
        }
        let sol = solve(&p);
        let sol = sol.solution().unwrap();
        assert_eq!(sol.cost, (0..21).sum::<i32>() as f64);
        assert!(sol.assignment.iter().all(|&b| b));
    }

    #[test]
    fn warm_start_agrees_with_cold_solve() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..100 {
            let n = rng.random_range(1..=10usize);
            let mut p = Problem::new();
            for _ in 0..n {
                p.add_var((rng.random_range(0..100u32)) as f64);
            }
            for _ in 0..rng.random_range(0..=10usize) {
                let len = rng.random_range(1..=3usize);
                let lits: Vec<_> = (0..len)
                    .map(|_| {
                        let var = rng.random_range(0..n as u32);
                        if rng.random_bool(0.5) {
                            crate::problem::Lit::pos(var)
                        } else {
                            crate::problem::Lit::neg(var)
                        }
                    })
                    .collect();
                p.add_clause(lits);
            }
            let cold = solve(&p);
            // warm-start from an achievable bound: a feasible solution's
            // cost (brute force gives us one); result must be unchanged
            let Some(feasible) = brute_force(&p) else {
                assert_eq!(cold, SolveResult::Infeasible, "round {round}");
                continue;
            };
            let warm = Solver::default().with_upper_bound(feasible.cost).solve(&p);
            match (&cold, &warm) {
                (SolveResult::Optimal(c), SolveResult::Optimal(w)) => {
                    assert!(
                        (c.cost - w.cost).abs() < 1e-9,
                        "round {round}: cold {} warm {}",
                        c.cost,
                        w.cost
                    );
                    assert!(p.check(&w.assignment));
                }
                other => panic!("round {round}: {other:?}"),
            }
        }
    }

    #[test]
    fn tight_warm_start_bound_still_finds_the_optimum() {
        // bound == optimum: strict pruning must keep the optimal leaf
        let mut p = Problem::new();
        let root = p.add_var(0.0);
        let cheap = p.add_var(1.0);
        let pricey = p.add_var(10.0);
        p.require(root);
        p.imply_any(root, &[cheap, pricey]);
        let warm = Solver::default().with_upper_bound(1.0).solve(&p);
        match warm {
            SolveResult::Optimal(s) => assert_eq!(s.cost, 1.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unachievable_bound_reports_infeasible_within_bound() {
        let mut p = Problem::new();
        let a = p.add_var(5.0);
        p.require(a);
        let warm = Solver::default().with_upper_bound(1.0).solve(&p);
        assert_eq!(warm, SolveResult::Infeasible);
    }

    #[test]
    fn node_limit_returns_unknown() {
        let mut p = Problem::new();
        let vars: Vec<u32> = (0..30).map(|_| p.add_var(1.0)).collect();
        for w in vars.chunks(3) {
            p.add_clause(w.iter().map(|&v| crate::problem::Lit::pos(v)).collect());
        }
        let solver = Solver {
            node_limit: 3,
            ..Solver::default()
        };
        assert!(matches!(solver.solve(&p), SolveResult::Unknown(_)));
    }
}
