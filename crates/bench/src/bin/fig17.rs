//! Figure 17: performance impact of the saturation/extraction
//! strategies — SystemML (opt2) vs S+ILP vs S+greedy vs D+greedy.
//!
//! The paper's finding to reproduce: "Greedy extraction significantly
//! reduces compile time without sacrificing any performance gain" — the
//! run-time columns of S+ILP and S+greedy should match.

use spores_bench::{human, ms, Table};
use spores_core::ExtractorKind;
use spores_egraph::Scheduler;
use spores_ml::{run, Mode, Scale};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scales: Vec<Scale> = if small {
        vec![Scale::Small]
    } else {
        vec![Scale::Small, Scale::Medium]
    };
    let sampling = || Scheduler::Sampling {
        match_limit: 40,
        seed: 0xC0FFEE,
    };
    let modes: Vec<Mode> = vec![
        Mode::Opt2,
        Mode::Spores {
            scheduler: sampling(),
            extractor: ExtractorKind::Ilp,
        },
        Mode::Spores {
            scheduler: sampling(),
            extractor: ExtractorKind::Greedy,
        },
        Mode::Spores {
            scheduler: Scheduler::DepthFirst,
            extractor: ExtractorKind::Greedy,
        },
    ];
    println!("Figure 17: run time [ms] per saturation/extraction strategy");
    println!();
    let mut table = Table::new(&["Program", "Size", "Mode", "Exec ms", "Flops", "Compile ms"]);
    for &scale in &scales {
        for workload in spores_ml::figure15_suite(scale) {
            for mode in &modes {
                let report = run(&workload, mode).expect("run succeeds");
                table.row(&[
                    workload.name.to_string(),
                    workload.size_label.clone(),
                    report.mode.to_string(),
                    ms(report.exec_time),
                    human(report.stats.flops),
                    ms(report.compile.total),
                ]);
            }
        }
    }
    table.print();
}
