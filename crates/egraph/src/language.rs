//! The [`Language`] trait and flat term representation ([`RecExpr`]).
//!
//! A language is a set of operators with fixed arities; e-nodes are
//! operators whose children are e-class [`Id`]s. [`RecExpr`] stores a
//! concrete term as a post-order array (children precede parents), the
//! same representation egg uses.

use std::fmt;
use std::hash::{Hash, Hasher};

/// An e-class id (also used as node index inside a [`RecExpr`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(u32);

impl Id {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Id {
    fn from(v: usize) -> Id {
        Id(u32::try_from(v).expect("too many e-classes"))
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A hashable key identifying an e-node's operator head, used by the
/// e-graph's op-head index to narrow e-matching to candidate classes.
///
/// The contract mirrors [`Language::matches`]: whenever `a.matches(b)`,
/// `a.op_key() == b.op_key()` must hold. The reverse need not hold — a
/// key collision only costs a wasted `matches` check, never a missed
/// match.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpKey(u64);

impl OpKey {
    pub fn raw(self) -> u64 {
        self.0
    }

    pub fn from_raw(raw: u64) -> OpKey {
        OpKey(raw)
    }
}

/// Trait for e-node languages.
///
/// Implementors are plain enums whose variants embed child [`Id`]s; all
/// non-child payload (operator kind, symbols, constants) participates in
/// `Eq`/`Hash` so the e-graph can hash-cons nodes.
pub trait Language: Clone + Eq + Ord + std::hash::Hash + fmt::Debug {
    /// Child e-class ids, in argument order.
    fn children(&self) -> &[Id];

    /// Mutable access to the child ids (used for canonicalization).
    fn children_mut(&mut self) -> &mut [Id];

    /// Do `self` and `other` have the same operator (ignoring children)?
    fn matches(&self, other: &Self) -> bool;

    /// Operator spelling, used by pattern parsing and printing.
    fn op_display(&self) -> String;

    /// Build a node from an operator spelling and child ids.
    ///
    /// Used by the pattern and expression parsers.
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String>;

    /// The operator-head key for the e-graph's op index.
    ///
    /// The default is consistent with any `matches` that compares the
    /// enum discriminant for operators and full payload for leaves (all
    /// languages in this workspace): leaves hash their payload, interior
    /// nodes hash only their discriminant. Override if `matches` is
    /// coarser than the discriminant, keeping the invariant
    /// `a.matches(b) ⟹ a.op_key() == b.op_key()`.
    fn op_key(&self) -> OpKey {
        let mut h = crate::hash::FxHasher::default();
        if self.is_leaf() {
            self.hash(&mut h);
        } else {
            std::mem::discriminant(self).hash(&mut h);
        }
        OpKey(h.finish())
    }

    /// Replace every child with `f(child)`.
    fn map_children(mut self, mut f: impl FnMut(Id) -> Id) -> Self {
        for c in self.children_mut() {
            *c = f(*c);
        }
        self
    }

    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }
}

/// A term stored as a post-order array of nodes; the last node is the root.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L> Default for RecExpr<L> {
    fn default() -> Self {
        RecExpr { nodes: Vec::new() }
    }
}

impl<L: Language> RecExpr<L> {
    /// Append a node whose children must already be in the expression;
    /// returns its index as an [`Id`].
    pub fn add(&mut self, node: L) -> Id {
        debug_assert!(
            node.children().iter().all(|c| c.index() < self.nodes.len()),
            "node children must already be in the RecExpr"
        );
        self.nodes.push(node);
        Id::from(self.nodes.len() - 1)
    }

    pub fn root(&self) -> Id {
        assert!(!self.nodes.is_empty(), "empty RecExpr has no root");
        Id::from(self.nodes.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: Id) -> &L {
        &self.nodes[id.index()]
    }

    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Build a `RecExpr` from the sub-term of `other` rooted at `root`
    /// (compacting unreachable nodes).
    pub fn extract(other: &RecExpr<L>, root: Id) -> RecExpr<L> {
        let mut out = RecExpr::default();
        let mut map: Vec<Option<Id>> = vec![None; other.len()];
        fn go<L: Language>(
            other: &RecExpr<L>,
            id: Id,
            out: &mut RecExpr<L>,
            map: &mut Vec<Option<Id>>,
        ) -> Id {
            if let Some(new) = map[id.index()] {
                return new;
            }
            let node = other
                .node(id)
                .clone()
                .map_children(|c| go(other, c, out, map));
            let new = out.add(node);
            map[id.index()] = Some(new);
            new
        }
        go(other, root, &mut out, &mut map);
        out
    }

    fn fmt_node(&self, id: Id, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let node = self.node(id);
        if node.is_leaf() {
            write!(f, "{}", node.op_display())
        } else {
            write!(f, "({}", node.op_display())?;
            for &c in node.children() {
                write!(f, " ")?;
                self.fmt_node(c, f)?;
            }
            write!(f, ")")
        }
    }
}

impl<L: Language> fmt::Display for RecExpr<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            write!(f, "()")
        } else {
            self.fmt_node(self.root(), f)
        }
    }
}

/// Parse an s-expression string into a [`RecExpr`].
pub fn parse_rec_expr<L: Language>(src: &str) -> Result<RecExpr<L>, String> {
    let sexp = spores_ir::parse_sexp(src).map_err(|e| e.to_string())?;
    let mut expr = RecExpr::default();
    add_sexp(&sexp, &mut expr)?;
    Ok(expr)
}

fn add_sexp<L: Language>(sexp: &spores_ir::SExp, expr: &mut RecExpr<L>) -> Result<Id, String> {
    match sexp {
        spores_ir::SExp::Atom(a) => {
            let node = L::from_op(a, vec![])?;
            Ok(expr.add(node))
        }
        spores_ir::SExp::List(items) => {
            let (op, rest) = items
                .split_first()
                .ok_or_else(|| "empty list in expression".to_owned())?;
            let op = op
                .as_atom()
                .ok_or_else(|| format!("operator must be an atom, got {op}"))?;
            let children = rest
                .iter()
                .map(|c| add_sexp(c, expr))
                .collect::<Result<Vec<_>, _>>()?;
            let node = L::from_op(op, children)?;
            Ok(expr.add(node))
        }
    }
}

#[cfg(test)]
pub(crate) mod test_lang {
    use super::*;

    /// A tiny arithmetic language used by the e-graph unit tests.
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    pub enum Arith {
        Add([Id; 2]),
        Mul([Id; 2]),
        Neg(Id),
        Num(i64),
        Sym(String),
    }

    impl Language for Arith {
        fn children(&self) -> &[Id] {
            match self {
                Arith::Add(c) | Arith::Mul(c) => c,
                Arith::Neg(c) => std::slice::from_ref(c),
                _ => &[],
            }
        }

        fn children_mut(&mut self) -> &mut [Id] {
            match self {
                Arith::Add(c) | Arith::Mul(c) => c,
                Arith::Neg(c) => std::slice::from_mut(c),
                _ => &mut [],
            }
        }

        fn matches(&self, other: &Self) -> bool {
            match (self, other) {
                (Arith::Add(_), Arith::Add(_)) => true,
                (Arith::Mul(_), Arith::Mul(_)) => true,
                (Arith::Neg(_), Arith::Neg(_)) => true,
                (Arith::Num(a), Arith::Num(b)) => a == b,
                (Arith::Sym(a), Arith::Sym(b)) => a == b,
                _ => false,
            }
        }

        fn op_display(&self) -> String {
            match self {
                Arith::Add(_) => "+".into(),
                Arith::Mul(_) => "*".into(),
                Arith::Neg(_) => "neg".into(),
                Arith::Num(n) => n.to_string(),
                Arith::Sym(s) => s.clone(),
            }
        }

        fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
            match (op, children.len()) {
                ("+", 2) => Ok(Arith::Add([children[0], children[1]])),
                ("*", 2) => Ok(Arith::Mul([children[0], children[1]])),
                ("neg", 1) => Ok(Arith::Neg(children[0])),
                (_, 0) => {
                    if let Ok(n) = op.parse::<i64>() {
                        Ok(Arith::Num(n))
                    } else {
                        Ok(Arith::Sym(op.to_owned()))
                    }
                }
                (op, n) => Err(format!("unknown op {op} with {n} children")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_lang::Arith;
    use super::*;

    #[test]
    fn parse_and_display() {
        let e: RecExpr<Arith> = parse_rec_expr("(+ x (* y 2))").unwrap();
        assert_eq!(e.to_string(), "(+ x (* y 2))");
        assert_eq!(e.len(), 5);
    }

    #[test]
    fn extract_subterm() {
        let e: RecExpr<Arith> = parse_rec_expr("(+ x (* y 2))").unwrap();
        let mul = Id::from(3); // post-order: x, y, 2, (*), (+)
        let sub = RecExpr::extract(&e, mul);
        assert_eq!(sub.to_string(), "(* y 2)");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_rec_expr::<Arith>("(+ x)").is_err());
        assert!(parse_rec_expr::<Arith>("(unknown x y z)").is_err());
        assert!(parse_rec_expr::<Arith>("((+) x y)").is_err());
    }
}
