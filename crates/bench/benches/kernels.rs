//! Criterion benchmarks for the matrix substrate: the sparse kernels
//! whose asymptotics the SPORES rewrites exploit.

use criterion::{criterion_group, criterion_main, Criterion};
use spores_matrix::gen;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut r = gen::rng(42);
    let sparse = gen::rand_sparse(2000, 1000, 0.01, -1.0, 1.0, &mut r);
    let dense = gen::rand_dense(2000, 1000, -1.0, 1.0, &mut r);
    let v = gen::rand_dense(1000, 1, -1.0, 1.0, &mut r);

    let mut group = c.benchmark_group("kernels/matvec_2000x1000");
    group.bench_function("sparse(1%)", |b| {
        b.iter(|| black_box(&sparse).matmul(black_box(&v)));
    });
    group.bench_function("dense", |b| {
        b.iter(|| black_box(&dense).matmul(black_box(&v)));
    });
    group.finish();

    let mut group = c.benchmark_group("kernels/elemmul_2000x1000");
    group.bench_function("sparse*dense", |b| {
        b.iter(|| black_box(&sparse).mul(black_box(&dense)));
    });
    group.bench_function("dense*dense", |b| {
        b.iter(|| black_box(&dense).mul(black_box(&dense)));
    });
    group.finish();

    let mut group = c.benchmark_group("kernels/transpose_2000x1000");
    group.bench_function("sparse", |b| b.iter(|| black_box(&sparse).transpose()));
    group.bench_function("dense", |b| b.iter(|| black_box(&dense).transpose()));
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
