//! Unified tracing + metrics for the SPORES runtime.
//!
//! The ROADMAP's perf work (lock-free apply, GJ e-matching, the async
//! serving tier) all hinges on knowing where time and candidates go;
//! before this crate that evidence lived in ad-hoc structs
//! (`RuleIterStats`, `SaturationStats`, `ServiceStats`) and hand-rolled
//! `Instant::now()` pairs. This crate is the one facade behind all of
//! them — hand-rolled and dependency-free like `crates/compat/`, since
//! the build environment has no registry access:
//!
//! * **Spans** ([`span!`], [`SpanGuard`]) — hierarchical begin/end
//!   events recorded into a lock-sharded in-memory [`Journal`] with
//!   monotonic timestamps and per-thread ids. RAII guards keep begin/end
//!   balanced per thread, which is exactly the invariant the Chrome
//!   trace-event format needs.
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`],
//!   [`Log2Histogram`]) — named, optionally labeled instruments with a
//!   Prometheus-style text exposition ([`Registry::render_text`]).
//! * **Exporters** — [`chrome_trace_json`] (loadable in
//!   `chrome://tracing` / Perfetto) and the text exposition above; plus
//!   [`validate_chrome_trace`], a small schema checker CI runs against
//!   emitted traces (balanced B/E events, monotonic timestamps).
//!
//! # Disabled by default
//!
//! Collection is off until [`set_enabled`]`(true)` (or
//! `OptimizerConfig::telemetry` in `spores-core`, which flips the same
//! switch). Every hook site checks [`enabled`] — a single relaxed atomic
//! load — before building any arguments, so the disabled hot path costs
//! one branch per site. The workload smoke bench guards this: ≤ 2%
//! estimated hook overhead with telemetry disabled, ≤ 10% measured
//! end-to-end overhead enabled.
//!
//! # Global collector
//!
//! The journal and the default registry are process-global ([`global`])
//! so deep library code (the e-graph runner, the executor's memo) can
//! record without threading a handle through every layer. Components
//! that need isolated metrics (e.g. one `OptimizerService` instance)
//! own a private [`Registry`] instead. Tests that assert on the global
//! journal/registry should run in their own process (their own
//! integration-test binary) and call [`reset`] first.

#![forbid(unsafe_code)]

mod journal;
mod json;
mod metrics;
mod trace;

pub use journal::{current_tid, ArgValue, Event, EventKind, Journal, SpanGuard};
pub use json::{parse_json, Json};
pub use metrics::{
    Counter, CounterHandle, CounterValue, Gauge, Log2Histogram, Registry, LOG2_BUCKETS,
};
pub use trace::{chrome_trace_json, span_durations, validate_chrome_trace, SpanTotals, TraceCheck};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-global collector: one journal + one default registry.
pub struct Telemetry {
    journal: Journal,
    registry: Registry,
}

impl Telemetry {
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The global collector (created on first use; the journal's clock epoch
/// is its creation instant).
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(|| Telemetry {
        journal: Journal::new(),
        registry: Registry::new(),
    })
}

/// Is collection on? One relaxed atomic load — the whole cost of every
/// hook site while telemetry is disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide. Sticky: nothing turns it back
/// off implicitly (a run configured with `OptimizerConfig::telemetry`
/// leaves the collector on so the caller can drain the trace afterward).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drain the global journal: all events so far, in one globally ordered
/// sequence (sorted by timestamp, ties broken by allocation order). The
/// journal is left empty.
pub fn drain() -> Vec<Event> {
    global().journal().drain()
}

/// Drain the journal and zero every metric in the global registry
/// (instrument handles stay valid). For tests and profiling binaries
/// that need a clean slate.
pub fn reset() {
    global().journal().drain();
    global().registry().zero();
}

/// Write the global journal as Chrome trace-event JSON to `path`,
/// draining it. Load the file in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn dump_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    let events = drain();
    std::fs::write(path, chrome_trace_json(&events))
}

/// Record a hierarchical span on the global journal.
///
/// ```
/// let _span = spores_telemetry::span!("saturation.iter", iter = 3usize);
/// // ... the span ends when `_span` drops ...
/// ```
///
/// Bind the guard (`let _span = ...`, **not** `let _ = ...`, which drops
/// immediately). When collection is disabled this expands to one atomic
/// load and an inert guard; argument expressions are not evaluated.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin($name, Vec::new())
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin(
                $name,
                vec![$((stringify!($key), $crate::ArgValue::from($val))),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The global collector is process-wide state; unit tests that
    /// enable it serialize on this lock so they never observe each
    /// other's events.
    pub(crate) static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        reset();
        set_enabled(false);
        {
            let _s = span!("should.not.exist", x = 1usize);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn disabled_span_skips_argument_evaluation() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        reset();
        set_enabled(false);
        let mut evaluated = false;
        {
            let _s = span!(
                "lazy",
                x = {
                    evaluated = true;
                    1usize
                }
            );
        }
        assert!(!evaluated, "disabled span! must not evaluate its args");
    }

    #[test]
    fn enabled_span_records_begin_and_end() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        {
            let mut s = span!("outer", n = 7usize);
            s.arg("done", true);
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].kind, EventKind::End);
        assert!(events[1].args.iter().any(|(k, _)| *k == "done"));
        assert!(events[0].ts_us <= events[1].ts_us);
    }
}
