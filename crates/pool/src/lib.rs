//! Shared thread-pool primitives for SPORES' concurrent components.
//!
//! Two shapes of parallelism recur in the workspace and each used to be
//! hand-rolled where it was needed:
//!
//! * [`scoped_map`] — a fork-join map over an indexed task set whose
//!   closures *borrow* caller data (`std::thread::scope`). This is what
//!   the saturation runner's parallel search phase uses: tasks share
//!   `&EGraph` and return per-task match buffers.
//! * [`WorkerPool`] — long-lived named worker threads draining a channel
//!   of owned jobs (`'static`). This is the optimizer service's request
//!   pool, extracted here so the workspace has one pool implementation
//!   instead of one per crate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, SendError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Run `f(0..tasks)` across up to `threads` scoped worker threads and
/// collect the results in task order.
///
/// Tasks are claimed from a shared atomic counter (work stealing), so an
/// uneven task-cost distribution still balances. With `threads <= 1` or
/// fewer than two tasks the map runs inline on the caller's thread —
/// zero spawn overhead, identical results — which is the hot path for
/// single-core hosts and tiny fan-outs.
///
/// A panicking task propagates the panic to the caller after all worker
/// threads have joined (the guarantee `std::thread::scope` provides).
pub fn scoped_map<T, F>(threads: usize, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(tasks);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                if ix >= tasks {
                    break;
                }
                let out = f(ix);
                *slots[ix].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every task index was claimed and completed")
        })
        .collect()
}

/// Long-lived worker threads draining a channel of jobs.
///
/// Jobs are owned (`'static`) values; the handler runs on whichever
/// worker dequeues the job first. Dropping the pool closes the channel
/// and joins every worker, so queued jobs are drained before shutdown
/// completes. The handler is responsible for its own panic containment:
/// a panicking handler kills its worker thread (the remaining workers
/// keep serving), so wrap fallible job bodies in `catch_unwind` when a
/// lost job would wedge a waiter.
pub struct WorkerPool<J: Send + 'static> {
    tx: Option<Sender<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawn `workers.max(1)` threads named `{name}-{i}` running
    /// `handler` on each received job.
    pub fn new<F>(name: &str, workers: usize, handler: F) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let (tx, rx) = channel::<J>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let handler = Arc::clone(&handler);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = rx.lock().unwrap();
                            match rx.recv() {
                                Ok(job) => job,
                                Err(_) => return, // all senders dropped: shutdown
                            }
                        };
                        handler(job);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueue a job. Returns the job back if the pool has shut down.
    pub fn submit(&self, job: J) -> Result<(), J> {
        match &self.tx {
            Some(tx) => tx.send(job).map_err(|SendError(job)| job),
            None => Err(job),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // closing the channel ends the worker loops once the queue drains
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_map_preserves_task_order() {
        let input: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = scoped_map(threads, input.len(), |i| input[i] * 3);
            let want: Vec<usize> = input.iter().map(|x| x * 3).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn scoped_map_borrows_caller_data_without_cloning() {
        let data = vec![String::from("a"); 64];
        let lens = scoped_map(4, data.len(), |i| data[i].len());
        assert_eq!(lens, vec![1; 64]);
        assert_eq!(data.len(), 64, "data survives the scope");
    }

    #[test]
    fn scoped_map_runs_every_task_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        scoped_map(8, counters.len(), |i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn scoped_map_handles_empty_and_single_task() {
        let empty: Vec<usize> = scoped_map(8, 0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(scoped_map(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn worker_pool_processes_all_jobs_before_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("test-pool", 3, move |j: usize| {
                done.fetch_add(j, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 3);
        for j in 1..=100 {
            pool.submit(j).unwrap();
        }
        drop(pool); // joins workers, draining the queue
        assert_eq!(done.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn worker_pool_clamps_to_one_worker() {
        let pool = WorkerPool::new("clamped", 0, |_: ()| {});
        assert_eq!(pool.workers(), 1);
    }
}
