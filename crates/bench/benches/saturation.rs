//! Criterion micro-benchmarks for the equality-saturation engine:
//! e-graph insertion/rebuild throughput and full saturation of the
//! paper's headline expression under both schedulers.

use criterion::{criterion_group, criterion_main, Criterion};
use spores_core::analysis::{Context, MetaAnalysis, VarMeta};
use spores_core::parse_math;
use spores_egraph::{Runner, Scheduler};
use std::hint::black_box;

fn ctx() -> Context {
    Context::new()
        .with_var("X", VarMeta::sparse(1000, 500, 0.001))
        .with_var("U", VarMeta::dense(1000, 1))
        .with_var("V", VarMeta::dense(500, 1))
        .with_index("i", 1000)
        .with_index("j", 500)
}

fn headline() -> spores_core::MathExpr {
    parse_math("(sum i (sum j (pow (+ (b i j X) (* -1 (* (b i _ U) (b j _ V)))) 2)))").unwrap()
}

fn bench_add_rebuild(c: &mut Criterion) {
    let expr = headline();
    c.bench_function("egraph/add_expr+rebuild", |b| {
        b.iter(|| {
            let mut eg =
                spores_core::analysis::MathGraph::new(MetaAnalysis::new(ctx()));
            let id = eg.add_expr(black_box(&expr));
            eg.rebuild();
            black_box(id)
        })
    });
}

fn bench_saturation(c: &mut Criterion) {
    let expr = headline();
    let rules = spores_core::default_rules();
    let mut group = c.benchmark_group("saturation/headline");
    group.sample_size(10);
    group.bench_function("depth_first", |b| {
        b.iter(|| {
            Runner::new(MetaAnalysis::new(ctx()))
                .with_expr(&expr)
                .with_scheduler(Scheduler::DepthFirst)
                .with_node_limit(10_000)
                .run(black_box(&rules))
                .egraph
                .total_number_of_nodes()
        })
    });
    group.bench_function("sampling", |b| {
        b.iter(|| {
            Runner::new(MetaAnalysis::new(ctx()))
                .with_expr(&expr)
                .with_scheduler(Scheduler::Sampling {
                    match_limit: 40,
                    seed: 1,
                })
                .with_node_limit(10_000)
                .run(black_box(&rules))
                .egraph
                .total_number_of_nodes()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_add_rebuild, bench_saturation);
criterion_main!(benches);
