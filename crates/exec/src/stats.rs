//! Execution cost accounting.
//!
//! Figure 15/17 compare *run time*; our substrate reports both wall-clock
//! time and deterministic counters (floating-point operations, cells
//! allocated for intermediates) so the benchmark tables are reproducible
//! on any machine.

use std::ops::AddAssign;

/// Deterministic execution counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Cells allocated for intermediate results.
    pub cells_allocated: u64,
    /// Number of intermediate matrices materialized.
    pub intermediates: u64,
    /// Number of fused-operator executions (mmchain/sprop/wsloss).
    pub fused_ops: u64,
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.flops += rhs.flops;
        self.cells_allocated += rhs.cells_allocated;
        self.intermediates += rhs.intermediates;
        self.fused_ops += rhs.fused_ops;
    }
}
