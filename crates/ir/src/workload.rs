//! Workload expression bundles: many named statements, one shared DAG.
//!
//! A [`WorkloadExpr`] packages *all* statements of a workload as named
//! roots over a single hash-consed [`ExprArena`], so subexpressions that
//! repeat across statements (PNMF's `W %*% H` appears in three) are
//! shared by construction — the form the workload-level optimizer
//! saturates in one e-graph and extracts as one multi-root plan.
//!
//! Bundles are in **SSA form**: each root binds a fresh name, and a
//! root's name may only be read (appear as a leaf variable) by *later*
//! roots. That makes the bundle's semantics order-independent per root —
//! evaluating the roots in order, binding each result under its name,
//! yields the same value per root as evaluating each against the final
//! environment — and is what makes merging all statements into one
//! e-graph sound: two syntactically identical subexpressions are
//! guaranteed to denote the same value. Sequential programs that
//! reassign variables are converted by version-renaming the targets
//! (see `spores-ml`'s workload bundle builder).

use crate::arena::{ExprArena, LaNode, NodeId};
use crate::symbol::Symbol;
use std::fmt;

/// A bundle of named statements over one shared arena. See module docs.
#[derive(Clone, Debug)]
pub struct WorkloadExpr {
    pub arena: ExprArena,
    /// `(name, root)` per statement, in program order.
    pub roots: Vec<(Symbol, NodeId)>,
}

/// A malformed bundle (empty, duplicate names, or non-SSA wiring).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadError(pub String);

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed workload: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

impl WorkloadExpr {
    /// Build a bundle, validating the SSA discipline: at least one root,
    /// distinct root names, and no root name read at or before its own
    /// definition.
    pub fn new(arena: ExprArena, roots: Vec<(Symbol, NodeId)>) -> Result<Self, WorkloadError> {
        if roots.is_empty() {
            return Err(WorkloadError("workload has no statements".into()));
        }
        for (i, (name, _)) in roots.iter().enumerate() {
            if roots[..i].iter().any(|(n, _)| n == name) {
                return Err(WorkloadError(format!("duplicate root name {name}")));
            }
        }
        let bundle = WorkloadExpr { arena, roots };
        for (i, (_, root)) in bundle.roots.iter().enumerate() {
            for leaf in bundle.arena.free_vars(*root) {
                if bundle.roots[i..].iter().any(|(n, _)| *n == leaf) {
                    return Err(WorkloadError(format!(
                        "root {} reads {leaf} before it is defined (bundle is not SSA)",
                        bundle.roots[i].0
                    )));
                }
            }
        }
        Ok(bundle)
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// The root ids, in program order.
    pub fn root_ids(&self) -> Vec<NodeId> {
        self.roots.iter().map(|&(_, id)| id).collect()
    }

    /// Statement `ix` as its own single-root bundle: the per-statement
    /// baseline that differential tests and benches compare workload
    /// mode against. Reads of earlier roots stay leaf variables, exactly
    /// as the per-statement pipeline sees them.
    pub fn single_statement(&self, ix: usize) -> WorkloadExpr {
        let (name, root) = self.roots[ix];
        let mut arena = ExprArena::new();
        let r = arena.graft(&self.arena, root, &std::collections::HashMap::new());
        WorkloadExpr::new(arena, vec![(name, r)]).expect("sub-bundle of a valid bundle")
    }

    /// Leaf variables the caller must supply: every free variable that is
    /// not defined by an earlier root of the bundle.
    pub fn free_inputs(&self) -> Vec<Symbol> {
        let mut inputs = Vec::new();
        for &(_, root) in &self.roots {
            for v in self.arena.free_vars(root) {
                let defined = self.roots.iter().any(|(n, _)| *n == v);
                if !defined && !inputs.contains(&v) {
                    inputs.push(v);
                }
            }
        }
        inputs
    }

    /// All leaf variables read anywhere in the bundle (inputs plus
    /// earlier-root names), each once, in first-read order.
    pub fn read_vars(&self) -> Vec<Symbol> {
        let mut vars = Vec::new();
        for id in self.arena.postorder_multi(&self.root_ids()) {
            if let LaNode::Var(v) = self.arena.node(id) {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn bundle(stmts: &[(&str, &str)]) -> Result<WorkloadExpr, WorkloadError> {
        let mut arena = ExprArena::new();
        let roots = stmts
            .iter()
            .map(|&(name, src)| (Symbol::new(name), parse_expr(&mut arena, src).unwrap()))
            .collect();
        WorkloadExpr::new(arena, roots)
    }

    #[test]
    fn valid_ssa_bundle() {
        let w = bundle(&[("G", "(U %*% t(V) - X) %*% V"), ("U1", "U - 0.0001 * G")]).unwrap();
        assert_eq!(w.len(), 2);
        let mut inputs: Vec<String> = w.free_inputs().iter().map(|s| s.to_string()).collect();
        inputs.sort();
        assert_eq!(inputs, vec!["U", "V", "X"]);
        // G is read but not an input
        assert!(w.read_vars().contains(&Symbol::new("G")));
    }

    #[test]
    fn shared_subexpressions_share_nodes() {
        // `W %*% H` in two statements is one node in the bundle arena
        let w = bundle(&[("a", "sum(W %*% H)"), ("b", "sum(X * log(W %*% H))")]).unwrap();
        let n_matmul = w
            .arena
            .postorder_multi(&w.root_ids())
            .iter()
            .filter(|&&id| matches!(w.arena.node(id), LaNode::Bin(crate::BinOp::MatMul, _, _)))
            .count();
        assert_eq!(n_matmul, 1);
    }

    #[test]
    fn rejects_duplicate_names() {
        assert!(bundle(&[("a", "X"), ("a", "Y")]).is_err());
    }

    #[test]
    fn rejects_read_before_define() {
        // statement reads its own target (reassignment without SSA)
        assert!(bundle(&[("U", "U - G")]).is_err());
        // and a forward reference
        assert!(bundle(&[("a", "b + X"), ("b", "X")]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(bundle(&[]).is_err());
    }
}
