//! Relational e-matching composed with the full saturation stack on the
//! paper's §4.2 evaluation workloads.
//!
//! The backend contract from `spores_egraph::relational` is that the
//! [`MatchingMode`] is *invisible*: swapping the structural compiled
//! matcher for the generic-join backend must not perturb a single
//! scheduling decision. These tests replay each workload's saturation —
//! sampling scheduler, backoff banking, delta search, and (for the
//! multi-statement run) per-region convergence freezing — at 1 and 8
//! threads in both modes, and require the relational lanes to reproduce
//! the structural 1-thread baseline bit for bit: stop reason, graph
//! size, per-iteration counts, per-rule `RuleIterStats` (including the
//! funnel's candidate accounting and mute/delta flags), frozen-region
//! flags, and the extracted terms.

use spores_core::analysis::{Context, MetaAnalysis, VarMeta};
use spores_core::{default_rules, parse_math, MatchingMode, MathExpr};
use spores_egraph::{AstSize, Extractor, ParallelConfig, RecExpr, RegionConfig, Runner, Scheduler};

fn ctx() -> Context {
    Context::new()
        .with_var("X", VarMeta::sparse(1000, 500, 0.001))
        .with_var("U", VarMeta::dense(1000, 1))
        .with_var("V", VarMeta::dense(500, 1))
        .with_index("i", 1000)
        .with_index("j", 500)
}

/// RA translations of the §4.2 workloads' hot expressions (the same
/// shapes `benches/saturation.rs` snapshots).
fn workload_exprs() -> Vec<(&'static str, MathExpr)> {
    let parse = |s: &str| parse_math(s).unwrap();
    vec![
        (
            "headline",
            parse("(sum i (sum j (pow (+ (b i j X) (* -1 (* (b i _ U) (b j _ V)))) 2)))"),
        ),
        (
            "als",
            parse("(sum j (* (+ (* (b i _ U) (b j _ V)) (* -1 (b i j X))) (b j _ V)))"),
        ),
        ("pnmf", parse("(sum i (sum j (* (b i _ U) (b j _ V))))")),
        (
            "glm",
            parse("(sum i (sum j (* (b i j X) (* (b i _ U) (b j _ V)))))"),
        ),
        ("mlr", parse("(sum i (sigmoid (* (b i j X) (b j _ V))))")),
    ]
}

/// Saturate `exprs` as one (possibly multi-root) run.
fn run(
    exprs: &[MathExpr],
    threads: usize,
    mode: MatchingMode,
    regions: Option<RegionConfig>,
) -> Runner<spores_core::Math, MetaAnalysis> {
    let mut runner = Runner::new(MetaAnalysis::new(ctx()))
        .with_scheduler(Scheduler::Sampling {
            match_limit: 40,
            seed: 1,
        })
        .with_node_limit(3_000)
        .with_iter_limit(6)
        .with_parallel(ParallelConfig {
            threads,
            min_shard_size: 1,
        })
        .with_matching(mode);
    for expr in exprs {
        runner = runner.with_expr(expr);
    }
    if let Some(cfg) = regions {
        runner = runner.with_regions(cfg);
    }
    runner.run(&default_rules())
}

/// Assert `got` replays `base` exactly, down to per-rule funnel stats.
fn assert_replay(
    label: &str,
    base: &Runner<spores_core::Math, MetaAnalysis>,
    got: &Runner<spores_core::Math, MetaAnalysis>,
) {
    assert_eq!(got.stop_reason, base.stop_reason, "{label}: stop reason");
    assert_eq!(
        got.egraph.total_number_of_nodes(),
        base.egraph.total_number_of_nodes(),
        "{label}: e-node count"
    );
    assert_eq!(
        got.egraph.number_of_classes(),
        base.egraph.number_of_classes(),
        "{label}: e-class count"
    );
    assert_eq!(
        got.iterations.len(),
        base.iterations.len(),
        "{label}: iteration count"
    );
    for (it, (g, b)) in got.iterations.iter().zip(&base.iterations).enumerate() {
        assert_eq!(g.matches_found, b.matches_found, "{label} iter {it}");
        assert_eq!(g.matches_applied, b.matches_applied, "{label} iter {it}");
        assert_eq!(g.unions, b.unions, "{label} iter {it}");
        assert_eq!(g.egraph_nodes, b.egraph_nodes, "{label} iter {it}");
        assert_eq!(g.egraph_classes, b.egraph_classes, "{label} iter {it}");
        assert_eq!(
            g.frozen_regions, b.frozen_regions,
            "{label} iter {it}: frozen-region flags"
        );
        assert_eq!(g.rules.len(), b.rules.len(), "{label} iter {it}");
        for (gr, br) in g.rules.iter().zip(&b.rules) {
            assert_eq!(gr.rule, br.rule, "{label} iter {it}");
            assert_eq!(
                gr.candidates, br.candidates,
                "{label} iter {it} rule {}: candidates visited",
                gr.rule
            );
            assert_eq!(gr.matches, br.matches, "{label} iter {it} rule {}", gr.rule);
            assert_eq!(gr.applied, br.applied, "{label} iter {it} rule {}", gr.rule);
            assert_eq!(gr.unions, br.unions, "{label} iter {it} rule {}", gr.rule);
            assert_eq!(gr.muted, br.muted, "{label} iter {it} rule {}", gr.rule);
            assert_eq!(gr.delta, br.delta, "{label} iter {it} rule {}", gr.rule);
        }
    }
    let extract = |r: &Runner<spores_core::Math, MetaAnalysis>| -> Vec<(f64, RecExpr<_>)> {
        let ex = Extractor::new(&r.egraph, AstSize);
        r.roots
            .iter()
            .map(|&root| ex.find_best(root).expect("root extractable"))
            .collect()
    };
    assert_eq!(extract(got), extract(base), "{label}: extracted terms");
}

/// The (threads, mode) lanes compared against the 1-thread structural
/// baseline — the CI `SPORES_THREADS` matrix endpoints in both modes.
const LANES: [(usize, MatchingMode); 3] = [
    (1, MatchingMode::Relational),
    (8, MatchingMode::Structural),
    (8, MatchingMode::Relational),
];

#[test]
fn relational_replays_each_workload_saturation() {
    for (name, expr) in workload_exprs() {
        let exprs = [expr];
        let base = run(&exprs, 1, MatchingMode::Structural, None);
        assert!(
            base.iterations.iter().any(|it| it.unions > 0),
            "{name}: workload saturation did no work — test is vacuous"
        );
        for (threads, mode) in LANES {
            let got = run(&exprs, threads, mode, None);
            assert_replay(&format!("{name} @{threads}t/{mode:?}"), &base, &got);
        }
    }
}

#[test]
fn relational_replays_multi_root_run_with_region_freezing() {
    let exprs: Vec<MathExpr> = workload_exprs().into_iter().map(|(_, e)| e).collect();
    let regions = Some(RegionConfig::default());
    let base = run(&exprs, 1, MatchingMode::Structural, regions);
    assert!(
        base.iterations
            .iter()
            .any(|it| it.frozen_regions.iter().any(|&f| f)),
        "no region ever froze — freezing lane is vacuous"
    );
    for (threads, mode) in LANES {
        let got = run(&exprs, threads, mode, regions);
        assert_replay(&format!("workload-5 @{threads}t/{mode:?}"), &base, &got);
    }
}
