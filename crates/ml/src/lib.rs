//! The five evaluation workloads of the paper (§4.2) and the harness
//! that compiles them under `base` / `opt2` / SPORES and executes them.

#![forbid(unsafe_code)]

pub mod runner;
pub mod workloads;

pub use runner::{
    compile, compile_with_service, compile_workload, compile_workload_with_service, execute,
    execute_workload, run, run_workload_mode, statement_requests, workload_bundle,
    workload_optimizer_config, CompileReport, Compiled, Mode, RunReport, WorkloadBundle,
    WorkloadCompiled,
};
pub use workloads::{als, figure15_suite, glm, mlr, pnmf, svm, Scale, Statement, Workload};
