//! Figure 14: derive every hand-coded SystemML sum-product rewrite with
//! the relational rules.
//!
//! For each pattern of the corpus, derivation is established by (checked
//! in this order):
//!
//! 1. **canon** — the two sides' canonical forms are isomorphic
//!    (Theorem 2.3; index-name independent);
//! 2. **e-graph** — feeding both sides into one e-graph (with aligned
//!    result attributes) and saturating merges their classes — the
//!    experiment exactly as §4.1 describes it;
//! 3. **zero-invariant** — for the `Empty*` families, the optimizer
//!    proves the left side identically zero via the sparsity invariant.
//!
//! `--no-custom` drops the custom-function equations (§3.3), showing
//! which families need them (an ablation from DESIGN.md).

use spores_core::analysis::{MathGraph, MetaAnalysis};
use spores_core::translate::translate_pair;
use spores_core::{canon_of_la, polyterm_isomorphic, VarMeta};
use spores_egraph::{Language, Runner, Scheduler};
use spores_ir::{ExprArena, Symbol};
use spores_systemml::{RewritePattern, Validation, CORPUS};
use std::collections::HashMap;

#[derive(Copy, Clone, PartialEq, Debug)]
enum How {
    Canon,
    EGraph,
    ZeroInvariant,
    Failed,
}

fn vars_of(p: &RewritePattern) -> HashMap<Symbol, VarMeta> {
    p.vars
        .iter()
        .map(|&(n, r, c, s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
        .collect()
}

fn check(p: &RewritePattern, rules: &[spores_core::MathRewrite]) -> How {
    let mut arena = ExprArena::new();
    let lhs = spores_ir::parse_expr(&mut arena, p.lhs).expect("lhs parses");
    let rhs = spores_ir::parse_expr(&mut arena, p.rhs).expect("rhs parses");
    let vars = vars_of(p);

    if p.validation == Validation::ZeroInvariant {
        // the optimizer must prove nnz(LHS) == 0
        if let Ok(tr) = spores_core::translate(&arena, lhs, &vars) {
            let mut eg = MathGraph::new(MetaAnalysis::new(tr.ctx.clone()));
            let id = eg.add_expr(&tr.expr);
            eg.rebuild();
            if eg.class(id).data.sparsity == 0.0 {
                return How::ZeroInvariant;
            }
        }
        return How::Failed;
    }

    // 1. canonical forms (Theorem 2.3)
    if let (Ok(a), Ok(b)) = (
        canon_of_la(&arena, lhs, &vars),
        canon_of_la(&arena, rhs, &vars),
    ) {
        if polyterm_isomorphic(&a, &b) {
            return How::Canon;
        }
    }

    // 2. saturation merges the two (attribute-aligned) sides
    if let Ok(tr) = translate_pair(&arena, lhs, rhs, &vars) {
        let runner = Runner::new(MetaAnalysis::new(tr.ctx.clone()))
            .with_expr(&tr.expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_node_limit(30_000)
            .with_iter_limit(20)
            .run(rules);
        // the synthetic root is (+ lhs rhs); read back its children
        let root_class = runner.egraph.class(runner.roots[0]);
        for node in &root_class.nodes {
            if let spores_core::Math::Add([l, r]) = node {
                if runner.egraph.find(*l) == runner.egraph.find(*r) {
                    return How::EGraph;
                }
            }
            let _ = node.children();
        }
    }
    How::Failed
}

fn main() {
    let no_custom = std::env::args().any(|a| a == "--no-custom");
    let rules = if no_custom {
        spores_core::req_rules()
    } else {
        spores_core::default_rules()
    };
    println!(
        "Figure 14: SystemML sum-product rewrites derived by relational rules{}",
        if no_custom {
            " (R_EQ only, custom-function equations ablated)"
        } else {
            ""
        }
    );
    println!();

    let mut table = spores_bench::Table::new(&["Method", "#", "Derived", "Via"]);
    let mut total = 0;
    let mut derived = 0;
    for method in spores_systemml::patterns::methods() {
        let pats: Vec<&RewritePattern> = CORPUS.iter().filter(|p| p.method == method).collect();
        let results: Vec<How> = pats.iter().map(|p| check(p, &rules)).collect();
        let ok = results.iter().filter(|&&h| h != How::Failed).count();
        total += pats.len();
        derived += ok;
        let via: Vec<&str> = {
            let mut v = Vec::new();
            if results.contains(&How::Canon) {
                v.push("canon");
            }
            if results.contains(&How::EGraph) {
                v.push("e-graph");
            }
            if results.contains(&How::ZeroInvariant) {
                v.push("nnz=0");
            }
            if results.contains(&How::Failed) {
                v.push("FAILED");
            }
            v
        };
        table.row(&[
            method.to_string(),
            pats.len().to_string(),
            format!("{ok}/{}", pats.len()),
            via.join("+"),
        ]);
    }
    table.print();
    println!();
    println!("TOTAL: {derived}/{total} patterns derived across 31 methods");
    if !no_custom {
        assert_eq!(derived, total, "all Figure 14 patterns must derive");
    }
}
