//! Audit report types, the human-readable table, and a hand-rolled JSON
//! serializer (the workspace is offline — no serde).

use std::fmt::Write as _;

use spores_egraph::{RewriteError, Var};

use crate::overlap::OverlapReport;
use crate::schema::{Hypothesis, SchemaReport, SchemaVerdict};
use crate::semiring::{SemiringReq, Structure, Verification};

/// A finding that fails the audit (exit code 1 in the CLI, test failure
/// in CI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The rule could not even be constructed (unbound rhs var, parse
    /// error, duplicate name) — surfaced when auditing rule *sources*.
    Rewrite(RewriteError),
    /// A lhs variable occurs more than once but the rule does not
    /// declare `with_nonlinear_lhs()`.
    UndeclaredNonlinear { rule: String, var: Var },
    /// A variable is used both as a Σ/bind index and as a value.
    RoleConflict { rule: String, var: Var },
    /// The two sides cannot be given equal schemas under any declared
    /// or declarable hypothesis.
    SchemaMismatch {
        rule: String,
        lhs: String,
        rhs: String,
    },
    /// Schema equality needs hypotheses the rule does not declare.
    UndeclaredCondition {
        rule: String,
        missing: Vec<Hypothesis>,
    },
    /// A value-position lhs variable vanishes from the rhs without a
    /// declared `IsZero` condition.
    UndeclaredDrop { rule: String, var: Var },
    /// The rule requires more algebraic structure than the audit policy
    /// allows.
    StructureExceedsPolicy {
        rule: String,
        required: Structure,
        max: Structure,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Rewrite(e) => write!(f, "{e}"),
            Violation::UndeclaredNonlinear { rule, var } => write!(
                f,
                "rule `{rule}`: lhs variable {var} occurs more than once but the rule does not declare with_nonlinear_lhs()"
            ),
            Violation::RoleConflict { rule, var } => write!(
                f,
                "rule `{rule}`: variable {var} is used both as an index and as a value"
            ),
            Violation::SchemaMismatch { rule, lhs, rhs } => write!(
                f,
                "rule `{rule}`: schema mismatch — lhs has schema {lhs}, rhs has schema {rhs}"
            ),
            Violation::UndeclaredCondition { rule, missing } => {
                write!(f, "rule `{rule}`: schema equality needs undeclared condition(s): ")?;
                for (k, h) in missing.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{h}")?;
                }
                Ok(())
            }
            Violation::UndeclaredDrop { rule, var } => write!(
                f,
                "rule `{rule}`: lhs value {var} is dropped by the rhs without a declared IsZero condition"
            ),
            Violation::StructureExceedsPolicy { rule, required, max } => write!(
                f,
                "rule `{rule}`: requires {required} but the audit policy caps the ruleset at {max}"
            ),
        }
    }
}

impl From<RewriteError> for Violation {
    fn from(e: RewriteError) -> Self {
        Violation::Rewrite(e)
    }
}

/// A finding worth reporting but not failing on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// Another rule performs the same rewrite on strictly more terms.
    SubsumedBy { rule: String, by: Vec<String> },
    /// A declared schema condition the schema pass never needed.
    UnusedCondition {
        rule: String,
        hypothesis: Hypothesis,
    },
    /// The schema pass cannot type this rule (reason attached).
    NotAnalyzable { rule: String, reason: String },
    /// No polynomial level certifies the equation; pinned to ℝ.
    Unverified { rule: String },
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::SubsumedBy { rule, by } => {
                write!(f, "rule `{rule}` is subsumed by {}", by.join(", "))
            }
            Warning::UnusedCondition { rule, hypothesis } => write!(
                f,
                "rule `{rule}` declares condition {hypothesis} which the schema pass never needed"
            ),
            Warning::NotAnalyzable { rule, reason } => {
                write!(f, "rule `{rule}` is not schema-analyzable: {reason}")
            }
            Warning::Unverified { rule } => write!(
                f,
                "rule `{rule}`: no polynomial level certifies the equation; pinned to real"
            ),
        }
    }
}

/// Everything the audit learned about one rule.
#[derive(Debug, Clone)]
pub struct RuleReport {
    pub name: String,
    pub lhs: String,
    pub rhs: String,
    pub nonlinear_lhs: bool,
    pub schema: SchemaReport,
    pub semiring: Option<SemiringReq>,
    pub overlap: OverlapReport,
}

/// The full audit result.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    pub rules: Vec<RuleReport>,
    pub violations: Vec<Violation>,
    pub warnings: Vec<Warning>,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The human-readable table plus finding lists.
    pub fn render_table(&self) -> String {
        let mut name_w = "rule".len();
        let mut schema_w = "schema".len();
        let mut ring_w = "structure".len();
        let rows: Vec<(String, String, String, String)> = self
            .rules
            .iter()
            .map(|r| {
                let schema = verdict_cell(&r.schema.verdict);
                let ring = semiring_cell(r.semiring.as_ref());
                let flags = flags_cell(r);
                name_w = name_w.max(r.name.len());
                schema_w = schema_w.max(schema.chars().count());
                ring_w = ring_w.max(ring.chars().count());
                (r.name.clone(), schema, ring, flags)
            })
            .collect();

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$}  {:schema_w$}  {:ring_w$}  flags",
            "rule", "schema", "structure"
        );
        let _ = writeln!(
            out,
            "{}  {}  {}  -----",
            "-".repeat(name_w),
            "-".repeat(schema_w),
            "-".repeat(ring_w)
        );
        for (name, schema, ring, flags) in rows {
            let _ = writeln!(
                out,
                "{name:name_w$}  {schema:schema_w$}  {ring:ring_w$}  {flags}"
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} rules, {} violations, {} warnings",
            self.rules.len(),
            self.violations.len(),
            self.warnings.len()
        );
        for v in &self.violations {
            let _ = writeln!(out, "violation: {v}");
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        out
    }

    /// The full machine-readable report.
    pub fn to_json(&self) -> String {
        let mut j = Json::new();
        j.begin_obj();
        j.key("rules");
        j.begin_arr();
        for r in &self.rules {
            j.begin_obj();
            j.key("name");
            j.string(&r.name);
            j.key("lhs");
            j.string(&r.lhs);
            j.key("rhs");
            j.string(&r.rhs);
            j.key("nonlinear_lhs");
            j.bool(r.nonlinear_lhs);
            j.key("schema");
            schema_json(&mut j, &r.schema);
            j.key("semiring");
            match &r.semiring {
                Some(req) => semiring_json(&mut j, req),
                None => j.null(),
            }
            j.key("overlap");
            overlap_json(&mut j, &r.overlap);
            j.end_obj();
        }
        j.end_arr();
        j.key("violations");
        j.begin_arr();
        for v in &self.violations {
            j.string(&v.to_string());
        }
        j.end_arr();
        j.key("warnings");
        j.begin_arr();
        for w in &self.warnings {
            j.string(&w.to_string());
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Just the rule → semiring-requirement table, for the committed
    /// snapshot. Deterministic: rule order, fixed key order, one line
    /// per rule.
    pub fn semiring_table_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.rules.iter().enumerate() {
            let (structure, idem, verified) = match &r.semiring {
                Some(req) => (
                    req.structure.to_string(),
                    req.idempotent_add,
                    req.verified.to_string(),
                ),
                None => ("unknown".to_owned(), false, "unverified".to_owned()),
            };
            let _ = write!(
                out,
                "  {{\"rule\": {}, \"structure\": {}, \"idempotent_add\": {}, \"verified\": {}}}",
                escape(&r.name),
                escape(&structure),
                idem,
                escape(&verified)
            );
            out.push_str(if i + 1 == self.rules.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("]\n");
        out
    }
}

fn verdict_cell(v: &SchemaVerdict) -> String {
    match v {
        SchemaVerdict::Equal => "equal".to_owned(),
        SchemaVerdict::EqualUnderConditions(hs) => {
            let hs: Vec<String> = hs.iter().map(|h| h.to_string()).collect();
            format!("equal if {}", hs.join(" ∧ "))
        }
        SchemaVerdict::Undeclared { missing, .. } => {
            format!("UNDECLARED ({} missing)", missing.len())
        }
        SchemaVerdict::Mismatch { .. } => "MISMATCH".to_owned(),
        SchemaVerdict::NotAnalyzable(_) => "n/a".to_owned(),
    }
}

fn semiring_cell(req: Option<&SemiringReq>) -> String {
    match req {
        Some(r) => {
            let mut s = r.structure.to_string();
            if r.idempotent_add {
                s.push_str("+idem");
            }
            match r.verified {
                Verification::Algebraic => {}
                Verification::Definitional => s.push_str(" (def)"),
                Verification::Unverified => s.push_str(" (!)"),
            }
            s
        }
        None => "-".to_owned(),
    }
}

fn flags_cell(r: &RuleReport) -> String {
    let mut flags = Vec::new();
    if r.nonlinear_lhs {
        flags.push("nonlinear".to_owned());
    }
    if r.overlap.permutative {
        flags.push("permutative".to_owned());
    }
    if r.overlap.self_feeding {
        flags.push("self-feed".to_owned());
    }
    if r.overlap.growth > 0 {
        flags.push(format!("growth+{}", r.overlap.growth));
    }
    if r.overlap.prior > 0 {
        flags.push(format!("prior={}", r.overlap.prior));
    }
    if !r.overlap.subsumed_by.is_empty() {
        flags.push("subsumed".to_owned());
    }
    flags.join(",")
}

fn schema_json(j: &mut Json, s: &SchemaReport) {
    j.begin_obj();
    j.key("verdict");
    match &s.verdict {
        SchemaVerdict::Equal => j.string("equal"),
        SchemaVerdict::EqualUnderConditions(hs) => {
            j.begin_obj();
            j.key("equal_if");
            j.begin_arr();
            for h in hs {
                j.string(&h.to_string());
            }
            j.end_arr();
            j.end_obj();
        }
        SchemaVerdict::Undeclared { needed, missing } => {
            j.begin_obj();
            j.key("undeclared");
            j.begin_obj();
            j.key("needed");
            j.begin_arr();
            for h in needed {
                j.string(&h.to_string());
            }
            j.end_arr();
            j.key("missing");
            j.begin_arr();
            for h in missing {
                j.string(&h.to_string());
            }
            j.end_arr();
            j.end_obj();
            j.end_obj();
        }
        SchemaVerdict::Mismatch { lhs, rhs } => {
            j.begin_obj();
            j.key("mismatch");
            j.begin_obj();
            j.key("lhs");
            j.string(lhs);
            j.key("rhs");
            j.string(rhs);
            j.end_obj();
            j.end_obj();
        }
        SchemaVerdict::NotAnalyzable(reason) => {
            j.begin_obj();
            j.key("not_analyzable");
            j.string(reason);
            j.end_obj();
        }
    }
    j.end_obj();
}

fn semiring_json(j: &mut Json, req: &SemiringReq) {
    j.begin_obj();
    j.key("structure");
    j.string(&req.structure.to_string());
    j.key("idempotent_add");
    j.bool(req.idempotent_add);
    j.key("verified");
    j.string(&req.verified.to_string());
    j.end_obj();
}

fn overlap_json(j: &mut Json, o: &OverlapReport) {
    j.begin_obj();
    j.key("lhs_overlaps");
    j.num(o.lhs_overlaps as i64);
    j.key("growth");
    j.num(o.growth as i64);
    j.key("permutative");
    j.bool(o.permutative);
    j.key("self_feeding");
    j.bool(o.self_feeding);
    j.key("fans_out_to");
    j.num(o.fans_out_to as i64);
    j.key("prior");
    j.num(i64::from(o.prior));
    j.key("subsumed_by");
    j.begin_arr();
    for b in &o.subsumed_by {
        j.string(b);
    }
    j.end_arr();
    j.end_obj();
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON emitter with pretty two-space indentation. Commas are
/// inserted automatically between siblings.
struct Json {
    buf: String,
    indent: usize,
    /// Whether the current container already holds a value (comma
    /// needed before the next one). One entry per open container.
    has_item: Vec<bool>,
    /// A key was just emitted; the next value goes on the same line.
    after_key: bool,
}

impl Json {
    fn new() -> Self {
        Json {
            buf: String::new(),
            indent: 0,
            has_item: Vec::new(),
            after_key: false,
        }
    }

    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
            self.buf.push('\n');
            self.buf.push_str(&"  ".repeat(self.indent));
        }
    }

    fn begin_obj(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.indent += 1;
        self.has_item.push(false);
    }

    fn end_obj(&mut self) {
        self.close('}');
    }

    fn begin_arr(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.indent += 1;
        self.has_item.push(false);
    }

    fn end_arr(&mut self) {
        self.close(']');
    }

    fn close(&mut self, c: char) {
        let had = self.has_item.pop().unwrap_or(false);
        self.indent -= 1;
        if had {
            self.buf.push('\n');
            self.buf.push_str(&"  ".repeat(self.indent));
        }
        self.buf.push(c);
    }

    fn key(&mut self, k: &str) {
        self.pre_value();
        self.buf.push_str(&escape(k));
        self.buf.push_str(": ");
        self.after_key = true;
    }

    fn string(&mut self, s: &str) {
        self.pre_value();
        self.buf.push_str(&escape(s));
    }

    fn bool(&mut self, b: bool) {
        self.pre_value();
        self.buf.push_str(if b { "true" } else { "false" });
    }

    fn num(&mut self, n: i64) {
        self.pre_value();
        let _ = write!(self.buf, "{n}");
    }

    fn null(&mut self) {
        self.pre_value();
        self.buf.push_str("null");
    }

    fn finish(mut self) -> String {
        self.buf.push('\n');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn json_emitter_nests() {
        let mut j = Json::new();
        j.begin_obj();
        j.key("a");
        j.begin_arr();
        j.num(1);
        j.num(2);
        j.end_arr();
        j.key("b");
        j.string("x");
        j.end_obj();
        let s = j.finish();
        assert!(s.contains("\"a\": ["), "{s}");
        assert!(s.contains("\"b\": \"x\""), "{s}");
        // must be machine-recoverable: balanced brackets
        let opens = s.matches(['{', '[']).count();
        let closes = s.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }
}
