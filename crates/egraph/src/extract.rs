//! Greedy (bottom-up) extraction.
//!
//! The paper's §4.3 greedy extractor: "traverses the saturated graph
//! bottom-up, picking the cheapest operator in each class at every level".
//! It is optimal only when the best plan of an expression contains the
//! best plans of its sub-expressions — common subexpressions break that
//! assumption (Figure 10), which is why `spores-core` also offers ILP
//! extraction. The greedy pass here is a fixpoint computation, so it is
//! robust to cycles in the e-graph (a cyclic justification never gets a
//! finite cost).

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::hash::FxHashMap;
use crate::language::{Id, Language, RecExpr};

/// Assigns a total cost to an e-node given the chosen total costs of its
/// children classes. Infinite child costs mean "not yet extractable".
pub trait CostFunction<L: Language, A: Analysis<L>> {
    /// Total cost of the term rooted at `enode`, which lives in e-class
    /// `class`. `child_cost(id)` returns the best known total cost of
    /// class `id` (`f64::INFINITY` if none).
    fn cost(
        &self,
        egraph: &EGraph<L, A>,
        class: Id,
        enode: &L,
        child_cost: &dyn Fn(Id) -> f64,
    ) -> f64;
}

/// Tree size: each node costs 1 (the classic `AstSize`).
#[derive(Clone, Copy, Debug, Default)]
pub struct AstSize;

impl<L: Language, A: Analysis<L>> CostFunction<L, A> for AstSize {
    fn cost(
        &self,
        _egraph: &EGraph<L, A>,
        _class: Id,
        enode: &L,
        child_cost: &dyn Fn(Id) -> f64,
    ) -> f64 {
        1.0 + enode.children().iter().map(|&c| child_cost(c)).sum::<f64>()
    }
}

/// Greedy bottom-up extractor.
pub struct Extractor<'a, L: Language, A: Analysis<L>, CF: CostFunction<L, A>> {
    egraph: &'a EGraph<L, A>,
    cost_fn: CF,
    /// best (cost, node) per canonical class
    best: FxHashMap<Id, (f64, L)>,
}

impl<'a, L: Language, A: Analysis<L>, CF: CostFunction<L, A>> Extractor<'a, L, A, CF> {
    /// Run the fixpoint cost computation over the whole e-graph.
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: CF) -> Self {
        let mut ext = Extractor {
            egraph,
            cost_fn,
            best: FxHashMap::default(),
        };
        ext.compute_costs();
        ext
    }

    fn compute_costs(&mut self) {
        // Bellman-Ford-style relaxation: iterate until no class improves.
        let mut changed = true;
        while changed {
            changed = false;
            for class in self.egraph.classes() {
                let id = self.egraph.find(class.id);
                for node in &class.nodes {
                    let cost = self.node_total_cost(id, node);
                    if !cost.is_finite() {
                        continue;
                    }
                    match self.best.get(&id) {
                        Some((best, _)) if *best <= cost => {}
                        _ => {
                            self.best.insert(id, (cost, node.clone()));
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    fn node_total_cost(&self, class: Id, node: &L) -> f64 {
        let best = &self.best;
        let egraph = self.egraph;
        let child_cost = |id: Id| -> f64 {
            best.get(&egraph.find(id))
                .map_or(f64::INFINITY, |(c, _)| *c)
        };
        // Nodes with un-extractable children are themselves un-extractable.
        if node.children().iter().any(|&c| !child_cost(c).is_finite()) {
            return f64::INFINITY;
        }
        self.cost_fn.cost(egraph, class, node, &child_cost)
    }

    /// Best known total cost for class `id`, if any term is extractable.
    pub fn best_cost(&self, id: Id) -> Option<f64> {
        self.best.get(&self.egraph.find(id)).map(|(c, _)| *c)
    }

    /// The chosen (cheapest) e-node of class `id`.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.best.get(&self.egraph.find(id)).map(|(_, n)| n)
    }

    /// Extract the cheapest concrete term of class `id`.
    pub fn find_best(&self, id: Id) -> Option<(f64, RecExpr<L>)> {
        let cost = self.best_cost(id)?;
        let mut expr = RecExpr::default();
        let mut cache: FxHashMap<Id, Id> = FxHashMap::default();
        let root = self.build(id, &mut expr, &mut cache);
        debug_assert_eq!(root, expr.root());
        Some((cost, expr))
    }

    /// Extract the cheapest term of every class in `roots` into ONE
    /// shared [`RecExpr`] (one build cache across roots, so a sub-plan
    /// reachable from several roots appears exactly once). Returns the
    /// expression and each root's node id within it, in input order.
    /// `None` when any root has no extractable representation.
    pub fn find_best_multi(&self, roots: &[Id]) -> Option<(RecExpr<L>, Vec<Id>)> {
        for &id in roots {
            self.best_cost(id)?;
        }
        let mut expr = RecExpr::default();
        let mut cache: FxHashMap<Id, Id> = FxHashMap::default();
        let ids = roots
            .iter()
            .map(|&id| self.build(id, &mut expr, &mut cache))
            .collect();
        Some((expr, ids))
    }

    fn build(&self, id: Id, expr: &mut RecExpr<L>, cache: &mut FxHashMap<Id, Id>) -> Id {
        let id = self.egraph.find(id);
        if let Some(&done) = cache.get(&id) {
            return done;
        }
        let node = self
            .best_node(id)
            .unwrap_or_else(|| panic!("no extractable term for class {id}"))
            .clone();
        let node = node.map_children(|c| self.build(c, expr, cache));
        let new_id = expr.add(node);
        cache.insert(id, new_id);
        new_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;
    use crate::rewrite::Rewrite;
    use crate::runner::{Runner, Scheduler};

    #[test]
    fn extracts_smallest_equivalent() {
        // (x + x) rewritten to (* x 2) — AstSize prefers either (both 3
        // nodes), but ((x + x) + (x + x)) vs (* (* x 2) 2): sharing makes
        // DAG small but AstSize counts tree size.
        let rules = vec![Rewrite::<Arith, ()>::new("double", "(+ ?a ?a)", "(* ?a 2)").unwrap()];
        let expr = parse_rec_expr("(+ (+ x x) (+ x x))").unwrap();
        let runner = Runner::<Arith, ()>::default()
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .run(&rules);
        assert!(runner.saturated());
        let ext = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ext.find_best(runner.roots[0]).unwrap();
        // The inner class ties at cost 3 ((+ x x) vs (* x 2)); the root
        // must pick the (* ?a 2) form (cost 5) over (+ ?a ?a) (cost 7).
        assert!(
            ["(* (* x 2) 2)", "(* (+ x x) 2)"].contains(&best.to_string().as_str()),
            "got {best}"
        );
        assert_eq!(cost, 5.0);
    }

    #[test]
    fn cycle_in_egraph_is_handled() {
        // Union x with (+ x 0): the class now contains a cycle. Greedy
        // extraction must still terminate and pick the leaf.
        let mut eg: EGraph<Arith, ()> = EGraph::default();
        let x = eg.add_expr(&parse_rec_expr("x").unwrap());
        let x0 = eg.add_expr(&parse_rec_expr("(+ x 0)").unwrap());
        eg.union(x, x0);
        eg.rebuild();
        let ext = Extractor::new(&eg, AstSize);
        let (cost, best) = ext.find_best(x).unwrap();
        assert_eq!(best.to_string(), "x");
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn multi_root_extraction_shares_subterms() {
        let mut eg: EGraph<Arith, ()> = EGraph::default();
        let shared = eg.add_expr(&parse_rec_expr("(* x y)").unwrap());
        let r1 = eg.add_expr(&parse_rec_expr("(+ (* x y) z)").unwrap());
        let r2 = eg.add_expr(&parse_rec_expr("(+ (* x y) w)").unwrap());
        eg.rebuild();
        let ext = Extractor::new(&eg, AstSize);
        let (expr, ids) = ext.find_best_multi(&[r1, r2, shared]).unwrap();
        assert_eq!(ids.len(), 3);
        // (* x y) built once: x, y, (* x y), z, (+ .. z), w, (+ .. w) = 7
        assert_eq!(expr.len(), 7);
        // the shared root is exactly the (* x y) node referenced by both sums
        assert!(expr.node(ids[0]).children().contains(&ids[2]));
        assert!(expr.node(ids[1]).children().contains(&ids[2]));
    }

    #[test]
    fn respects_custom_cost() {
        struct MulIsExpensive;
        impl CostFunction<Arith, ()> for MulIsExpensive {
            fn cost(
                &self,
                _eg: &EGraph<Arith, ()>,
                _class: Id,
                enode: &Arith,
                child: &dyn Fn(Id) -> f64,
            ) -> f64 {
                let own = match enode {
                    Arith::Mul(_) => 100.0,
                    _ => 1.0,
                };
                own + enode.children().iter().map(|&c| child(c)).sum::<f64>()
            }
        }
        let rules = vec![Rewrite::<Arith, ()>::new("double", "(+ ?a ?a)", "(* ?a 2)").unwrap()];
        let expr = parse_rec_expr("(+ x x)").unwrap();
        let runner = Runner::<Arith, ()>::default().with_expr(&expr).run(&rules);
        let ext = Extractor::new(&runner.egraph, MulIsExpensive);
        let (_, best) = ext.find_best(runner.roots[0]).unwrap();
        assert_eq!(best.to_string(), "(+ x x)", "mul should be avoided");
    }
}
