//! SPORES: the relational equality-saturation optimizer (paper core).
pub mod analysis;
pub mod lang;
pub mod canon;
pub mod cost;
pub mod eval;
pub mod homomorphism;
pub mod extract;
pub mod lower;
pub mod optimizer;
pub mod rules;
pub mod translate;

pub use analysis::{Context, Kind, Meta, MetaAnalysis, MathGraph, Schema, VarMeta};
pub use lang::{parse_math, Math, MathExpr};
pub use rules::{custom_rules, default_rules, req_rules, MathRewrite};
pub use translate::{translate, Translation};
pub use cost::{node_cost, NnzCost};
pub use extract::{extract_greedy, extract_ilp, IlpStats};
pub use lower::{lower, LowerError};
pub use canon::{canon_of_la, canonical_form, la_equivalent, polyterm_isomorphic, Polyterm};
pub use homomorphism::{find_homomorphism, minimal_terms, Homomorphism};
pub use optimizer::{ExtractorKind, Optimized, Optimizer, OptimizerConfig, PhaseTimings, SaturationStats};
