//! Sharded LRU plan cache keyed by canonical fingerprints.
//!
//! The cache maps a [`Fingerprint`]'s canonical form to a small set of
//! *variants*: one size-polymorphic template (valid for any concrete
//! dimensions of the same shape classes) and/or several size-pinned
//! templates (plans whose lowering embedded concrete dimension constants,
//! keyed by the exact per-slot shapes they were optimized for).
//!
//! # Warm-path lock discipline
//!
//! Probes are the service's hot path: a warm fleet hammers [`ShardedCache::get`]
//! from every serving thread. Each shard is a [`RwLock`], so concurrent
//! probes share read locks and only inserts/evictions take the exclusive
//! write lock. LRU recency is kept without a read-side RMW: each shard
//! carries an epoch counter bumped (by 2) per insert, and a probe stamps
//! its entry with `epoch + 1` via a plain relaxed store — skipped
//! entirely when the stamp is already current, so steady-state warm hits
//! issue no shared writes beyond the read-lock word and the returned
//! `Arc`'s refcount. The resulting order is *epoch-approximate* LRU:
//! untouched entries age out first, entries probed since the last insert
//! rank together, and a fresh insert always outranks them.
//!
//! # Poison degradation
//!
//! A thread that panics while holding a shard's write lock poisons only
//! that shard. Probes treat a poisoned shard as a miss (counted on
//! [`CacheInstruments::poisoned`]) instead of propagating the panic into
//! every subsequent request, and the next insert clears and re-seeds the
//! shard, so a single panic degrades one shard temporarily rather than
//! taking the service down.

use spores_core::PhaseTimings;
use spores_ir::{ExprArena, Fingerprint, NodeId, Shape};
use spores_telemetry::{Counter, Log2Histogram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, TryLockError};
use std::time::Instant;

/// An optimized plan over α-slot leaves (`$0`, `$1`, …), ready to be
/// re-instantiated against a caller's symbols.
#[derive(Clone, Debug)]
pub struct PlanTemplate {
    pub arena: ExprArena,
    pub root: NodeId,
}

/// One cache entry: the plan template plus the facts needed to decide
/// whether (and how cheaply) a later request may reuse it.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    pub template: PlanTemplate,
    /// [`spores_core::NnzCost`] estimate at creation time.
    pub cost: f64,
    /// Pipeline phase timings of the run that produced the template.
    pub timings: PhaseTimings,
    /// Did the producing run's saturation reach a fixpoint?
    pub converged: bool,
    /// Did the producing run's saturation hit its wall-clock budget?
    pub timed_out: bool,
    /// E-graph size of the producing run.
    pub e_nodes: usize,
    /// Valid for any concrete sizes within the fingerprint's classes.
    pub size_polymorphic: bool,
    /// Concrete per-slot shapes the template was optimized for (the
    /// exact-match key when `size_polymorphic` is false).
    pub slot_shapes: Vec<Shape>,
}

/// What the sharded cache needs to know about an entry to run its
/// admission and variant-replacement policies. Implemented by the
/// single-statement [`CachedPlan`] and the workload-level
/// [`crate::workload::CachedWorkloadPlan`]. The admission rule itself is
/// a provided method so both caches always enforce the same policy.
pub trait CacheEntry {
    /// Valid at any concrete sizes within the fingerprint's classes?
    fn size_polymorphic(&self) -> bool;
    /// Concrete per-slot shapes the entry was optimized for.
    fn slot_shapes(&self) -> &[Shape];

    /// May a request with these per-slot shapes reuse this entry?
    fn admits(&self, slot_shapes: &[Shape]) -> bool {
        self.size_polymorphic() || self.slot_shapes() == slot_shapes
    }
}

impl CacheEntry for CachedPlan {
    fn size_polymorphic(&self) -> bool {
        self.size_polymorphic
    }

    fn slot_shapes(&self) -> &[Shape] {
        &self.slot_shapes
    }
}

struct Entry<P> {
    plan: Arc<P>,
    /// Epoch-approximate recency stamp (see the module docs): written
    /// under the shard *read* lock by probes, so it must be atomic.
    last_used: AtomicU64,
}

struct ShardMap<P> {
    entries: HashMap<String, Vec<Entry<P>>>,
    len: usize,
}

impl<P> Default for ShardMap<P> {
    fn default() -> Self {
        ShardMap {
            entries: HashMap::new(),
            len: 0,
        }
    }
}

struct Shard<P> {
    map: RwLock<ShardMap<P>>,
    /// Per-shard LRU epoch: bumped by 2 on insert; probes stamp
    /// `epoch + 1` so a fresh insert always outranks probed entries.
    epoch: AtomicU64,
}

impl<P> Default for Shard<P> {
    fn default() -> Self {
        Shard {
            map: RwLock::new(ShardMap::default()),
            epoch: AtomicU64::new(0),
        }
    }
}

/// Contention/degradation instruments a cache reports into, injected by
/// the owning service so they live in *its* metrics registry (the
/// "prove the regression is observable" half of the warm-path fix).
/// All handles are optional-by-default ([`CacheInstruments::default`]
/// counts into unregistered instruments that nothing renders).
#[derive(Clone)]
pub struct CacheInstruments {
    /// Probes that found their shard lock held and had to block.
    pub contended: Arc<Counter>,
    /// Time (µs) probes spent blocked on a contended shard lock.
    pub lock_wait_us: Arc<Log2Histogram>,
    /// Probes/inserts that found their shard poisoned by a panic.
    pub poisoned: Arc<Counter>,
}

impl Default for CacheInstruments {
    fn default() -> Self {
        CacheInstruments {
            contended: Arc::new(Counter::new()),
            lock_wait_us: Arc::new(Log2Histogram::new()),
            poisoned: Arc::new(Counter::new()),
        }
    }
}

/// Sharded LRU over `canon → [variants]`, generic over the entry type
/// (single-statement plan templates by default; workload templates via
/// `ShardedCache<CachedWorkloadPlan>`). See the module docs for the
/// read-mostly lock discipline and poison semantics.
pub struct ShardedCache<P: CacheEntry = CachedPlan> {
    shards: Vec<Shard<P>>,
    /// Per-shard capacity (total capacity / shard count, at least 1).
    shard_capacity: usize,
    /// Cap on size-pinned variants kept per canonical form.
    max_variants: usize,
    evictions: AtomicU64,
    instruments: CacheInstruments,
}

impl<P: CacheEntry> ShardedCache<P> {
    pub fn new(shards: usize, capacity: usize, max_variants: usize) -> ShardedCache<P> {
        let shards = shards.max(1);
        ShardedCache {
            shard_capacity: (capacity / shards).max(1),
            shards: (0..shards).map(|_| Shard::default()).collect(),
            max_variants: max_variants.max(1),
            evictions: AtomicU64::new(0),
            instruments: CacheInstruments::default(),
        }
    }

    /// Report contention/poison events into these instruments (chainable
    /// at construction; the service wires its registry's handles in).
    pub fn with_instruments(mut self, instruments: CacheInstruments) -> ShardedCache<P> {
        self.instruments = instruments;
        self
    }

    fn shard(&self, fp: &Fingerprint) -> &Shard<P> {
        &self.shards[(fp.hash() as usize) % self.shards.len()]
    }

    /// Fetch a template admitting these per-slot shapes, updating LRU
    /// state. Read-locks one shard; a poisoned shard degrades to a miss.
    pub fn get(&self, fp: &Fingerprint, slot_shapes: &[Shape]) -> Option<Arc<P>> {
        let shard = self.shard(fp);
        let map = match shard.map.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                // contended probe: count it and time the blocking wait so
                // shard-lock contention shows up in metrics_text()
                self.instruments.contended.inc();
                let t0 = Instant::now();
                match shard.map.read() {
                    Ok(guard) => {
                        self.instruments.lock_wait_us.record_duration(t0.elapsed());
                        guard
                    }
                    Err(_) => {
                        self.instruments.poisoned.inc();
                        return None;
                    }
                }
            }
            Err(TryLockError::Poisoned(_)) => {
                // a panic poisoned this shard: degrade to a miss rather
                // than crashing every request that hashes here
                self.instruments.poisoned.inc();
                return None;
            }
        };
        let variants = map.entries.get(fp.canon())?;
        let entry = variants.iter().find(|e| e.plan.admits(slot_shapes))?;
        // stamp recency with this epoch's probe rank; skip the store when
        // already current so hot-key probes issue no shared write
        let stamp = shard.epoch.load(Ordering::Relaxed) + 1;
        if entry.last_used.load(Ordering::Relaxed) != stamp {
            entry.last_used.store(stamp, Ordering::Relaxed);
        }
        Some(entry.plan.clone())
    }

    /// Insert (or replace) the variant for this fingerprint + shape key,
    /// evicting least-recently-used entries beyond the shard capacity.
    /// Takes the caller's `Arc` so cached plans are shared, not copied.
    /// Write-locks one shard; a poisoned shard is cleared and re-seeded.
    pub fn insert(&self, fp: &Fingerprint, plan: Arc<P>) {
        let shard = self.shard(fp);
        let tick = shard.epoch.fetch_add(2, Ordering::Relaxed) + 2;
        let mut map = match shard.map.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                // self-heal: drop whatever half-updated state the panic
                // left behind and start the shard fresh
                self.instruments.poisoned.inc();
                let mut guard = poisoned.into_inner();
                guard.entries.clear();
                guard.len = 0;
                shard.map.clear_poison();
                guard
            }
        };
        let mut grew = 0isize;
        let mut variant_evictions = 0u64;
        {
            let variants = map.entries.entry(fp.canon().to_string()).or_default();
            // replace the variant with the same reuse key, if any
            let same_key = variants.iter_mut().find(|e| {
                e.plan.size_polymorphic() == plan.size_polymorphic()
                    && (plan.size_polymorphic() || e.plan.slot_shapes() == plan.slot_shapes())
            });
            match same_key {
                Some(entry) => {
                    entry.plan = plan;
                    entry.last_used.store(tick, Ordering::Relaxed);
                }
                None => {
                    if variants.len() >= self.max_variants {
                        // too many size-pinned variants: drop the stalest
                        let stale = variants
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                            .map(|(i, _)| i)
                            .expect("variants non-empty");
                        variants.remove(stale);
                        grew -= 1;
                        variant_evictions += 1;
                    }
                    variants.push(Entry {
                        plan,
                        last_used: AtomicU64::new(tick),
                    });
                    grew += 1;
                }
            }
        }
        map.len = (map.len as isize + grew) as usize;
        self.evictions
            .fetch_add(variant_evictions, Ordering::Relaxed);
        while map.len > self.shard_capacity {
            evict_lru(&mut map);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total cached templates across all shards (poisoned shards count 0).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().map_or(0, |m| m.len))
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries displaced by the LRU policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Probes that found their shard poisoned (degraded to misses).
    pub fn poisoned_probes(&self) -> u64 {
        self.instruments.poisoned.get()
    }
}

fn evict_lru<P>(map: &mut ShardMap<P>) {
    let victim = map
        .entries
        .iter()
        .flat_map(|(canon, variants)| {
            variants
                .iter()
                .map(move |e| (canon.clone(), e.last_used.load(Ordering::Relaxed)))
        })
        .min_by_key(|&(_, used)| used)
        .map(|(canon, _)| canon);
    let Some(canon) = victim else { return };
    let variants = map.entries.get_mut(&canon).expect("victim exists");
    let stale = variants
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
        .map(|(i, _)| i)
        .expect("victim non-empty");
    variants.remove(stale);
    map.len -= 1;
    if variants.is_empty() {
        map.entries.remove(&canon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spores_ir::{fingerprint, LeafClass, Symbol};

    fn fp_of(src: &str, rows: u64, cols: u64) -> (Fingerprint, ExprArena, NodeId) {
        let mut a = ExprArena::new();
        let root = spores_ir::parse_expr(&mut a, src).unwrap();
        let classes: HashMap<Symbol, LeafClass> = a
            .free_vars(root)
            .into_iter()
            .map(|v| (v, LeafClass::classify(Shape::new(rows, cols), 1.0)))
            .collect();
        let fp = fingerprint(&a, root, &classes).unwrap();
        (fp, a, root)
    }

    fn plan(
        arena: &ExprArena,
        root: NodeId,
        poly: bool,
        shapes: Vec<Shape>,
    ) -> std::sync::Arc<CachedPlan> {
        std::sync::Arc::new(CachedPlan {
            template: PlanTemplate {
                arena: arena.clone(),
                root,
            },
            cost: 1.0,
            timings: PhaseTimings::default(),
            converged: true,
            timed_out: false,
            e_nodes: 0,
            size_polymorphic: poly,
            slot_shapes: shapes,
        })
    }

    #[test]
    fn polymorphic_entry_admits_any_sizes() {
        let cache = ShardedCache::new(4, 16, 4);
        let (fp, a, root) = fp_of("X + Y", 10, 10);
        cache.insert(&fp, plan(&a, root, true, vec![Shape::new(10, 10); 2]));
        assert!(cache
            .get(&fp, &[Shape::new(99, 77), Shape::new(99, 77)])
            .is_some());
    }

    #[test]
    fn pinned_entry_requires_exact_shapes() {
        let cache = ShardedCache::new(4, 16, 4);
        let (fp, a, root) = fp_of("X + Y", 10, 10);
        let shapes = vec![Shape::new(10, 10); 2];
        cache.insert(&fp, plan(&a, root, false, shapes.clone()));
        assert!(cache.get(&fp, &shapes).is_some());
        assert!(cache
            .get(&fp, &[Shape::new(99, 77), Shape::new(99, 77)])
            .is_none());
        // a second size becomes its own variant
        let other = vec![Shape::new(99, 77); 2];
        cache.insert(&fp, plan(&a, root, false, other.clone()));
        assert!(cache.get(&fp, &other).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_replaces_same_key() {
        let cache = ShardedCache::new(1, 16, 4);
        let (fp, a, root) = fp_of("X + Y", 10, 10);
        cache.insert(&fp, plan(&a, root, true, vec![Shape::new(10, 10); 2]));
        cache.insert(&fp, plan(&a, root, true, vec![Shape::new(10, 10); 2]));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ShardedCache::new(1, 2, 4);
        let (fp1, a1, r1) = fp_of("X + Y", 10, 10);
        let (fp2, a2, r2) = fp_of("X * Y", 10, 10);
        let (fp3, a3, r3) = fp_of("X %*% Y", 10, 10);
        let shapes = vec![Shape::new(10, 10); 2];
        cache.insert(&fp1, plan(&a1, r1, true, shapes.clone()));
        cache.insert(&fp2, plan(&a2, r2, true, shapes.clone()));
        // touch fp1 so fp2 is the LRU victim
        assert!(cache.get(&fp1, &shapes).is_some());
        cache.insert(&fp3, plan(&a3, r3, true, shapes.clone()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&fp1, &shapes).is_some());
        assert!(cache.get(&fp2, &shapes).is_none());
        assert!(cache.get(&fp3, &shapes).is_some());
    }
}
