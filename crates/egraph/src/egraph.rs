//! The e-graph: a congruence-closed union of expression DAGs.
//!
//! This is a from-scratch implementation of the data structure the paper
//! adopts from `egg` [Willsey 2020]: e-classes of equivalent e-nodes,
//! hash-consing (`memo`), and *deferred* congruence-closure maintenance —
//! unions only record work, and [`EGraph::rebuild`] restores the
//! invariants in one batched pass. Figure 8/9 of the paper give the
//! `saturate`/`add` pseudo-code this realizes.

use crate::analysis::Analysis;
use crate::hash::{FxHashMap, FxHashSet};
use crate::language::{Id, Language, OpKey, RecExpr};
use crate::relational::RelIndex;
use crate::unionfind::UnionFind;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Cached `SPORES_AUDIT` gate: 0 = not yet read, 1 = off, 2 = on.
static AUDIT_GATE: AtomicU8 = AtomicU8::new(0);

/// Should every [`EGraph::rebuild`] finish with a full
/// [`EGraph::check_invariants`] sweep (congruence, memo, op-index,
/// `RelIndex`, dirty set)?
///
/// Driven by the `SPORES_AUDIT` environment variable (`1`/`true` enables;
/// read once and cached) or [`set_rebuild_audit`]. Off by default: the
/// audit is O(graph) per rebuild and exists for CI/proptest runs, where
/// one matrix job sets `SPORES_AUDIT=1` so the invariant sweep runs after
/// every rebuild of every suite.
pub fn audit_enabled() -> bool {
    match AUDIT_GATE.load(Ordering::Relaxed) {
        0 => {
            let on = matches!(
                std::env::var("SPORES_AUDIT").as_deref(),
                Ok("1") | Ok("true")
            );
            AUDIT_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Force the rebuild audit on or off, overriding the environment (for
/// tests that exercise the audit path deterministically).
pub fn set_rebuild_audit(on: bool) {
    AUDIT_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// An equivalence class of e-nodes.
#[derive(Clone, Debug)]
pub struct EClass<L, D> {
    /// The canonical id of this class (stable only between rebuilds).
    pub id: Id,
    /// The e-nodes in this class. Canonical after [`EGraph::rebuild`].
    pub nodes: Vec<L>,
    /// The analysis data ("class invariant") attached to this class.
    pub data: D,
    /// Parent e-nodes (as inserted) and the class they belong to.
    pub(crate) parents: Vec<(L, Id)>,
}

impl<L: Language, D> EClass<L, D> {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &L> {
        self.nodes.iter()
    }
}

/// The e-graph. See the module docs.
#[derive(Clone)]
pub struct EGraph<L: Language, A: Analysis<L>> {
    /// The user analysis (consulted for merges).
    pub analysis: A,
    unionfind: UnionFind,
    /// canonicalized e-node -> e-class at time of insertion
    memo: FxHashMap<L, Id>,
    classes: FxHashMap<Id, EClass<L, A::Data>>,
    /// (parent node, its class) pairs whose memo entries may be stale
    pending: Vec<(L, Id)>,
    /// (node, its class) pairs whose analysis data must be re-made
    analysis_pending: Vec<(L, Id)>,
    /// op head -> sorted canonical ids of classes containing a node
    /// with that head. The e-matching index: `Pattern::search` only
    /// visits the classes listed under its root operator instead of
    /// every class. [`EGraph::add`] appends (fresh ids are strictly
    /// increasing, so vectors stay sorted); [`EGraph::rebuild`]
    /// recomputes. Between a union and the next rebuild the index may
    /// list merged-away ids, which is fine: search requires a clean
    /// graph.
    op_index: FxHashMap<OpKey, Vec<Id>>,
    /// (op, arity, child-slot) -> sorted canonical ids of classes
    /// appearing in that child position — the relational e-matching
    /// index ([`crate::relational`]). [`EGraph::add`] sorted-inserts a
    /// fresh node's children (they can be any existing classes, unlike
    /// the strictly increasing op-head ids); [`EGraph::rebuild`]
    /// canonicalizes entries in place, re-sorting only columns that
    /// moved. Like `op_index`, only read on clean graphs.
    rel_index: RelIndex,
    /// Classes touched since the last [`EGraph::take_dirty`]: fresh
    /// classes from [`EGraph::add`], the surviving root of every
    /// [`EGraph::union`] (including congruence unions), and — closed
    /// over at the end of [`EGraph::rebuild`] — every transitive
    /// *ancestor* (via the parent relation) of a touched class, so that
    /// a pattern match whose sub-term changed is re-findable from its
    /// root. On a clean graph all ids are canonical and the set is
    /// closed under parents; delta e-matching
    /// ([`crate::Pattern::search_delta_with_stats`]) restricts the
    /// op-head candidates to this set.
    dirty: FxHashSet<Id>,
    n_unions: usize,
    clean: bool,
}

impl<L: Language, A: Analysis<L> + Default> Default for EGraph<L, A> {
    fn default() -> Self {
        EGraph::new(A::default())
    }
}

impl<L: Language, A: Analysis<L>> EGraph<L, A> {
    pub fn new(analysis: A) -> Self {
        EGraph {
            analysis,
            unionfind: UnionFind::default(),
            memo: FxHashMap::default(),
            classes: FxHashMap::default(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            op_index: FxHashMap::default(),
            rel_index: RelIndex::default(),
            dirty: FxHashSet::default(),
            n_unions: 0,
            clean: true,
        }
    }

    /// Canonical id of `id`'s class.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find_immutable(id)
    }

    /// Number of e-classes.
    pub fn number_of_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of e-nodes across all classes.
    pub fn total_number_of_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Total unions performed since creation (including congruence-induced).
    pub fn n_unions(&self) -> usize {
        self.n_unions
    }

    /// Is the graph clean (rebuilt since the last union)?
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// Iterate over all e-classes.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, A::Data>> {
        self.classes.values()
    }

    /// The ids of all e-classes (canonical).
    pub fn class_ids(&self) -> Vec<Id> {
        let mut ids: Vec<Id> = self.classes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Access a class by (possibly non-canonical) id.
    pub fn class(&self, id: Id) -> &EClass<L, A::Data> {
        let id = self.find(id);
        self.classes
            .get(&id)
            .unwrap_or_else(|| panic!("no class for id {id}"))
    }

    /// Access a class by *canonical* id, skipping the union-find lookup.
    /// The compiled matcher's hot path: on a clean graph every id it
    /// handles (op-index candidates and rebuilt classes' node children)
    /// is already canonical, so the `find` in [`EGraph::class`] is pure
    /// overhead there.
    pub(crate) fn class_canonical(&self, id: Id) -> &EClass<L, A::Data> {
        debug_assert_eq!(id, self.find(id), "class_canonical needs a canonical id");
        self.classes
            .get(&id)
            .unwrap_or_else(|| panic!("no class for id {id}"))
    }

    /// Mutable access to a class's analysis data.
    pub fn class_data_mut(&mut self, id: Id) -> &mut A::Data {
        let id = self.find(id);
        &mut self.classes.get_mut(&id).expect("class exists").data
    }

    fn canonicalize(&self, node: L) -> L {
        node.map_children(|c| self.find(c))
    }

    /// The canonical ids of classes containing a node whose head matches
    /// `key` — the candidate set indexed e-matching visits. Sorted for
    /// deterministic iteration order. Only meaningful on a clean graph.
    pub fn classes_with_op(&self, key: OpKey) -> &[Id] {
        self.op_index.get(&key).map_or(&[], |ids| ids.as_slice())
    }

    /// The sorted canonical ids of classes appearing at child position
    /// `slot` of some node with head `op` and `arity` children — one
    /// column of the relational e-matching index. Empty for absent
    /// keys. Only meaningful on a clean graph.
    pub fn classes_with_op_child(&self, op: OpKey, arity: usize, slot: usize) -> &[Id] {
        self.rel_index.column(op, arity, slot)
    }

    /// The full relational index (tests and diagnostics; search goes
    /// through [`EGraph::classes_with_op_child`]).
    pub fn rel_index(&self) -> &RelIndex {
        &self.rel_index
    }

    /// Look up the class containing `enode` without inserting it.
    pub fn lookup(&self, enode: L) -> Option<Id> {
        let enode = self.canonicalize(enode);
        self.memo.get(&enode).map(|&id| self.find(id))
    }

    /// Add an e-node (Figure 9 of the paper). Returns its class id,
    /// reusing an existing class when the node is already present.
    pub fn add(&mut self, enode: L) -> Id {
        let enode = self.canonicalize(enode);
        if let Some(&existing) = self.memo.get(&enode) {
            return self.find(existing);
        }
        let id = self.unionfind.make_set();
        let ids = self.op_index.entry(enode.op_key()).or_default();
        debug_assert!(ids.last() < Some(&id), "fresh ids keep the index sorted");
        ids.push(id);
        // Adds keep the graph clean, so the relational index must be
        // search-ready immediately (a sweep may run with no rebuild in
        // between).
        self.rel_index.insert_node(&enode);
        // A fresh class only ever gains parents that are themselves
        // fresh (later) adds, so marking just `id` keeps the dirty set
        // closed under parents without a propagation pass here.
        self.dirty.insert(id);
        let data = A::make(self, &enode);
        let class = EClass {
            id,
            nodes: vec![enode.clone()],
            data,
            parents: Vec::new(),
        };
        self.classes.insert(id, class);
        for &child in enode.children() {
            let child = self.find(child);
            self.classes
                .get_mut(&child)
                .expect("child class exists")
                .parents
                .push((enode.clone(), id));
        }
        self.memo.insert(enode, id);
        A::modify(self, id);
        id
    }

    /// Add every node of `expr`, returning the class of its root.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let node = node.clone().map_children(|c| ids[c.index()]);
            ids.push(self.add(node));
        }
        *ids.last().expect("non-empty expr")
    }

    /// Look up the class of `expr`'s root without inserting anything.
    pub fn lookup_expr(&self, expr: &RecExpr<L>) -> Option<Id> {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let node = node.clone().map_children(|c| ids[c.index()]);
            ids.push(self.lookup(node)?);
        }
        ids.last().copied()
    }

    /// Assert `a` and `b` equal, merging their classes.
    /// Returns the surviving canonical id and whether anything changed.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return (a, false);
        }
        self.n_unions += 1;
        self.clean = false;

        // Keep the class with more parents as root to move less data.
        let (root, other) = if self.classes[&a].parents.len() >= self.classes[&b].parents.len() {
            (a, b)
        } else {
            (b, a)
        };
        self.unionfind.union(root, other);
        // The surviving class's node set changes; ancestors are marked
        // by the parent-closure pass at the end of `rebuild`.
        self.dirty.insert(root);

        let other_class = self.classes.remove(&other).expect("class exists");
        // op_index is NOT updated here: it is only read on clean graphs,
        // and rebuild recomputes it wholesale, so per-union repointing
        // would be pure overhead in the congruence-repair hot loop.
        // The merged-away class's parents may now be congruent with other
        // nodes; queue them for memo repair.
        self.pending.extend(other_class.parents.iter().cloned());

        let root_class = self.classes.get_mut(&root).expect("class exists");
        let did = self.analysis.merge(&mut root_class.data, other_class.data);
        if did.0 {
            // root data changed: its parents' data may need re-making
            self.analysis_pending
                .extend(root_class.parents.iter().cloned());
        }
        if did.1 {
            self.analysis_pending
                .extend(other_class.parents.iter().cloned());
        }
        root_class.nodes.extend(other_class.nodes);
        root_class.parents.extend(other_class.parents);

        A::modify(self, root);
        (root, true)
    }

    /// Restore congruence closure and analysis consistency after unions
    /// ("propagates the congruent closure", paper §3.1).
    pub fn rebuild(&mut self) -> usize {
        let n_unions_before = self.n_unions;
        while !self.pending.is_empty() || !self.analysis_pending.is_empty() {
            while let Some((node, class)) = self.pending.pop() {
                let node = self.canonicalize(node);
                let class = self.find(class);
                if let Some(prev) = self.memo.insert(node, class) {
                    let prev = self.find(prev);
                    if prev != class {
                        // congruence: two nodes became identical
                        self.union(prev, class);
                    }
                }
            }
            while let Some((node, class)) = self.analysis_pending.pop() {
                let class = self.find(class);
                let node = self.canonicalize(node);
                let new_data = A::make(self, &node);
                let eclass = self.classes.get_mut(&class).expect("class exists");
                let did = self.analysis.merge(&mut eclass.data, new_data);
                if did.0 {
                    let parents = eclass.parents.clone();
                    self.analysis_pending.extend(parents);
                    A::modify(self, class);
                }
            }
        }
        self.rebuild_classes();
        self.refresh_dirty();
        self.clean = true;
        if audit_enabled() {
            self.check_invariants();
        }
        self.n_unions - n_unions_before
    }

    /// Canonicalize the dirty set and close it over the parent relation:
    /// a match whose *sub*-term changed must be re-found from its root,
    /// so every transitive ancestor of a touched class is dirty too.
    /// Runs after `rebuild_classes`, when parent lists are canonical.
    fn refresh_dirty(&mut self) {
        let old = std::mem::take(&mut self.dirty);
        let mut work: Vec<Id> = old.into_iter().map(|id| self.find(id)).collect();
        let mut dirty = FxHashSet::default();
        while let Some(id) = work.pop() {
            if !dirty.insert(id) {
                continue;
            }
            for &(_, pid) in &self.classes[&id].parents {
                let pid = self.find(pid);
                if !dirty.contains(&pid) {
                    work.push(pid);
                }
            }
        }
        self.dirty = dirty;
    }

    /// The classes touched since the last [`EGraph::take_dirty`]
    /// (canonical and closed under parents on a clean graph). See the
    /// `dirty` field docs.
    pub fn dirty_classes(&self) -> &FxHashSet<Id> {
        &self.dirty
    }

    /// Take (and clear) the dirty set. The saturation driver calls this
    /// once per iteration: the returned snapshot is the delta-search
    /// candidate universe, and changes made afterwards accumulate into
    /// a fresh set for the next iteration.
    pub fn take_dirty(&mut self) -> FxHashSet<Id> {
        std::mem::take(&mut self.dirty)
    }

    /// Explicitly mark a class dirty for the next delta sweep. The
    /// saturation driver uses this to keep *pending* work visible: a
    /// match the sampling scheduler found but did not apply re-marks its
    /// root class, so delta search re-finds it next iteration instead of
    /// losing it until the next full sweep.
    pub fn mark_dirty(&mut self, id: Id) {
        let id = self.find(id);
        self.dirty.insert(id);
    }

    /// Per-root reachability over a clean graph: canonical class id →
    /// bitmask over `roots` (bit `r` set iff `roots[r]` reaches the
    /// class through some chain of e-node children). At most 64 roots.
    /// This is the region map workload-mode convergence freezing uses:
    /// a statement's "region" is everything its root can realize.
    pub fn reachability_masks(&self, roots: &[Id]) -> FxHashMap<Id, u64> {
        assert!(self.clean, "reachability requires a rebuilt e-graph");
        assert!(roots.len() <= 64, "at most 64 roots for bitmask regions");
        let mut masks: FxHashMap<Id, u64> = FxHashMap::default();
        let mut stack: Vec<Id> = Vec::new();
        for (r, &root) in roots.iter().enumerate() {
            let bit = 1u64 << r;
            stack.push(self.find(root));
            while let Some(id) = stack.pop() {
                let mask = masks.entry(id).or_insert(0);
                if *mask & bit != 0 {
                    continue;
                }
                *mask |= bit;
                for node in &self.classes[&id].nodes {
                    for &c in node.children() {
                        stack.push(self.find(c));
                    }
                }
            }
        }
        masks
    }

    /// Canonicalize and dedup every class's node and parent lists.
    fn rebuild_classes(&mut self) {
        let uf = &self.unionfind;
        for class in self.classes.values_mut() {
            for node in &mut class.nodes {
                for c in node.children_mut() {
                    *c = uf.find_immutable(*c);
                }
            }
            class.nodes.sort_unstable();
            class.nodes.dedup();

            for (node, id) in &mut class.parents {
                for c in node.children_mut() {
                    *c = uf.find_immutable(*c);
                }
                *id = uf.find_immutable(*id);
            }
            class.parents.sort_unstable();
            class.parents.dedup();
        }

        // Recompute the op-head index from the canonicalized classes.
        // This drops ids of merged-away classes and keys whose nodes
        // were deduplicated, keeping the index exactly in sync.
        self.op_index.clear();
        for (&id, class) in &self.classes {
            for node in &class.nodes {
                self.op_index.entry(node.op_key()).or_default().push(id);
            }
        }
        for ids in self.op_index.values_mut() {
            ids.sort_unstable();
            ids.dedup();
        }

        // The relational index is maintained incrementally: remap every
        // column entry through the union-find instead of a wholesale
        // recompute (columns where nothing moved skip their re-sort).
        self.rel_index.canonicalize(uf);
    }

    /// Are the two expressions in the same class (without inserting)?
    pub fn equivs(&self, a: &RecExpr<L>, b: &RecExpr<L>) -> bool {
        match (self.lookup_expr(a), self.lookup_expr(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Extract *some* concrete term from class `id` (smallest by node
    /// count). Useful for debugging and error messages.
    pub fn id_to_expr(&self, id: Id) -> RecExpr<L> {
        let extractor = crate::extract::Extractor::new(self, crate::extract::AstSize);
        extractor
            .find_best(id)
            .expect("class has an extractable term")
            .1
    }

    /// Debug validation of the e-graph invariants; panics on violation.
    /// Only intended for tests.
    pub fn check_invariants(&self) {
        assert!(self.clean, "must rebuild before checking invariants");
        for (&id, class) in &self.classes {
            assert_eq!(id, self.find(id), "class key must be canonical");
            assert!(!class.nodes.is_empty(), "class {id} is empty");
            for node in &class.nodes {
                let canon = self.canonicalize(node.clone());
                assert_eq!(&canon, node, "node in class {id} is not canonical");
                let memo_id = self
                    .memo
                    .get(&canon)
                    .unwrap_or_else(|| panic!("node {node:?} of class {id} not in memo"));
                assert_eq!(
                    self.find(*memo_id),
                    id,
                    "memo maps node {node:?} to the wrong class"
                );
            }
        }
        // congruence: canonical nodes must be unique across classes
        let mut seen: FxHashMap<&L, Id> = FxHashMap::default();
        for (&id, class) in &self.classes {
            for node in &class.nodes {
                if let Some(&other) = seen.get(node) {
                    panic!("congruence violated: {node:?} in classes {other} and {id}");
                }
                seen.insert(node, id);
            }
        }
        // op-head index: must map each head to exactly the canonical
        // classes containing a node with that head, sorted
        let mut want: FxHashMap<OpKey, Vec<Id>> = FxHashMap::default();
        for (&id, class) in &self.classes {
            for node in &class.nodes {
                want.entry(node.op_key()).or_default().push(id);
            }
        }
        for ids in want.values_mut() {
            ids.sort_unstable();
            ids.dedup();
        }
        for (key, ids) in &want {
            let got = self
                .op_index
                .get(key)
                .unwrap_or_else(|| panic!("op index is missing key {key:?} (classes {ids:?})"));
            assert_eq!(got, ids, "op index for {key:?} disagrees with the classes");
        }
        for (key, ids) in &self.op_index {
            if !ids.is_empty() {
                assert!(
                    want.contains_key(key),
                    "op index has stale key {key:?} -> {ids:?}"
                );
            }
        }
        // relational index: the incrementally maintained columns must
        // equal from-scratch construction over the canonical class
        // nodes (HashMap equality is key-set + per-column equality, so
        // this covers spurious, missing, unsorted, and duplicated
        // entries at once).
        let want_rel = RelIndex::rebuild_from(self.classes.values().flat_map(|c| c.nodes.iter()));
        assert_eq!(
            self.rel_index, want_rel,
            "relational index disagrees with from-scratch construction"
        );
        // dirty set: only canonical, live class ids (no merged-away ids
        // lingering), every dirty class discoverable through the op-head
        // index (each of its nodes' buckets lists it — otherwise delta
        // search could never visit it), and closed under the parent
        // relation (a clean parent of a dirty child would hide matches
        // whose sub-term changed).
        for &id in &self.dirty {
            assert_eq!(id, self.find(id), "dirty set holds non-canonical id {id}");
            let class = self
                .classes
                .get(&id)
                .unwrap_or_else(|| panic!("dirty set holds dead class {id}"));
            for node in &class.nodes {
                assert!(
                    self.classes_with_op(node.op_key()).contains(&id),
                    "dirty class {id} missing from op bucket for {:?}",
                    node.op_key()
                );
            }
            for &(_, pid) in &class.parents {
                let pid = self.find(pid);
                assert!(
                    self.dirty.contains(&pid),
                    "dirty set not parent-closed: {id} dirty but parent {pid} clean"
                );
            }
        }
    }
}

impl<L: Language, A: Analysis<L>> fmt::Debug for EGraph<L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EGraph {{ classes: {}, nodes: {} }}",
            self.number_of_classes(),
            self.total_number_of_nodes()
        )?;
        for id in self.class_ids() {
            let class = self.class(id);
            write!(f, "  {id}: [")?;
            for (i, n) in class.nodes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if n.is_leaf() {
                    write!(f, "{}", n.op_display())?;
                } else {
                    write!(f, "({}", n.op_display())?;
                    for c in n.children() {
                        write!(f, " {c}")?;
                    }
                    write!(f, ")")?;
                }
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    type EG = EGraph<Arith, ()>;

    fn add_str(eg: &mut EG, s: &str) -> Id {
        let e = parse_rec_expr(s).unwrap();
        eg.add_expr(&e)
    }

    #[test]
    fn add_is_hash_consing() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(+ x y)");
        let b = add_str(&mut eg, "(+ x y)");
        assert_eq!(a, b);
        assert_eq!(eg.number_of_classes(), 3);
        assert_eq!(eg.total_number_of_nodes(), 3);
    }

    #[test]
    fn rebuild_audit_gate_sweeps_invariants() {
        // With the gate forced on, every rebuild ends in a full
        // check_invariants sweep (this is what SPORES_AUDIT=1 turns on
        // for a whole test run). Restore the off state afterwards so
        // other tests in this binary keep the default fast path.
        set_rebuild_audit(true);
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(+ x y)");
        let b = add_str(&mut eg, "(+ y x)");
        eg.union(a, b);
        eg.rebuild();
        assert!(audit_enabled());
        set_rebuild_audit(false);
        assert!(!audit_enabled());
    }

    #[test]
    fn union_merges_classes() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(+ x y)");
        let b = add_str(&mut eg, "(+ y x)");
        assert_ne!(eg.find(a), eg.find(b));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        assert_eq!(eg.class(a).len(), 2);
        eg.check_invariants();
    }

    #[test]
    fn congruence_closure_propagates() {
        // Paper §3.1: when A+A is merged with 2*A, (A+A)^2 must merge
        // with (2*A)^2. Modeled here with neg as the outer operator.
        let mut eg = EG::default();
        let x = add_str(&mut eg, "x");
        let y = add_str(&mut eg, "y");
        let nx = add_str(&mut eg, "(neg x)");
        let ny = add_str(&mut eg, "(neg y)");
        assert_ne!(eg.find(nx), eg.find(ny));
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(eg.find(nx), eg.find(ny), "congruence must merge parents");
        eg.check_invariants();
    }

    #[test]
    fn deep_congruence_chain() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(neg (neg (neg (neg x))))");
        let b = add_str(&mut eg, "(neg (neg (neg (neg y))))");
        let x = add_str(&mut eg, "x");
        let y = add_str(&mut eg, "y");
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        eg.check_invariants();
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut eg = EG::default();
        add_str(&mut eg, "(+ x y)");
        let n = eg.total_number_of_nodes();
        let expr = parse_rec_expr::<Arith>("(* x y)").unwrap();
        assert_eq!(eg.lookup_expr(&expr), None);
        assert_eq!(eg.total_number_of_nodes(), n);
        let expr2 = parse_rec_expr::<Arith>("(+ x y)").unwrap();
        assert!(eg.lookup_expr(&expr2).is_some());
    }

    #[test]
    fn equivs_after_union() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(* (+ x y) z)");
        let b = add_str(&mut eg, "(* z (+ x y))");
        eg.union(a, b);
        eg.rebuild();
        let ea = parse_rec_expr::<Arith>("(* (+ x y) z)").unwrap();
        let eb = parse_rec_expr::<Arith>("(* z (+ x y))").unwrap();
        assert!(eg.equivs(&ea, &eb));
        eg.check_invariants();
    }

    #[test]
    fn self_union_is_noop() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(+ x y)");
        let (_, changed) = eg.union(a, a);
        assert!(!changed);
        assert!(eg.is_clean());
    }

    #[test]
    fn unions_count() {
        let mut eg = EG::default();
        let x = add_str(&mut eg, "x");
        let y = add_str(&mut eg, "y");
        let z = add_str(&mut eg, "z");
        eg.union(x, y);
        eg.union(y, z);
        eg.rebuild();
        assert_eq!(eg.n_unions(), 2);
        assert_eq!(eg.number_of_classes(), 1);
    }

    #[test]
    fn id_to_expr_roundtrip() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(+ (neg x) 2)");
        eg.rebuild();
        assert_eq!(eg.id_to_expr(a).to_string(), "(+ (neg x) 2)");
    }
}
