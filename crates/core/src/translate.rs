//! LA → RA lowering: the rules R_LR of Figure 2, applied as a
//! deterministic compiler pass.
//!
//! Every LA operator is replaced by its relational reading — element-wise
//! multiply becomes natural join, addition becomes union, aggregates
//! become `Σ`, matrix multiply becomes an aggregated join — with `bind`
//! operators appearing only at the leaves and all `unbind∘bind` pairs
//! eliminated by rename propagation (§2.1: "it eliminates consecutive
//! unbind/bind operators, possibly renaming attributes").
//!
//! Index names are globally fresh (`i0`, `i1`, …), which realizes the
//! "(else rename i)" proviso of rule 3 once and for all: no rewrite can
//! capture an index because no two binders share a name (DESIGN.md §2).

use crate::analysis::{Context, VarMeta};
use crate::lang::{Math, MathExpr};
use spores_egraph::{FxHashMap, Id, Language};
use spores_ir::{ExprArena, LaNode, NodeId, Shape, Symbol};
use std::collections::HashMap;
use std::fmt;

/// The result of translating an LA expression.
#[derive(Clone, Debug)]
pub struct Translation {
    /// The relational plan (pure RA: join/union/aggregate/point-wise).
    pub expr: MathExpr,
    /// Row attribute of the result (`None` when the row dimension is 1).
    pub row: Option<Symbol>,
    /// Column attribute of the result (`None` when the col dimension is 1).
    pub col: Option<Symbol>,
    /// Shape of the result in LA terms.
    pub shape: Shape,
    /// Analysis context: variable metadata plus the dimensions of every
    /// index the translation minted.
    pub ctx: Context,
}

/// Translation failure (currently only shape errors).
#[derive(Clone, Debug)]
pub struct TranslateError(pub String);

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translate error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

/// A translated fragment: a node in the RA expression plus the attribute
/// names of its (up to two) free dimensions.
#[derive(Copy, Clone, Debug)]
struct Frag {
    id: Id,
    row: Option<Symbol>,
    col: Option<Symbol>,
}

/// Hash-consing builder over a [`MathExpr`] so renamed copies share
/// structure.
#[derive(Default)]
struct Builder {
    expr: MathExpr,
    memo: FxHashMap<Math, Id>,
}

impl Builder {
    fn add(&mut self, node: Math) -> Id {
        if let Some(&id) = self.memo.get(&node) {
            return id;
        }
        let id = self.expr.add(node.clone());
        self.memo.insert(node, id);
        id
    }

    fn lit(&mut self, v: f64) -> Id {
        self.add(Math::lit(v))
    }

    fn sym(&mut self, s: Symbol) -> Id {
        self.add(Math::Sym(s))
    }

    fn idx(&mut self, s: Option<Symbol>) -> Id {
        match s {
            Some(s) => self.sym(s),
            None => self.add(Math::NoIdx),
        }
    }

    /// Copy the sub-term at `id`, renaming free index symbols per `map`.
    /// Fresh global naming guarantees capture-freedom (module docs).
    fn rename(&mut self, id: Id, map: &HashMap<Symbol, Symbol>) -> Id {
        if map.is_empty() {
            return id;
        }
        let mut cache: FxHashMap<Id, Id> = FxHashMap::default();
        self.rename_rec(id, map, &mut cache)
    }

    fn rename_rec(
        &mut self,
        id: Id,
        map: &HashMap<Symbol, Symbol>,
        cache: &mut FxHashMap<Id, Id>,
    ) -> Id {
        if let Some(&done) = cache.get(&id) {
            return done;
        }
        let node = self.expr.node(id).clone();
        let new = match node {
            Math::Sym(s) => {
                let s = map.get(&s).copied().unwrap_or(s);
                self.sym(s)
            }
            other => {
                let mapped = other.map_children(|c| self.rename_rec(c, map, cache));
                self.add(mapped)
            }
        };
        cache.insert(id, new);
        new
    }
}

struct Translator<'a> {
    arena: &'a ExprArena,
    shapes: Vec<Option<Shape>>,
    vars: &'a HashMap<Symbol, VarMeta>,
    builder: Builder,
    index_dims: FxHashMap<Symbol, u64>,
    counter: usize,
    memo: FxHashMap<NodeId, Frag>,
    /// Memoized reachable-node counts of built fragments (see
    /// [`Translator::frag_size`]).
    frag_sizes: FxHashMap<Id, usize>,
}

impl<'a> Translator<'a> {
    fn fresh(&mut self, dim: u64) -> Symbol {
        loop {
            let s = Symbol::new(&format!("i{}", self.counter));
            self.counter += 1;
            // avoid collisions with user matrix names like `i0`
            if !self.vars.contains_key(&s) {
                self.index_dims.insert(s, dim);
                return s;
            }
        }
    }

    fn shape(&self, id: NodeId) -> Shape {
        self.shapes[id.index()].expect("shape inferred for reachable node")
    }

    /// Number of nodes reachable from `id` in the builder expression —
    /// the amount of structure a rename would copy. Builder nodes are
    /// immutable once added, so results are memoized per id (large
    /// shared fragments are re-queried by every consuming statement).
    fn frag_size(&mut self, id: Id) -> usize {
        if let Some(&n) = self.frag_sizes.get(&id) {
            return n;
        }
        let mut seen: FxHashMap<Id, ()> = FxHashMap::default();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if seen.insert(n, ()).is_none() {
                stack.extend(self.builder.expr.node(n).children().iter().copied());
            }
        }
        let size = seen.len();
        self.frag_sizes.insert(id, size);
        size
    }

    /// Align `a` and `b` for an element-wise (broadcasting) operation:
    /// rename the *smaller* fragment's attributes onto the larger one's
    /// and return the fragment ids (in operand order) plus the result
    /// attributes. Renaming the smaller side keeps large fragments —
    /// possibly shared across statements of a workload — byte-identical,
    /// so cross-statement CSE survives attribute alignment.
    fn unify(&mut self, a: Frag, b: Frag) -> (Id, Id, Option<Symbol>, Option<Symbol>) {
        let rename_a = self.frag_size(a.id) < self.frag_size(b.id);
        let (keep, mv) = if rename_a { (b, a) } else { (a, b) };
        let mut map = HashMap::new();
        let mut pick = |kept: Option<Symbol>, moved: Option<Symbol>| match (kept, moved) {
            (Some(k), Some(m)) => {
                if m != k {
                    map.insert(m, k);
                }
                Some(k)
            }
            (Some(k), None) => Some(k),
            (None, m) => m,
        };
        let row = pick(keep.row, mv.row);
        let col = pick(keep.col, mv.col);
        let mv_id = self.builder.rename(mv.id, &map);
        if rename_a {
            (mv_id, keep.id, row, col)
        } else {
            (keep.id, mv_id, row, col)
        }
    }

    fn pointwise2(&mut self, a: Frag, b: Frag, mk: impl FnOnce([Id; 2]) -> Math) -> Frag {
        let (a_id, b_id, row, col) = self.unify(a, b);
        let id = self.builder.add(mk([a_id, b_id]));
        Frag { id, row, col }
    }

    fn agg(&mut self, over: Option<Symbol>, body: Id) -> Id {
        match over {
            Some(s) => {
                let i = self.builder.sym(s);
                self.builder.add(Math::Agg([i, body]))
            }
            None => body,
        }
    }

    fn tr(&mut self, id: NodeId) -> Frag {
        if let Some(&f) = self.memo.get(&id) {
            return f;
        }
        let shape = self.shape(id);
        let frag = match *self.arena.node(id) {
            LaNode::Var(v) => {
                let row = (shape.rows > 1).then(|| self.fresh(shape.rows));
                let col = (shape.cols > 1).then(|| self.fresh(shape.cols));
                let (ri, ci) = (self.builder.idx(row), self.builder.idx(col));
                let x = self.builder.sym(v);
                let id = self.builder.add(Math::Bind([ri, ci, x]));
                Frag { id, row, col }
            }
            LaNode::Scalar(n) => Frag {
                id: self.builder.lit(n.get()),
                row: None,
                col: None,
            },
            LaNode::Fill(n, rows, cols) => {
                // matrix(v, m, n): a constant joined with nothing — its
                // schema still spans fresh indices so unions/aggregates
                // see the right dimensions.
                let row = (rows > 1).then(|| self.fresh(rows));
                let col = (cols > 1).then(|| self.fresh(cols));
                let lit = self.builder.lit(n.get());
                // Σ-compatible representation: the literal broadcast over
                // the (row, col) space; pure literals have empty schema,
                // which is exactly the broadcast semantics of K-relations.
                Frag { id: lit, row, col }
            }
            LaNode::Un(op, a) => {
                let fa = self.tr(a);
                use spores_ir::UnOp::*;
                match op {
                    T => Frag {
                        id: fa.id,
                        row: fa.col,
                        col: fa.row,
                    },
                    RowSums => {
                        let id = self.agg(fa.col, fa.id);
                        Frag {
                            id,
                            row: fa.row,
                            col: None,
                        }
                    }
                    ColSums => {
                        let id = self.agg(fa.row, fa.id);
                        Frag {
                            id,
                            row: None,
                            col: fa.col,
                        }
                    }
                    Sum => {
                        let inner = self.agg(fa.col, fa.id);
                        let id = self.agg(fa.row, inner);
                        Frag {
                            id,
                            row: None,
                            col: None,
                        }
                    }
                    Neg => {
                        let m1 = self.builder.lit(-1.0);
                        let id = self.builder.add(Math::Mul([m1, fa.id]));
                        Frag { id, ..fa }
                    }
                    Exp => self.map1(fa, Math::Exp),
                    Log => self.map1(fa, Math::Log),
                    Sqrt => self.map1(fa, Math::Sqrt),
                    Abs => self.map1(fa, Math::Abs),
                    Sign => self.map1(fa, Math::Sign),
                    Sigmoid => self.map1(fa, Math::Sigmoid),
                    Sprop => self.map1(fa, Math::Sprop),
                }
            }
            LaNode::Bin(op, a, b) => {
                let fa = self.tr(a);
                let fb = self.tr(b);
                use spores_ir::BinOp::*;
                match op {
                    Add => self.pointwise2(fa, fb, Math::Add),
                    Sub => {
                        let m1 = self.builder.lit(-1.0);
                        let neg = self.builder.add(Math::Mul([m1, fb.id]));
                        self.pointwise2(fa, Frag { id: neg, ..fb }, Math::Add)
                    }
                    Mul => self.pointwise2(fa, fb, Math::Mul),
                    Div => {
                        let inv = self.builder.add(Math::Inv(fb.id));
                        self.pointwise2(fa, Frag { id: inv, ..fb }, Math::Mul)
                    }
                    Pow => self.pointwise2(fa, fb, Math::Pow),
                    MatMul => {
                        // A(i,k) · B(k,j): align the contraction attrs,
                        // join, aggregate the shared attr. As in `unify`,
                        // the smaller fragment is the one renamed so big
                        // (cross-statement shared) fragments stay intact.
                        //
                        // Because translation memoizes shared LA nodes,
                        // B may alias A's attributes (e.g. `t(X) %*% X`
                        // reuses one fragment for both occurrences of X).
                        // Any outer attr of the renamed side that would
                        // collide with an attr of the kept side must be
                        // freshened, or the self-contraction collapses.
                        let rename_a = self.frag_size(fa.id) < self.frag_size(fb.id);
                        let mut map = HashMap::new();
                        let k = match (fa.col, fb.row) {
                            (Some(ka), Some(kb)) if ka != kb => {
                                if rename_a {
                                    map.insert(ka, kb);
                                    Some(kb)
                                } else {
                                    map.insert(kb, ka);
                                    Some(ka)
                                }
                            }
                            (Some(ka), _) => Some(ka),
                            (None, kb) => kb,
                        };
                        let mut row = fa.row;
                        let mut col = fb.col;
                        if rename_a {
                            if let Some(ra) = fa.row {
                                if Some(ra) == fb.col || Some(ra) == fb.row {
                                    let fresh = self.fresh(self.index_dims[&ra]);
                                    map.insert(ra, fresh);
                                    row = Some(fresh);
                                }
                            }
                        } else if let Some(cb) = fb.col {
                            if Some(cb) == fa.row || Some(cb) == fa.col {
                                let fresh = self.fresh(self.index_dims[&cb]);
                                map.insert(cb, fresh);
                                col = Some(fresh);
                            }
                        }
                        let (a_id, b_id) = if rename_a {
                            (self.builder.rename(fa.id, &map), fb.id)
                        } else {
                            (fa.id, self.builder.rename(fb.id, &map))
                        };
                        let prod = self.builder.add(Math::Mul([a_id, b_id]));
                        let id = self.agg(k, prod);
                        Frag { id, row, col }
                    }
                    Min => self.pointwise2(fa, fb, Math::BMin),
                    Max => self.pointwise2(fa, fb, Math::BMax),
                    Gt => self.pointwise2(fa, fb, Math::Gt),
                    Lt => self.pointwise2(fa, fb, Math::Lt),
                    Ge => self.pointwise2(fa, fb, Math::Ge),
                    Le => self.pointwise2(fa, fb, Math::Le),
                }
            }
        };
        self.memo.insert(id, frag);
        frag
    }

    fn map1(&mut self, a: Frag, mk: impl FnOnce(Id) -> Math) -> Frag {
        let id = self.builder.add(mk(a.id));
        Frag { id, ..a }
    }
}

/// Translate two LA expressions of identical shape with *aligned* result
/// attributes, packaged under a synthetic `+` root (so one `RecExpr`
/// carries both). Used by the Figure 14 derivation checks: feeding both
/// sides into one e-graph only makes sense when their free attributes
/// coincide.
pub fn translate_pair(
    arena: &ExprArena,
    lhs: NodeId,
    rhs: NodeId,
    vars: &HashMap<Symbol, VarMeta>,
) -> Result<Translation, TranslateError> {
    let env: spores_ir::ShapeEnv = vars.iter().map(|(&k, v)| (k, v.shape)).collect();
    // infer shapes for both roots (the arena may interleave them)
    let shapes_l = arena
        .infer_shapes(lhs, &env)
        .map_err(|e| TranslateError(e.to_string()))?;
    let shapes_r = arena
        .infer_shapes(rhs, &env)
        .map_err(|e| TranslateError(e.to_string()))?;
    let mut shapes = shapes_l;
    for (i, s) in shapes_r.into_iter().enumerate() {
        if shapes[i].is_none() {
            shapes[i] = s;
        }
    }
    let mut tr = Translator {
        arena,
        shapes,
        vars,
        builder: Builder::default(),
        index_dims: FxHashMap::default(),
        counter: 0,
        memo: FxHashMap::default(),
        frag_sizes: FxHashMap::default(),
    };
    let fl = tr.tr(lhs);
    let fr = tr.tr(rhs);
    // align rhs attributes onto lhs (they denote the same dimensions)
    let combined = tr.pointwise2(fl, fr, Math::Add);
    let shape = tr.shape(lhs);
    let expr = MathExpr::extract(&tr.builder.expr, combined.id);
    let mut ctx = Context::new();
    for (&name, &meta) in vars {
        ctx.vars.insert(name, meta);
    }
    ctx.index_dims = tr.index_dims;
    Ok(Translation {
        expr,
        row: combined.row,
        col: combined.col,
        shape,
        ctx,
    })
}

/// One statement of a translated workload: its relational plan plus the
/// result orientation, mirroring [`Translation`] per root.
#[derive(Clone, Debug)]
pub struct RootTranslation {
    pub name: Symbol,
    pub expr: MathExpr,
    pub row: Option<Symbol>,
    pub col: Option<Symbol>,
    pub shape: Shape,
}

/// The result of translating a whole workload bundle through ONE
/// translator: statements share fragments (and therefore index names)
/// wherever their LA DAGs share nodes, so adding every root to one
/// e-graph puts repeated subexpressions in the same e-class.
#[derive(Clone, Debug)]
pub struct WorkloadTranslation {
    pub roots: Vec<RootTranslation>,
    /// One analysis context covering every statement.
    pub ctx: Context,
}

/// Translate all roots of a workload bundle with a single translator.
///
/// `vars` must cover every leaf variable any root reads — for SSA
/// bundles that includes the version symbols defined by earlier roots
/// (with their estimated metadata), exactly like the per-statement
/// pipeline sees them.
pub fn translate_workload(
    arena: &ExprArena,
    roots: &[(Symbol, NodeId)],
    vars: &HashMap<Symbol, VarMeta>,
) -> Result<WorkloadTranslation, TranslateError> {
    let env: spores_ir::ShapeEnv = vars.iter().map(|(&k, v)| (k, v.shape)).collect();
    // merged shape inference: the arena interleaves the roots' sub-DAGs
    let mut shapes: Vec<Option<Shape>> = vec![None; arena.len()];
    for &(name, root) in roots {
        let inferred = arena
            .infer_shapes(root, &env)
            .map_err(|e| TranslateError(format!("{name}: {e}")))?;
        for (i, s) in inferred.into_iter().enumerate() {
            if shapes[i].is_none() {
                shapes[i] = s;
            }
        }
    }
    let mut tr = Translator {
        arena,
        shapes,
        vars,
        builder: Builder::default(),
        index_dims: FxHashMap::default(),
        counter: 0,
        memo: FxHashMap::default(),
        frag_sizes: FxHashMap::default(),
    };
    let mut out = Vec::with_capacity(roots.len());
    for &(name, root) in roots {
        let frag = tr.tr(root);
        let shape = tr.shape(root);
        out.push((name, frag, shape));
    }
    // RecExpr extraction re-numbers nodes per root; sharing is restored
    // when the roots are added to one hash-consing e-graph.
    let roots = out
        .into_iter()
        .map(|(name, frag, shape)| RootTranslation {
            name,
            expr: MathExpr::extract(&tr.builder.expr, frag.id),
            row: frag.row,
            col: frag.col,
            shape,
        })
        .collect();
    let mut ctx = Context::new();
    for (&name, &meta) in vars {
        ctx.vars.insert(name, meta);
    }
    ctx.index_dims = tr.index_dims;
    Ok(WorkloadTranslation { roots, ctx })
}

/// Translate the LA expression rooted at `root` into a relational plan.
pub fn translate(
    arena: &ExprArena,
    root: NodeId,
    vars: &HashMap<Symbol, VarMeta>,
) -> Result<Translation, TranslateError> {
    let env: spores_ir::ShapeEnv = vars.iter().map(|(&k, v)| (k, v.shape)).collect();
    let shapes = arena
        .infer_shapes(root, &env)
        .map_err(|e| TranslateError(e.to_string()))?;
    let mut tr = Translator {
        arena,
        shapes,
        vars,
        builder: Builder::default(),
        index_dims: FxHashMap::default(),
        counter: 0,
        memo: FxHashMap::default(),
        frag_sizes: FxHashMap::default(),
    };
    let frag = tr.tr(root);
    let shape = tr.shape(root);

    // The RecExpr root must be the last node; extract the reachable
    // sub-term to guarantee it.
    let expr = MathExpr::extract(&tr.builder.expr, frag.id);

    let mut ctx = Context::new();
    for (&name, &meta) in vars {
        ctx.vars.insert(name, meta);
    }
    ctx.index_dims = tr.index_dims;

    Ok(Translation {
        expr,
        row: frag.row,
        col: frag.col,
        shape,
        ctx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spores_ir::parse_expr;

    fn vars(list: &[(&str, (u64, u64))]) -> HashMap<Symbol, VarMeta> {
        list.iter()
            .map(|&(n, (r, c))| (Symbol::new(n), VarMeta::dense(r, c)))
            .collect()
    }

    fn tr(src: &str, vs: &[(&str, (u64, u64))]) -> Translation {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        translate(&arena, root, &vars(vs)).unwrap()
    }

    #[test]
    fn variable_binds_fresh_indices() {
        let t = tr("X", &[("X", (3, 4))]);
        assert_eq!(t.expr.to_string(), "(b i0 i1 X)");
        assert!(t.row.is_some() && t.col.is_some());
        assert_eq!(t.ctx.index_dims.len(), 2);
    }

    #[test]
    fn scalar_variable_has_no_attrs() {
        let t = tr("s", &[("s", (1, 1))]);
        assert_eq!(t.expr.to_string(), "(b _ _ s)");
        assert!(t.row.is_none() && t.col.is_none());
    }

    #[test]
    fn transpose_swaps_attrs_without_nodes() {
        let t = tr("t(X)", &[("X", (3, 4))]);
        // transpose is pure attribute bookkeeping — no RA node at all
        assert_eq!(t.expr.to_string(), "(b i0 i1 X)");
        assert_eq!(t.shape, Shape::new(4, 3));
        // the row attribute of the result is X's column attribute
        let (row, col) = (t.row.unwrap(), t.col.unwrap());
        assert_eq!(t.ctx.index_dims[&row], 4);
        assert_eq!(t.ctx.index_dims[&col], 3);
    }

    #[test]
    fn elementwise_mul_is_join_with_aligned_attrs() {
        let t = tr("X * Y", &[("X", (3, 4)), ("Y", (3, 4))]);
        assert_eq!(t.expr.to_string(), "(* (b i0 i1 X) (b i0 i1 Y))");
    }

    #[test]
    fn matmul_is_aggregated_join() {
        let t = tr("X %*% Y", &[("X", (3, 4)), ("Y", (4, 5))]);
        assert_eq!(t.expr.to_string(), "(sum i1 (* (b i0 i1 X) (b i1 i3 Y)))");
    }

    #[test]
    fn matvec_contracts_single_attr() {
        let t = tr("X %*% v", &[("X", (3, 4)), ("v", (4, 1))]);
        assert_eq!(t.expr.to_string(), "(sum i1 (* (b i0 i1 X) (b i1 _ v)))");
        assert!(t.col.is_none());
    }

    #[test]
    fn outer_product_has_no_aggregate() {
        let t = tr("u %*% t(v)", &[("u", (3, 1)), ("v", (4, 1))]);
        assert_eq!(t.expr.to_string(), "(* (b i0 _ u) (b i1 _ v))");
    }

    #[test]
    fn broadcasting_vector_keeps_matrix_attrs() {
        let t = tr("X * v", &[("X", (3, 4)), ("v", (3, 1))]);
        assert_eq!(t.expr.to_string(), "(* (b i0 i1 X) (b i0 _ v))");
        assert_eq!(t.shape, Shape::new(3, 4));
    }

    #[test]
    fn subtraction_becomes_negated_union() {
        // X's 1-node bind is the smaller fragment, so it is the side
        // renamed onto the (wrapped) Y fragment's attributes
        let t = tr("X - Y", &[("X", (3, 4)), ("Y", (3, 4))]);
        assert_eq!(t.expr.to_string(), "(+ (b i2 i3 X) (* -1 (b i2 i3 Y)))");
    }

    #[test]
    fn division_becomes_join_with_reciprocal() {
        let t = tr("X / Y", &[("X", (3, 4)), ("Y", (3, 4))]);
        assert_eq!(t.expr.to_string(), "(* (b i2 i3 X) (inv (b i2 i3 Y)))");
    }

    #[test]
    fn aggregates() {
        let t = tr("rowSums(X)", &[("X", (3, 4))]);
        assert_eq!(t.expr.to_string(), "(sum i1 (b i0 i1 X))");
        let t = tr("colSums(X)", &[("X", (3, 4))]);
        assert_eq!(t.expr.to_string(), "(sum i0 (b i0 i1 X))");
        let t = tr("sum(X)", &[("X", (3, 4))]);
        assert_eq!(t.expr.to_string(), "(sum i0 (sum i1 (b i0 i1 X)))");
    }

    #[test]
    fn headline_loss_translates() {
        // Figure 6 (left): sum((X − u vᵀ)²)
        let t = tr(
            "sum((X - u %*% t(v))^2)",
            &[("X", (30, 20)), ("u", (30, 1)), ("v", (20, 1))],
        );
        assert_eq!(
            t.expr.to_string(),
            "(sum i2 (sum i3 (pow (+ (b i2 i3 X) (* -1 (* (b i2 _ u) (b i3 _ v)))) 2)))"
        );
        assert!(t.row.is_none() && t.col.is_none());
    }

    #[test]
    fn shared_subexpressions_share_ra_nodes() {
        // (X*Y) + (X*Y): the LA DAG shares X*Y; the RA plan must too.
        let t = tr("(X * Y) + (X * Y)", &[("X", (3, 4)), ("Y", (3, 4))]);
        // (+ e e) with both children the same id
        let root = t.expr.root();
        let children: Vec<_> = t.expr.node(root).children().to_vec();
        assert_eq!(children[0], children[1]);
    }

    #[test]
    fn chain_matmul_uses_distinct_contraction_indices() {
        let t = tr(
            "A %*% B %*% C",
            &[("A", (2, 3)), ("B", (3, 4)), ("C", (4, 5))],
        );
        assert_eq!(
            t.expr.to_string(),
            "(sum i3 (* (sum i1 (* (b i0 i1 A) (b i1 i3 B))) (b i3 i5 C)))"
        );
    }

    #[test]
    fn shape_errors_propagate() {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, "X %*% Y").unwrap();
        let vs = vars(&[("X", (3, 4)), ("Y", (5, 6))]);
        assert!(translate(&arena, root, &vs).is_err());
    }

    #[test]
    fn workload_translation_shares_fragments_across_statements() {
        // `W %*% H` in two statements must translate to the *same* RA
        // fragment (same indices), so one e-graph unifies them.
        let mut arena = ExprArena::new();
        let r1 = parse_expr(&mut arena, "sum(W %*% H)").unwrap();
        let r2 = parse_expr(&mut arena, "sum(X * log(W %*% H))").unwrap();
        let vs = vars(&[("W", (30, 4)), ("H", (4, 20)), ("X", (30, 20))]);
        let roots = vec![(Symbol::new("a"), r1), (Symbol::new("b"), r2)];
        let wt = translate_workload(&arena, &roots, &vs).unwrap();
        assert_eq!(wt.roots.len(), 2);
        let a = wt.roots[0].expr.to_string();
        let b = wt.roots[1].expr.to_string();
        // the aggregated-join fragment for W %*% H appears verbatim in both
        let product = "(sum i1 (* (b i0 i1 W) (b i1 i3 H)))";
        assert!(a.contains(product), "{a}");
        assert!(b.contains(product), "{b}");
        // and the context carries one dimension table for all statements
        assert!(wt.ctx.index_dims.len() >= 3);
    }

    #[test]
    fn workload_translation_matches_single_statement_translation() {
        let mut arena = ExprArena::new();
        let r1 = parse_expr(&mut arena, "sum((X - u %*% t(v))^2)").unwrap();
        let vs = vars(&[("X", (30, 20)), ("u", (30, 1)), ("v", (20, 1))]);
        let wt = translate_workload(&arena, &[(Symbol::new("loss"), r1)], &vs).unwrap();
        let single = translate(&arena, r1, &vs).unwrap();
        assert_eq!(wt.roots[0].expr.to_string(), single.expr.to_string());
        assert_eq!(wt.roots[0].shape, single.shape);
    }

    #[test]
    fn fresh_names_skip_colliding_variables() {
        // a matrix literally named `i0` must not clash with minted indices
        let t = tr("i0 * Z", &[("i0", (3, 4)), ("Z", (3, 4))]);
        assert!(!t.ctx.index_dims.contains_key(&Symbol::new("i0")));
        // and the plan still joins on aligned fresh attributes
        assert_eq!(t.expr.to_string(), "(* (b i1 i2 i0) (b i1 i2 Z))");
    }
}
