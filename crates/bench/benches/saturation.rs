//! Criterion micro-benchmarks for the equality-saturation engine:
//! e-graph insertion/rebuild throughput, full saturation of the paper's
//! headline expression under both schedulers, and indexed-vs-naive
//! e-matching on saturated graphs of the evaluation workload shapes.
//!
//! With `--snapshot` (or `--snapshot-only`, which skips the criterion
//! benches) this target also writes a machine-readable
//! `BENCH_saturation.json` snapshot (indexed vs naive matching times per
//! workload) to the repository root so later changes have a perf
//! trajectory to compare against. A plain `cargo bench` never touches
//! the committed snapshot.

use criterion::{criterion_group, Criterion};
use spores_core::analysis::{Context, MetaAnalysis, VarMeta};
use spores_core::{default_rules, parse_math, MathRewrite};
use spores_egraph::{Runner, Scheduler};
use std::hint::black_box;
use std::time::Instant;

fn ctx() -> Context {
    Context::new()
        .with_var("X", VarMeta::sparse(1000, 500, 0.001))
        .with_var("U", VarMeta::dense(1000, 1))
        .with_var("V", VarMeta::dense(500, 1))
        .with_index("i", 1000)
        .with_index("j", 500)
}

fn headline() -> spores_core::MathExpr {
    parse_math("(sum i (sum j (pow (+ (b i j X) (* -1 (* (b i _ U) (b j _ V)))) 2)))").unwrap()
}

/// RA translations of the evaluation workloads' hot expressions
/// (the shapes the paper's Figure 8 saturation loop is run on).
fn workload_exprs() -> Vec<(&'static str, spores_core::MathExpr)> {
    let parse = |s: &str| parse_math(s).unwrap();
    vec![
        ("headline", headline()),
        // ALS residual step: (U Vᵀ − X) V
        (
            "als",
            parse("(sum j (* (+ (* (b i _ U) (b j _ V)) (* -1 (b i j X))) (b j _ V)))"),
        ),
        // PNMF objective term: sum(W H)
        ("pnmf", parse("(sum i (sum j (* (b i _ U) (b j _ V))))")),
        // GLM-style weighted inner product: sum(X ⊙ u vᵀ)
        (
            "glm",
            parse("(sum i (sum j (* (b i j X) (* (b i _ U) (b j _ V)))))"),
        ),
        // MLR-style link function under aggregation
        ("mlr", parse("(sum i (sigmoid (* (b i j X) (b j _ V))))")),
    ]
}

/// Saturate one workload expression into a sizable e-graph.
fn saturated(expr: &spores_core::MathExpr) -> spores_core::analysis::MathGraph {
    Runner::new(MetaAnalysis::new(ctx()))
        .with_expr(expr)
        .with_scheduler(Scheduler::Sampling {
            match_limit: 40,
            seed: 1,
        })
        .with_node_limit(5_000)
        .with_iter_limit(8)
        .run(&default_rules())
        .egraph
}

fn search_all_indexed(rules: &[MathRewrite], eg: &spores_core::analysis::MathGraph) -> usize {
    rules.iter().map(|r| r.search(eg).len()).sum()
}

fn search_all_naive(rules: &[MathRewrite], eg: &spores_core::analysis::MathGraph) -> usize {
    rules
        .iter()
        .map(|r| r.searcher.naive_search(eg).len())
        .sum()
}

fn search_all_relational(rules: &[MathRewrite], eg: &spores_core::analysis::MathGraph) -> usize {
    rules
        .iter()
        .map(|r| r.search_relational_with_stats(eg).0.len())
        .sum()
}

fn bench_add_rebuild(c: &mut Criterion) {
    let expr = headline();
    c.bench_function("egraph/add_expr+rebuild", |b| {
        b.iter(|| {
            let mut eg = spores_core::analysis::MathGraph::new(MetaAnalysis::new(ctx()));
            let id = eg.add_expr(black_box(&expr));
            eg.rebuild();
            black_box(id)
        });
    });
}

fn bench_saturation(c: &mut Criterion) {
    let expr = headline();
    let rules = default_rules();
    let mut group = c.benchmark_group("saturation/headline");
    group.sample_size(10);
    group.bench_function("depth_first", |b| {
        b.iter(|| {
            Runner::new(MetaAnalysis::new(ctx()))
                .with_expr(&expr)
                .with_scheduler(Scheduler::DepthFirst)
                .with_node_limit(10_000)
                .run(black_box(&rules))
                .egraph
                .total_number_of_nodes()
        });
    });
    group.bench_function("sampling", |b| {
        b.iter(|| {
            Runner::new(MetaAnalysis::new(ctx()))
                .with_expr(&expr)
                .with_scheduler(Scheduler::Sampling {
                    match_limit: 40,
                    seed: 1,
                })
                .with_node_limit(10_000)
                .run(black_box(&rules))
                .egraph
                .total_number_of_nodes()
        });
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let rules = default_rules();
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for (name, expr) in workload_exprs() {
        let eg = saturated(&expr);
        group.bench_function(&format!("{name}/indexed"), |b| {
            b.iter(|| search_all_indexed(black_box(&rules), &eg));
        });
        group.bench_function(&format!("{name}/naive"), |b| {
            b.iter(|| search_all_naive(black_box(&rules), &eg));
        });
        group.bench_function(&format!("{name}/relational"), |b| {
            b.iter(|| search_all_relational(black_box(&rules), &eg));
        });
    }
    group.finish();
}

/// Time `f` robustly: `batches` batches of `reps` repetitions each,
/// returning the *minimum* batch mean in ns. On a shared single-core
/// host the mean of one batch is contaminated by scheduler and
/// frequency jitter; the minimum over several batches is the stable
/// estimator of the code's actual cost.
fn time_ns<R>(batches: u32, reps: u32, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm-up
    let mut best = u64::MAX;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        best = best.min((start.elapsed().as_nanos() / u128::from(reps)) as u64);
    }
    best
}

/// Write the `BENCH_saturation.json` perf snapshot to the repo root.
///
/// The three matchers are differentially checked before timing: the
/// relational (generic-join) backend must report the same match count
/// *and* the same visited-candidate total as the structural compiled
/// matcher (the funnel contract), and both must agree with
/// `naive_search`. `host_cores` is recorded so downstream tooling can
/// gate any scaling interpretation on multi-core hosts.
fn emit_snapshot() {
    const BATCHES: u32 = 7;
    const REPS: u32 = 20;
    let rules = default_rules();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries = Vec::new();
    for (name, expr) in workload_exprs() {
        let eg = saturated(&expr);
        let matches = search_all_indexed(&rules, &eg);
        assert_eq!(
            matches,
            search_all_naive(&rules, &eg),
            "indexed and naive matchers disagree on {name}"
        );
        assert_eq!(
            matches,
            search_all_relational(&rules, &eg),
            "relational and indexed matchers disagree on {name}"
        );
        let candidates: usize = rules.iter().map(|r| r.search_with_stats(&eg).1).sum();
        let rel_candidates: usize = rules
            .iter()
            .map(|r| r.search_relational_with_stats(&eg).1)
            .sum();
        assert_eq!(
            candidates, rel_candidates,
            "relational funnel accounting diverged on {name}"
        );
        let indexed_ns = time_ns(BATCHES, REPS, || search_all_indexed(&rules, &eg));
        let naive_ns = time_ns(BATCHES, REPS, || search_all_naive(&rules, &eg));
        let relational_ns = time_ns(BATCHES, REPS, || search_all_relational(&rules, &eg));
        let speedup = naive_ns as f64 / indexed_ns as f64;
        let rel_speedup = indexed_ns as f64 / relational_ns as f64;
        println!(
            "matching snapshot {name:>8}: classes {:>5}  indexed {:>9} ns  naive {:>9} ns  relational {:>9} ns  rel-speedup {rel_speedup:.2}x",
            eg.number_of_classes(),
            indexed_ns,
            naive_ns,
            relational_ns,
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"classes\": {},\n",
                "      \"nodes\": {},\n",
                "      \"rules\": {},\n",
                "      \"matches\": {},\n",
                "      \"candidates_visited\": {},\n",
                "      \"indexed_ns\": {},\n",
                "      \"naive_ns\": {},\n",
                "      \"speedup\": {:.3},\n",
                "      \"relational_ns\": {},\n",
                "      \"relational_speedup_vs_indexed\": {:.3}\n",
                "    }}"
            ),
            name,
            eg.number_of_classes(),
            eg.total_number_of_nodes(),
            rules.len(),
            matches,
            candidates,
            indexed_ns,
            naive_ns,
            speedup,
            relational_ns,
            rel_speedup,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"saturation/matching\",\n  \"reps\": {REPS},\n  \"batches\": {BATCHES},\n  \"host_cores\": {host_cores},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_saturation.json");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

criterion_group!(benches, bench_add_rebuild, bench_saturation, bench_matching);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args
        .iter()
        .any(|a| a == "--snapshot" || a == "--snapshot-only")
    {
        emit_snapshot();
    }
    if args.iter().any(|a| a == "--snapshot-only") {
        return;
    }
    benches();
}
