//! Figure 15: run time of the five programs compiled by base / opt2 /
//! saturation, across three data sizes.
//!
//! Data sizes are scaled ~100× down from the paper's 1 TB-RAM testbed
//! (EXPERIMENTS.md documents the mapping); what must reproduce is the
//! *shape*: saturation ≥ opt2 ≥ base everywhere, with the ALS / MLR /
//! PNMF gaps coming from the specific rewrites §4.2 analyses. Besides
//! wall-clock we print deterministic FLOP and allocation counters.
//!
//! Flags: `--small` (quick pass: small size only), `--sizes 1,10` to
//! select scale factors.

use spores_bench::{human, ms, Table};
use spores_ml::{run, Mode, Scale};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scales: Vec<Scale> = if small {
        vec![Scale::Small]
    } else {
        Scale::all().to_vec()
    };
    println!("Figure 15: run time [ms] (and flops / cells allocated) per optimizer");
    println!();
    let mut table = Table::new(&[
        "Program",
        "Size",
        "Mode",
        "Exec ms",
        "Flops",
        "Alloc",
        "Speedup vs base",
    ]);
    for &scale in &scales {
        for workload in spores_ml::figure15_suite(scale) {
            let mut base_time = None;
            for mode in [Mode::Base, Mode::Opt2, Mode::spores()] {
                let report = run(&workload, &mode).expect("run succeeds");
                let secs = report.exec_time.as_secs_f64();
                if matches!(mode, Mode::Base) {
                    base_time = Some(secs);
                }
                let speedup = base_time
                    .map(|b| format!("{:.2}x", b / secs.max(1e-9)))
                    .unwrap_or_default();
                table.row(&[
                    workload.name.to_string(),
                    workload.size_label.clone(),
                    report.mode.to_string(),
                    ms(report.exec_time),
                    human(report.stats.flops),
                    human(report.stats.cells_allocated),
                    speedup,
                ]);
            }
        }
    }
    table.print();
}
