//! End-to-end soundness of workload-level optimization through the
//! service.
//!
//! Random workload bundles are assembled from a roster of shape-correct
//! scalar statements (plus a final statement reading earlier roots, so
//! the SSA def-use wiring is exercised), then:
//!
//! * the served multi-root plan, evaluated through `spores-exec`'s
//!   shared-memo `run_many`, must produce per-root values identical to
//!   evaluating each statement's *independently optimized* plan in
//!   sequence;
//! * an α-variant of the same bundle requested at *different* leaf
//!   sizes (same shape/sparsity classes) after the cache is warm must —
//!   when served as a hit — still evaluate identically to its own
//!   unoptimized input.

use proptest::prelude::*;
use spores_core::{Optimizer, OptimizerConfig, VarMeta};
use spores_exec::{ExecConfig, Executor};
use spores_ir::{ExprArena, NodeId, Symbol, WorkloadExpr};
use spores_matrix::{gen, Matrix};
use spores_service::{OptimizerService, PlanSource, ServiceConfig, WorkloadRequest};
use std::collections::HashMap;

/// Scalar-valued statement templates over `X` (sparse M×N), `Y` (dense
/// M×N), `u` (M×1) and `v` (N×1).
const TEMPLATES: [&str; 8] = [
    "sum((X - u %*% t(v))^2)",
    "sum(X %*% v)",
    "sum(X * Y)",
    "sum(rowSums(X) * u)",
    "sum(colSums(X * Y))",
    "sum(sigmoid(X) * Y)",
    "sum((X + u %*% t(v))^2)",
    "sum(t(u) %*% X %*% v)",
];

/// Build a bundle: one root per picked template (names `s0`, `s1`, …)
/// plus a final root `out` summing every earlier root — reads of the
/// version symbols exercise the def-use wiring end to end.
fn build_bundle(picks: &[usize], names: &[&str; 4]) -> WorkloadExpr {
    let mut arena = ExprArena::new();
    let rename: HashMap<Symbol, Symbol> = [
        (Symbol::new("X"), Symbol::new(names[0])),
        (Symbol::new("Y"), Symbol::new(names[1])),
        (Symbol::new("u"), Symbol::new(names[2])),
        (Symbol::new("v"), Symbol::new(names[3])),
    ]
    .into();
    let mut roots: Vec<(Symbol, NodeId)> = Vec::new();
    for (i, &t) in picks.iter().enumerate() {
        let mut scratch = ExprArena::new();
        let parsed = spores_ir::parse_expr(&mut scratch, TEMPLATES[t % TEMPLATES.len()]).unwrap();
        let root = arena.graft(&scratch, parsed, &rename);
        roots.push((Symbol::new(&format!("s{i}")), root));
    }
    let mut acc = None;
    for &(name, _) in &roots {
        let leaf = arena.var(name);
        acc = Some(match acc {
            None => leaf,
            Some(prev) => arena.add(prev, leaf),
        });
    }
    let out = acc.expect("at least one statement");
    roots.push((Symbol::new("out"), out));
    WorkloadExpr::new(arena, roots).unwrap()
}

fn meta_for(bundle: &WorkloadExpr, names: &[&str; 4], m: u64, n: u64) -> HashMap<Symbol, VarMeta> {
    let mut vars = HashMap::from([
        (Symbol::new(names[0]), VarMeta::sparse(m, n, 0.3)),
        (Symbol::new(names[1]), VarMeta::dense(m, n)),
        (Symbol::new(names[2]), VarMeta::dense(m, 1)),
        (Symbol::new(names[3]), VarMeta::dense(n, 1)),
    ]);
    // version symbols of earlier roots: all templates are scalar-valued
    for &(name, _) in &bundle.roots {
        vars.entry(name).or_insert_with(VarMeta::scalar);
    }
    vars
}

fn inputs_for(names: &[&str; 4], m: usize, n: usize, seed: u64) -> HashMap<Symbol, Matrix> {
    let mut r = gen::rng(seed);
    HashMap::from([
        (
            Symbol::new(names[0]),
            gen::rand_sparse(m, n, 0.3, -1.0, 1.0, &mut r),
        ),
        (
            Symbol::new(names[1]),
            gen::rand_dense(m, n, -1.0, 1.0, &mut r),
        ),
        (
            Symbol::new(names[2]),
            gen::rand_dense(m, 1, -1.0, 1.0, &mut r),
        ),
        (
            Symbol::new(names[3]),
            gen::rand_dense(n, 1, -1.0, 1.0, &mut r),
        ),
    ])
}

fn optimizer_config() -> OptimizerConfig {
    OptimizerConfig {
        node_limit: 4_000,
        iter_limit: 8,
        ..OptimizerConfig::default()
    }
}

fn service() -> OptimizerService {
    OptimizerService::new(ServiceConfig {
        optimizer: optimizer_config(),
        workers: 2,
        ..ServiceConfig::default()
    })
}

/// Evaluate a multi-root plan in root order with progressive bindings.
fn eval_roots(
    arena: &ExprArena,
    roots: &[(Symbol, NodeId)],
    env: &HashMap<Symbol, Matrix>,
) -> Vec<Matrix> {
    let mut env = env.clone();
    Executor::new(ExecConfig { fusion: true })
        .run_many(arena, roots, &mut env)
        .expect("workload evaluates");
    roots.iter().map(|(name, _)| env[name].clone()).collect()
}

const NAMES_A: [&str; 4] = ["X", "Y", "u", "v"];
const NAMES_B: [&str; 4] = ["P", "Q", "a", "b"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_workload_matches_per_statement_optimization(
        picks in prop::collection::vec(0..TEMPLATES.len(), 1..4),
        m in 3u64..9,
        n in 3u64..9,
        seed in any::<u64>(),
    ) {
        let bundle = build_bundle(&picks, &NAMES_A);
        let vars = meta_for(&bundle, &NAMES_A, m, n);
        let svc = service();
        let served = svc
            .optimize_workload(WorkloadRequest::new(bundle.clone(), vars.clone()))
            .unwrap();
        prop_assert_eq!(served.source, PlanSource::Miss);
        prop_assert_eq!(served.roots.len(), bundle.roots.len());

        let env = inputs_for(&NAMES_A, m as usize, n as usize, seed);
        let got = eval_roots(&served.arena, &served.roots, &env);

        // reference: optimize every statement independently (the
        // per-statement pipeline), evaluate sequentially with bindings
        let opt = Optimizer::new(optimizer_config());
        let mut ref_env = env.clone();
        let mut exec = Executor::new(ExecConfig { fusion: true });
        for (i, &(name, root)) in bundle.roots.iter().enumerate() {
            let single = opt.optimize(&bundle.arena, root, &vars).unwrap();
            let want = exec.run(&single.arena, single.root, &ref_env).unwrap();
            ref_env.insert(name, want.clone());
            let scale = 1.0 + want.to_dense().data.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            prop_assert!(
                want.approx_eq(&got[i], 1e-9 * scale),
                "root {i} ({name}) diverged: workload {} vs per-statement {}",
                served.arena.display(served.roots[i].1),
                single.arena.display(single.root)
            );
        }
    }

    #[test]
    fn warm_workload_hits_stay_sound_at_different_leaf_sizes(
        picks in prop::collection::vec(0..TEMPLATES.len(), 1..4),
        m in 3u64..9,
        n in 3u64..9,
        seed in any::<u64>(),
    ) {
        let svc = service();
        // warm with the A-variant at (m, n)
        let bundle_a = build_bundle(&picks, &NAMES_A);
        let vars_a = meta_for(&bundle_a, &NAMES_A, m, n);
        svc.optimize_workload(WorkloadRequest::new(bundle_a, vars_a)).unwrap();

        // α-variant at different sizes within the same classes
        let (m2, n2) = (m + 3, n + 2);
        let bundle_b = build_bundle(&picks, &NAMES_B);
        let vars_b = meta_for(&bundle_b, &NAMES_B, m2, n2);
        let served = svc
            .optimize_workload(WorkloadRequest::new(bundle_b.clone(), vars_b))
            .unwrap();

        let env = inputs_for(&NAMES_B, m2 as usize, n2 as usize, seed);
        let got = eval_roots(&served.arena, &served.roots, &env);
        let want = eval_roots(&bundle_b.arena, &bundle_b.roots, &env);
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            let scale = 1.0 + w.to_dense().data.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            prop_assert!(
                w.approx_eq(g, 1e-9 * scale),
                "root {i} diverged after {:?} at resized leaves: {}",
                served.source,
                served.arena.display(served.roots[i].1)
            );
        }
    }
}

/// Deterministic companion: a size-polymorphic workload template must be
/// served as a HIT when re-requested at different sizes, and still agree.
#[test]
fn warm_hit_at_different_sizes_is_served_from_the_cache() {
    let svc = service();
    let picks = [2usize, 5]; // sum(X * Y), sum(sigmoid(X) * Y): polymorphic
    let bundle_a = build_bundle(&picks, &NAMES_A);
    let vars_a = meta_for(&bundle_a, &NAMES_A, 6, 5);
    let cold = svc
        .optimize_workload(WorkloadRequest::new(bundle_a, vars_a))
        .unwrap();
    assert_eq!(cold.source, PlanSource::Miss);

    let bundle_b = build_bundle(&picks, &NAMES_B);
    let vars_b = meta_for(&bundle_b, &NAMES_B, 9, 8);
    let served = svc
        .optimize_workload(WorkloadRequest::new(bundle_b.clone(), vars_b))
        .unwrap();
    assert_eq!(
        served.source,
        PlanSource::Hit,
        "size-polymorphic workload template must be reusable at other sizes"
    );
    let env = inputs_for(&NAMES_B, 9, 8, 42);
    let got = eval_roots(&served.arena, &served.roots, &env);
    let want = eval_roots(&bundle_b.arena, &bundle_b.roots, &env);
    for (w, g) in want.iter().zip(&got) {
        assert!(w.approx_eq(g, 1e-6));
    }
    assert_eq!(svc.stats().hits, 1);
}
