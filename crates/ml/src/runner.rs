//! Compile-and-run harness for the workloads.
//!
//! Reproduces the three configurations of §4.2:
//!
//! * [`Mode::Base`]   — SystemML optimization level 1: local rewrites
//!   only, no operator fusion.
//! * [`Mode::Opt2`]   — level 2 (SystemML's default): all hand-coded
//!   sum-product rewrites + fusion.
//! * [`Mode::Spores`] — the SPORES optimizer (saturation + extraction),
//!   running inside the same pipeline and executor.
//!
//! Compilation walks the statements in order, maintaining shape/sparsity
//! metadata for assigned variables; execution then loops the compiled
//! statements with persistent state, accumulating wall-clock time and
//! the deterministic [`ExecStats`] counters.

use crate::workloads::Workload;
use spores_core::{ExtractorKind, Optimizer, OptimizerConfig, PhaseTimings, VarMeta};
use spores_egraph::Scheduler;
use spores_exec::{ExecConfig, ExecError, ExecStats, Executor};
use spores_ir::{ExprArena, NodeId, Symbol};
use spores_systemml::{HeuristicRewriter, OptLevel, VarInfo};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which optimizer compiles the program.
#[derive(Clone, Debug)]
pub enum Mode {
    Base,
    Opt2,
    Spores {
        scheduler: Scheduler,
        extractor: ExtractorKind,
    },
}

impl Mode {
    /// The default SPORES configuration (sampling + greedy, the paper's
    /// recommended setting after §4.3).
    pub fn spores() -> Mode {
        Mode::Spores {
            scheduler: Scheduler::default(),
            extractor: ExtractorKind::Greedy,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Mode::Base => "base",
            Mode::Opt2 => "opt2",
            Mode::Spores {
                extractor: ExtractorKind::Greedy,
                scheduler: Scheduler::Sampling { .. },
            } => "S+greedy",
            Mode::Spores {
                extractor: ExtractorKind::Ilp,
                scheduler: Scheduler::Sampling { .. },
            } => "S+ILP",
            Mode::Spores {
                extractor: ExtractorKind::Greedy,
                scheduler: Scheduler::DepthFirst,
            } => "D+greedy",
            Mode::Spores {
                extractor: ExtractorKind::Ilp,
                scheduler: Scheduler::DepthFirst,
            } => "D+ILP",
        }
    }

    fn fusion(&self) -> bool {
        !matches!(self, Mode::Base)
    }
}

/// A compiled program: one optimized DAG per statement.
pub struct Compiled {
    pub statements: Vec<(Symbol, ExprArena, NodeId)>,
    pub report: CompileReport,
}

/// Compile-time measurements (Figure 16).
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    pub total: Duration,
    /// Per-phase breakdown summed over statements (SPORES modes only).
    pub phases: Option<PhaseTimings>,
    /// Did saturation converge on every statement?
    pub converged: bool,
    /// Compile-time timeout tripped (depth-first on large programs).
    pub timed_out: bool,
    /// Peak e-graph size over the statements.
    pub max_e_nodes: usize,
}

/// Execution measurements (Figures 15/17).
#[derive(Clone, Debug)]
pub struct RunReport {
    pub mode: &'static str,
    pub compile: CompileReport,
    pub exec_time: Duration,
    pub stats: ExecStats,
    /// Final values of scalar (1×1) variables, for cross-mode validation.
    pub scalars: HashMap<Symbol, f64>,
}

/// Saturation budget used by the SPORES modes (the paper's 2.5 s cap).
pub const SATURATION_TIMEOUT: Duration = Duration::from_millis(2500);

/// The compilation context of one statement: its target, its root in the
/// shared arena, and the variable metadata visible at that point of the
/// program (inputs plus earlier targets, which get a dense estimate —
/// the single place that rule lives).
struct StatementCtx {
    target: Symbol,
    root: spores_ir::NodeId,
    meta: HashMap<Symbol, VarMeta>,
}

/// Walk the statements in program order, threading shape/sparsity
/// metadata for assigned variables exactly as compilation sees it.
fn statement_contexts(workload: &Workload) -> (ExprArena, Vec<StatementCtx>) {
    let (arena, roots) = workload.parse();
    let mut meta: HashMap<Symbol, VarMeta> = workload
        .input_meta()
        .into_iter()
        .map(|(s, (shape, sparsity))| (s, VarMeta { shape, sparsity }))
        .collect();
    let mut contexts = Vec::with_capacity(roots.len());
    for (target, root) in roots {
        let shape_env: spores_ir::ShapeEnv = meta.iter().map(|(&s, m)| (s, m.shape)).collect();
        let out_shape = arena
            .shape_of(root, &shape_env)
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        contexts.push(StatementCtx {
            target,
            root,
            meta: meta.clone(),
        });
        // computed variables: dense estimate unless already known
        meta.entry(target).or_insert(VarMeta {
            shape: out_shape,
            sparsity: 1.0,
        });
    }
    (arena, contexts)
}

/// Compile `workload` under `mode`.
pub fn compile(workload: &Workload, mode: &Mode) -> Compiled {
    let t0 = Instant::now();
    let (arena, contexts) = statement_contexts(workload);

    let mut statements = Vec::with_capacity(contexts.len());
    let mut phases = PhaseTimings::default();
    let mut converged = true;
    let mut timed_out = false;
    let mut max_e_nodes = 0;

    for StatementCtx { target, root, meta } in contexts {
        let (new_arena, new_root) = match mode {
            Mode::Base | Mode::Opt2 => {
                let level = if matches!(mode, Mode::Base) {
                    OptLevel::Base
                } else {
                    OptLevel::Opt2
                };
                let vars: HashMap<Symbol, VarInfo> = meta
                    .iter()
                    .map(|(&s, m)| {
                        (
                            s,
                            VarInfo {
                                shape: m.shape,
                                sparsity: m.sparsity,
                            },
                        )
                    })
                    .collect();
                let r = HeuristicRewriter::new(level).rewrite(&arena, root, &vars);
                (r.arena, r.root)
            }
            Mode::Spores {
                scheduler,
                extractor,
            } => {
                let opt = Optimizer::new(OptimizerConfig {
                    scheduler: scheduler.clone(),
                    extractor: *extractor,
                    time_limit: SATURATION_TIMEOUT,
                    // sampling spreads match applications across rules, so
                    // it needs more iterations than depth-first to reach
                    // the fixpoint (§4.3: "sampling takes longer to
                    // converge when full saturation is possible")
                    iter_limit: 100,
                    ilp_time_limit: std::time::Duration::from_secs(2),
                    ..OptimizerConfig::default()
                });
                let got = opt
                    .optimize(&arena, root, &meta)
                    .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
                phases.translate += got.timings.translate;
                phases.saturate += got.timings.saturate;
                phases.extract += got.timings.extract;
                phases.lower += got.timings.lower;
                converged &= got.saturation.converged;
                timed_out |= matches!(
                    got.saturation.stop_reason,
                    Some(spores_egraph::StopReason::TimeLimit(_))
                );
                max_e_nodes = max_e_nodes.max(got.saturation.e_nodes);
                (got.arena, got.root)
            }
        };
        statements.push((target, new_arena, new_root));
    }

    let report = CompileReport {
        total: t0.elapsed(),
        phases: matches!(mode, Mode::Spores { .. }).then_some(phases),
        converged,
        timed_out,
        max_e_nodes,
    };
    Compiled { statements, report }
}

/// Execute a compiled program for the workload's iteration count.
pub fn execute(
    workload: &Workload,
    compiled: &Compiled,
    mode: &Mode,
) -> Result<RunReport, ExecError> {
    let mut exec = Executor::new(ExecConfig {
        fusion: mode.fusion(),
    });
    let mut env = workload.inputs.clone();
    let t0 = Instant::now();
    for _ in 0..workload.iterations {
        for (target, arena, root) in &compiled.statements {
            let value = exec.run(arena, *root, &env)?;
            env.insert(*target, value);
        }
    }
    let exec_time = t0.elapsed();
    let scalars = env
        .iter()
        .filter(|(_, m)| m.is_scalar())
        .map(|(&s, m)| (s, m.as_scalar()))
        .collect();
    Ok(RunReport {
        mode: mode.label(),
        compile: compiled.report.clone(),
        exec_time,
        stats: exec.stats,
        scalars,
    })
}

/// Compile + execute in one call.
pub fn run(workload: &Workload, mode: &Mode) -> Result<RunReport, ExecError> {
    let compiled = compile(workload, mode);
    execute(workload, &compiled, mode)
}

/// The per-statement service requests of a workload, in statement order,
/// paired with the statement targets. The metadata threading is shared
/// with [`compile`] (via the same statement walk), so service-compiled
/// plans see exactly the metadata `Mode::spores` compilation sees. Each
/// request carries only the statement's own reachable sub-DAG and the
/// metadata of its free variables, not the whole program.
pub fn statement_requests(workload: &Workload) -> Vec<(Symbol, spores_service::Request)> {
    let (arena, contexts) = statement_contexts(workload);
    contexts
        .into_iter()
        .map(|StatementCtx { target, root, meta }| {
            let (sub, sub_root) = arena.rename_vars(root, &HashMap::new());
            let free: Vec<Symbol> = sub.free_vars(sub_root);
            let vars = meta.into_iter().filter(|(s, _)| free.contains(s)).collect();
            (target, spores_service::Request::new(sub, sub_root, vars))
        })
        .collect()
}

/// Compile `workload` through an [`OptimizerService`]: every statement
/// becomes a service request (batched, so misses fan out across the
/// worker pool), and repeated compilations of the same workload are
/// served from the plan cache without re-running saturation.
///
/// The resulting plans execute under [`Mode::spores`]'s executor
/// configuration (fusion on), so `execute(workload, &compiled,
/// &Mode::spores())` works unchanged.
pub fn compile_with_service(
    workload: &Workload,
    service: &spores_service::OptimizerService,
) -> Compiled {
    let t0 = Instant::now();
    let (targets, requests): (Vec<_>, Vec<_>) = statement_requests(workload).into_iter().unzip();

    let mut statements = Vec::with_capacity(targets.len());
    let mut phases = PhaseTimings::default();
    let mut converged = true;
    let mut timed_out = false;
    let mut max_e_nodes = 0;
    for (target, served) in targets.into_iter().zip(service.optimize_batch(requests)) {
        let served: spores_service::Served =
            served.unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        phases.translate += served.timings.translate;
        phases.saturate += served.timings.saturate;
        phases.extract += served.timings.extract;
        phases.lower += served.timings.lower;
        converged &= served.converged;
        timed_out |= served.timed_out;
        max_e_nodes = max_e_nodes.max(served.e_nodes);
        statements.push((target, served.arena, served.root));
    }

    let report = CompileReport {
        total: t0.elapsed(),
        // for cache hits, phase timings and saturation facts describe the
        // *cached* pipeline run, not time spent in this call
        phases: Some(phases),
        converged,
        timed_out,
        max_e_nodes,
    };
    Compiled { statements, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn check_modes_agree(w: &Workload) {
        let base = run(w, &Mode::Base).unwrap();
        let opt2 = run(w, &Mode::Opt2).unwrap();
        let spores = run(w, &Mode::spores()).unwrap();
        for (name, v) in &base.scalars {
            let o = opt2.scalars[name];
            let s = spores.scalars[name];
            let tol = 1e-6 * (1.0 + v.abs());
            assert!(
                (v - o).abs() < tol,
                "{} {name}: base {v} vs opt2 {o}",
                w.name
            );
            assert!(
                (v - s).abs() < tol,
                "{} {name}: base {v} vs spores {s}",
                w.name
            );
        }
        assert!(!base.scalars.is_empty(), "{} must track a scalar", w.name);
    }

    #[test]
    fn als_modes_agree() {
        check_modes_agree(&workloads::als(60, 40, 4, 11));
    }

    #[test]
    fn glm_modes_agree() {
        check_modes_agree(&workloads::glm(80, 12, 12));
    }

    #[test]
    fn svm_modes_agree() {
        check_modes_agree(&workloads::svm(80, 12, 13));
    }

    #[test]
    fn mlr_modes_agree() {
        check_modes_agree(&workloads::mlr(80, 10, 14));
    }

    #[test]
    fn pnmf_modes_agree() {
        check_modes_agree(&workloads::pnmf(50, 40, 4, 15));
    }

    #[test]
    fn spores_beats_base_on_als_flops() {
        let w = workloads::als(400, 300, 8, 21);
        let base = run(&w, &Mode::Base).unwrap();
        let spores = run(&w, &Mode::spores()).unwrap();
        assert!(
            spores.stats.flops < base.stats.flops,
            "spores {} vs base {}",
            spores.stats.flops,
            base.stats.flops
        );
    }

    #[test]
    fn pnmf_spores_avoids_dense_product_allocation() {
        let w = workloads::pnmf(300, 400, 6, 22);
        let opt2 = run(&w, &Mode::Opt2).unwrap();
        let spores = run(&w, &Mode::spores()).unwrap();
        assert!(
            spores.stats.cells_allocated < opt2.stats.cells_allocated,
            "spores {} vs opt2 {}",
            spores.stats.cells_allocated,
            opt2.stats.cells_allocated
        );
    }

    #[test]
    fn service_compile_agrees_with_direct_spores_compile() {
        use spores_service::{OptimizerService, ServiceConfig};
        let svc = OptimizerService::new(ServiceConfig::default());
        let mode = Mode::spores();
        for w in [
            workloads::als(60, 40, 4, 11),
            workloads::pnmf(50, 40, 4, 15),
        ] {
            let direct = run(&w, &mode).unwrap();
            let compiled = compile_with_service(&w, &svc);
            let via_service = execute(&w, &compiled, &mode).unwrap();
            for (name, v) in &direct.scalars {
                let s = via_service.scalars[name];
                let tol = 1e-6 * (1.0 + v.abs());
                assert!(
                    (v - s).abs() < tol,
                    "{} {name}: direct {v} vs service {s}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn recompiling_a_workload_is_served_from_the_cache() {
        use spores_service::{OptimizerService, ServiceConfig};
        let svc = OptimizerService::new(ServiceConfig::default());
        let w = workloads::glm(80, 12, 12);
        let n_statements = w.statements.len() as u64;
        compile_with_service(&w, &svc);
        let cold = svc.stats();
        assert_eq!(cold.hits, 0);
        assert!(cold.misses >= 1);
        // epoch 2: same statements, same metadata — all hits
        compile_with_service(&w, &svc);
        let warm = svc.stats();
        assert_eq!(warm.misses, cold.misses, "warm compile re-ran the pipeline");
        assert_eq!(warm.hits, n_statements);
    }

    #[test]
    fn compile_report_records_phases_for_spores_only() {
        let w = workloads::glm(50, 8, 31);
        let c = compile(&w, &Mode::spores());
        assert!(c.report.phases.is_some());
        assert!(c.report.max_e_nodes > 0);
        let c2 = compile(&w, &Mode::Opt2);
        assert!(c2.report.phases.is_none());
    }
}
