//! The end-to-end SPORES optimizer (the architecture of Figure 13).
//!
//! `LA plan → [translate] → RA plan → [EQ. saturate] → {equivalent RA
//! plans} → [extract w/ solver] → best RA plan → [translate] → best LA
//! plan`, with per-phase wall-clock timings recorded for the Figure 16
//! compile-time experiments.

use crate::analysis::{MetaAnalysis, VarMeta};
use crate::cost::NnzCost;
use crate::extract::{extract_greedy, extract_ilp, IlpStats};
use crate::lower::lower_with_info;
use crate::rules::{default_rules, MathRewrite};
use crate::translate::{translate, TranslateError, Translation};
use spores_egraph::{Extractor, MatchingMode, ParallelConfig, Runner, Scheduler, StopReason};
use spores_ir::{ExprArena, NodeId, Symbol};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which extraction strategy to run (§4.3 compares these).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExtractorKind {
    /// Bottom-up greedy (fast, ignores sharing).
    Greedy,
    /// The Figure 11 ILP encoding (optimal DAG cost).
    Ilp,
}

/// Optimizer configuration: saturation strategy + limits + extractor.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    pub scheduler: Scheduler,
    pub iter_limit: usize,
    pub node_limit: usize,
    /// Saturation wall-clock budget (the paper's runs cap at 2.5 s).
    pub time_limit: Duration,
    pub extractor: ExtractorKind,
    /// ILP solver budget (only used with [`ExtractorKind::Ilp`]).
    pub ilp_time_limit: Duration,
    /// Workload mode only: per-region convergence freezing (on by
    /// default). Statement regions that stop producing dirty classes
    /// are frozen out of the rule-matching candidate set, and the
    /// sampling cap scales with the number of *active* regions instead
    /// of the statement count. Turning this off recovers the PR-3
    /// behaviour (cap scaled by statement count, every region searched
    /// every iteration).
    pub region_freezing: bool,
    /// Parallel rule-search configuration for the saturation phase
    /// (thread count never changes plans, costs, or statistics — see
    /// [`ParallelConfig`]). Defaults to `SPORES_THREADS` / the host's
    /// available parallelism; embedders running several saturations
    /// concurrently should clamp `threads` so the pools don't
    /// oversubscribe (the service does).
    pub parallel: ParallelConfig,
    /// E-matching backend for the saturation phase: the structural
    /// bind/compare machine (default) or relational generic join over
    /// the (op, arity, slot) index. Matches, stats, and plans are
    /// bit-identical either way — see `spores_egraph::MatchingMode`.
    pub matching: MatchingMode,
    /// Static per-rule backoff priors (rule name → initial fruitless
    /// streak), typically `spores-ruleaudit`'s explosiveness scores via
    /// `backoff_priors`. `None` (the default) leaves backoff exactly as
    /// before — the priors are opt-in and only change pacing, never
    /// plans (see `Runner::with_rule_priors`).
    pub rule_priors: Option<spores_egraph::FxHashMap<String, u32>>,
    /// Turn on the `spores-telemetry` collector for this run: phase and
    /// per-iteration spans land in the global journal, per-rule counters
    /// in the global registry. Off by default — every hook site then
    /// costs one relaxed atomic load. Enabling is sticky (process-wide),
    /// so the caller can drain the journal after the run returns; see
    /// `spores_telemetry::drain` / `dump_chrome_trace`.
    pub telemetry: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            scheduler: Scheduler::default(),
            iter_limit: 30,
            node_limit: 50_000,
            time_limit: Duration::from_millis(2500),
            extractor: ExtractorKind::Greedy,
            ilp_time_limit: Duration::from_secs(5),
            region_freezing: true,
            parallel: ParallelConfig::default(),
            matching: MatchingMode::default(),
            rule_priors: None,
            telemetry: false,
        }
    }
}

/// Wall-clock time spent in each phase (Figure 16's breakdown).
#[derive(Copy, Clone, Debug, Default)]
pub struct PhaseTimings {
    pub translate: Duration,
    pub saturate: Duration,
    pub extract: Duration,
    pub lower: Duration,
}

impl PhaseTimings {
    pub fn total(&self) -> Duration {
        self.translate + self.saturate + self.extract + self.lower
    }
}

/// Saturation outcome statistics (§4.3 reports convergence per program).
#[derive(Clone, Debug)]
pub struct SaturationStats {
    pub iterations: usize,
    pub e_nodes: usize,
    pub e_classes: usize,
    /// Did saturation converge (reach a fixpoint) within the limits?
    pub converged: bool,
    pub stop_reason: Option<StopReason>,
    /// Total candidate classes the op-head index proposed across all
    /// rules and iterations (the classes the matcher actually visited;
    /// without the index this would be rules × iterations × classes).
    pub candidates_visited: usize,
    /// Total (class, subst) match instances found across the run.
    pub matches_found: usize,
    /// Workload mode: total (region, iteration) pairs during which a
    /// statement's region sat frozen (0 for single-statement runs or
    /// with region freezing disabled).
    pub region_frozen_iters: usize,
}

/// The optimizer's output.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The optimized LA expression.
    pub arena: ExprArena,
    pub root: NodeId,
    pub timings: PhaseTimings,
    pub saturation: SaturationStats,
    /// Cost-model estimate of the input plan.
    pub cost_before: f64,
    /// Cost-model estimate of the extracted plan.
    pub cost_after: f64,
    /// ILP statistics (when ILP extraction ran).
    pub ilp: Option<IlpStats>,
    /// True when lowering failed and the input plan was returned as-is.
    pub fell_back: bool,
    /// True when the optimized plan is valid for *any* concrete leaf
    /// dimensions (of the same shape classes), i.e. lowering embedded no
    /// concrete dimension constants. Plan caches may re-instantiate such
    /// plans at other sizes; plans with `size_polymorphic == false` are
    /// pinned to the exact input dimensions.
    pub size_polymorphic: bool,
}

impl Optimized {
    /// Estimated cost improvement factor (≥ 1 when the optimizer helped).
    pub fn speedup_estimate(&self) -> f64 {
        if self.cost_after > 0.0 {
            self.cost_before / self.cost_after
        } else {
            f64::INFINITY
        }
    }
}

/// The SPORES optimizer. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Optimizer {
    pub config: OptimizerConfig,
    /// Override the rule set (defaults to R_EQ + custom equations).
    pub rules: Option<Vec<MathRewrite>>,
}

impl Optimizer {
    pub fn new(config: OptimizerConfig) -> Optimizer {
        Optimizer {
            config,
            rules: None,
        }
    }

    pub fn with_rules(mut self, rules: Vec<MathRewrite>) -> Self {
        self.rules = Some(rules);
        self
    }

    /// Optimize the LA expression rooted at `root`.
    pub fn optimize(
        &self,
        arena: &ExprArena,
        root: NodeId,
        vars: &HashMap<Symbol, VarMeta>,
    ) -> Result<Optimized, TranslateError> {
        let cfg = &self.config;
        if cfg.telemetry {
            spores_telemetry::set_enabled(true);
        }

        // ---- translate (R_LR) ------------------------------------------
        let span = spores_telemetry::span!("optimize.translate");
        let t0 = Instant::now();
        let tr = translate(arena, root, vars)?;
        let t_translate = t0.elapsed();
        drop(span);

        // ---- saturate (R_EQ) -------------------------------------------
        let span = spores_telemetry::span!("optimize.saturate");
        let t0 = Instant::now();
        let rules = match &self.rules {
            Some(r) => r.clone(),
            None => default_rules(),
        };
        let mut runner = Runner::new(MetaAnalysis::new(tr.ctx.clone()))
            .with_expr(&tr.expr)
            .with_scheduler(cfg.scheduler.clone())
            .with_iter_limit(cfg.iter_limit)
            .with_node_limit(cfg.node_limit)
            .with_time_limit(cfg.time_limit)
            .with_parallel(cfg.parallel)
            .with_matching(cfg.matching);
        if let Some(priors) = cfg.rule_priors.clone() {
            runner = runner.with_rule_priors(priors);
        }
        let runner = runner.run(&rules);
        let t_saturate = t0.elapsed();
        drop(span);
        let saturation = SaturationStats {
            iterations: runner.iterations.len(),
            e_nodes: runner.egraph.total_number_of_nodes(),
            e_classes: runner.egraph.number_of_classes(),
            converged: runner.saturated(),
            stop_reason: runner.stop_reason.clone(),
            candidates_visited: runner
                .iterations
                .iter()
                .flat_map(|it| &it.rules)
                .map(|r| r.candidates)
                .sum(),
            matches_found: runner.iterations.iter().map(|it| it.matches_found).sum(),
            region_frozen_iters: 0,
        };
        let egraph = runner.egraph;
        let eroot = runner.roots[0];

        // cost of the input plan, for the before/after comparison
        let cost_before = translated_cost(&tr);

        // ---- extract -----------------------------------------------------
        let t0 = Instant::now();
        let mut ilp_stats = None;
        let extracted = match cfg.extractor {
            ExtractorKind::Greedy => {
                let _span = spores_telemetry::span!("optimize.extract.greedy");
                extract_greedy(&egraph, eroot)
            }
            ExtractorKind::Ilp => {
                let mut span =
                    spores_telemetry::span!("optimize.extract.ilp", e_nodes = saturation.e_nodes,);
                let solver = spores_ilp::Solver {
                    time_limit: cfg.ilp_time_limit,
                    ..spores_ilp::Solver::default()
                };
                extract_ilp(&egraph, eroot, &solver).map(|(c, e, s)| {
                    span.arg("n_vars", s.n_vars);
                    span.arg("rounds", s.rounds);
                    span.arg("optimal", s.optimal);
                    if let Some(w) = s.warm_start {
                        span.arg("warm_start", w);
                    }
                    ilp_stats = Some(s);
                    (c, e)
                })
            }
        };
        let t_extract = t0.elapsed();

        // ---- lower back to LA ---------------------------------------------
        let span = spores_telemetry::span!("optimize.lower");
        let t0 = Instant::now();
        let lowered = extracted
            .as_ref()
            .and_then(|(_, plan)| lower_with_info(plan, tr.row, tr.col, &tr.ctx).ok());
        let t_lower = t0.elapsed();
        drop(span);

        let timings = PhaseTimings {
            translate: t_translate,
            saturate: t_saturate,
            extract: t_extract,
            lower: t_lower,
        };

        match (extracted, lowered) {
            (Some((cost_after, _)), Some(low)) => Ok(Optimized {
                arena: low.arena,
                root: low.root,
                timings,
                saturation,
                cost_before,
                cost_after,
                ilp: ilp_stats,
                fell_back: false,
                size_polymorphic: !low.dim_constants,
            }),
            _ => {
                // extraction or lowering failed: return the input plan
                Ok(Optimized {
                    arena: arena.clone(),
                    root,
                    timings,
                    saturation,
                    cost_before,
                    cost_after: cost_before,
                    ilp: ilp_stats,
                    fell_back: true,
                    size_polymorphic: false,
                })
            }
        }
    }
}

/// Price an already-translated plan with the greedy extractor: build a
/// fresh (unsaturated) e-graph over the expression and read its best cost
/// under [`NnzCost`].
fn translated_cost(tr: &Translation) -> f64 {
    let mut pre = crate::analysis::MathGraph::new(MetaAnalysis::new(tr.ctx.clone()));
    let id = pre.add_expr(&tr.expr);
    pre.rebuild();
    Extractor::new(&pre, NnzCost)
        .best_cost(id)
        .unwrap_or(f64::INFINITY)
}

/// Cost-model estimate ([`NnzCost`], Figure 12) of an LA plan as-is — no
/// saturation, no extraction search. This is what a plan cache's hit
/// re-check pays: translate + one greedy pricing pass, orders of magnitude
/// cheaper than the full pipeline.
pub fn plan_cost(
    arena: &ExprArena,
    root: NodeId,
    vars: &HashMap<Symbol, VarMeta>,
) -> Result<f64, TranslateError> {
    let tr = translate(arena, root, vars)?;
    Ok(translated_cost(&tr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_la, Tensor};
    use spores_ir::parse_expr;

    fn vars(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, VarMeta> {
        list.iter()
            .map(|&(n, (r, c), s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
            .collect()
    }

    fn optimize(src: &str, vs: &HashMap<Symbol, VarMeta>, kind: ExtractorKind) -> Optimized {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let opt = Optimizer::new(OptimizerConfig {
            extractor: kind,
            // keep unit tests quick; the benches use the full budget
            node_limit: 8_000,
            iter_limit: 15,
            ..OptimizerConfig::default()
        });
        opt.optimize(&arena, root, vs).unwrap()
    }

    #[test]
    fn headline_optimization_exploits_sparsity() {
        // §1: sum((X − u vᵀ)²) with sparse X must avoid the dense u vᵀ
        // intermediate. 1000×500 at 0.1% nnz.
        let vs = vars(&[
            ("X", (1000, 500), 0.001),
            ("u", (1000, 1), 1.0),
            ("v", (500, 1), 1.0),
        ]);
        let got = optimize("sum((X - u %*% t(v))^2)", &vs, ExtractorKind::Greedy);
        assert!(!got.fell_back);
        assert!(
            got.speedup_estimate() > 50.0,
            "expected large estimated speedup, got {} ({} -> {}), plan: {}",
            got.speedup_estimate(),
            got.cost_before,
            got.cost_after,
            got.arena.display(got.root)
        );
        // and the optimized plan must not contain the dense outer product
        let shown = got.arena.display(got.root);
        assert!(
            !shown.contains("u %*% t(v)"),
            "dense outer product survived: {shown}"
        );
    }

    #[test]
    fn headline_variant_with_plus_also_optimizes() {
        // §1: "SystemML fails to optimize sum((X + UVᵀ)²), where we just
        // replaced − with +" — SPORES must handle it identically.
        let vs = vars(&[
            ("X", (1000, 500), 0.001),
            ("u", (1000, 1), 1.0),
            ("v", (500, 1), 1.0),
        ]);
        let got = optimize("sum((X + u %*% t(v))^2)", &vs, ExtractorKind::Greedy);
        assert!(
            got.speedup_estimate() > 50.0,
            "plus-variant speedup {} (plan {})",
            got.speedup_estimate(),
            got.arena.display(got.root)
        );
    }

    #[test]
    fn optimized_plan_preserves_semantics() {
        let vs = vars(&[("X", (6, 5), 1.0), ("u", (6, 1), 1.0), ("v", (5, 1), 1.0)]);
        let src = "sum((X - u %*% t(v))^2)";
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let got = optimize(src, &vs, ExtractorKind::Ilp);
        assert!(!got.fell_back);

        let mk = |rows: usize, cols: usize, seed: u64| {
            let mut v = Vec::with_capacity(rows * cols);
            let mut state = seed;
            for _ in 0..rows * cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v.push(((state >> 33) % 1000) as f64 / 100.0 - 5.0);
            }
            Tensor::new(rows, cols, v)
        };
        let tensors = HashMap::from([
            (Symbol::new("X"), mk(6, 5, 1)),
            (Symbol::new("u"), mk(6, 1, 2)),
            (Symbol::new("v"), mk(5, 1, 3)),
        ]);
        let want = eval_la(&arena, root, &tensors).unwrap();
        let have = eval_la(&got.arena, got.root, &tensors).unwrap();
        assert!(
            want.approx_eq(&have, 1e-6),
            "optimized plan diverged: {} vs {:?} / {:?}",
            got.arena.display(got.root),
            want,
            have
        );
    }

    #[test]
    fn als_expansion_distributes_over_sparse_x() {
        // §4.2 ALS: (U Vᵀ − X) V expands to U Vᵀ V − X V when X is sparse
        let vs = vars(&[
            ("X", (2000, 1000), 0.001),
            ("U", (2000, 10), 1.0),
            ("V", (1000, 10), 1.0),
        ]);
        let got = optimize("(U %*% t(V) - X) %*% V", &vs, ExtractorKind::Greedy);
        assert!(!got.fell_back);
        assert!(
            got.speedup_estimate() > 10.0,
            "ALS speedup estimate {} (plan {})",
            got.speedup_estimate(),
            got.arena.display(got.root)
        );
    }

    #[test]
    fn pnmf_sum_wh_becomes_vector_product() {
        // §4.2 PNMF: sum(W H) = dot(colSums(W), rowSums(H)) — never
        // materialize the dense product
        let vs = vars(&[("W", (5000, 10), 1.0), ("H", (10, 3000), 1.0)]);
        let got = optimize("sum(W %*% H)", &vs, ExtractorKind::Greedy);
        assert!(!got.fell_back);
        let shown = got.arena.display(got.root);
        assert!(
            got.cost_after < 100_000.0,
            "sum(WH) should cost ~vector work, got {} ({shown})",
            got.cost_after
        );
    }

    #[test]
    fn timings_are_recorded() {
        let vs = vars(&[("X", (100, 50), 0.1)]);
        let got = optimize("sum(X^2)", &vs, ExtractorKind::Greedy);
        assert!(got.timings.saturate > Duration::ZERO);
        assert!(got.timings.total() >= got.timings.saturate);
        assert!(got.saturation.e_nodes > 0);
        // the indexed matcher's stats thread through to the optimizer
        assert!(got.saturation.matches_found > 0);
        assert!(got.saturation.candidates_visited > 0);
    }

    #[test]
    fn ilp_extraction_runs_end_to_end() {
        let vs = vars(&[
            ("X", (200, 100), 0.01),
            ("u", (200, 1), 1.0),
            ("v", (100, 1), 1.0),
        ]);
        let got = optimize("sum(X * (u %*% t(v)))", &vs, ExtractorKind::Ilp);
        assert!(!got.fell_back);
        let stats = got.ilp.expect("ilp stats recorded");
        assert!(stats.n_vars > 0);
        assert!(stats.optimal);
    }
}
