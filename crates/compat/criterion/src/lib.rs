//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no network access to a
//! registry, so the workspace vendors the subset of the criterion API its
//! benches use: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `finish`, and [`Bencher::iter`].
//!
//! Measurement is intentionally simple: a short warm-up, then a fixed
//! number of timed iterations, reporting min/mean. There is no outlier
//! analysis, no HTML report, and no saved baselines — the numbers are
//! still comparable within one run, which is all the in-repo benches
//! need (e.g. indexed vs naive e-matching on the same workload).

use std::time::{Duration, Instant};

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive (like criterion,
    /// the value is dropped *outside* the timed section).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few untimed iterations.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            drop(std::hint::black_box(out));
            self.samples.push(elapsed);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<50} time: [min {} mean {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark manager (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// No-op for API compatibility (real criterion prints a summary).
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!(name, target...)` — a function running each target
/// against a fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group...)` — the benchmark `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 2 warmup + 3 timed
        assert_eq!(runs, 5);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(4);
            g.bench_function("inner", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 6);
    }
}
