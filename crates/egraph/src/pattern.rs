//! Patterns and e-matching.
//!
//! A pattern is a term with holes (`?a`, `?b`, …). Searching matches the
//! pattern against every e-class (the `match` of Figure 8 in the paper);
//! applying instantiates the pattern under a substitution and inserts it.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language, OpKey, RecExpr};
use crate::relational::{MatchingMode, RelPlan, RelQuery};
use spores_ir::{SExp, Symbol};
use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;

/// A pattern variable, e.g. `?a`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Symbol);

impl Var {
    /// Make a variable from its spelling (with or without leading `?`).
    pub fn new(name: &str) -> Var {
        let name = name.strip_prefix('?').unwrap_or(name);
        Var(Symbol::new(name))
    }

    pub fn symbol(self) -> Symbol {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A substitution from pattern variables to e-class ids.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Subst {
    vec: Vec<(Var, Id)>,
}

impl Subst {
    pub fn get(&self, var: Var) -> Option<Id> {
        self.vec.iter().find(|(v, _)| *v == var).map(|&(_, id)| id)
    }

    pub fn insert(&mut self, var: Var, id: Id) {
        debug_assert!(self.get(var).is_none(), "{var} already bound");
        self.vec.push((var, id));
    }

    /// Canonical ordering so equal substitutions compare equal.
    fn normalize(&mut self) {
        self.vec.sort_unstable();
    }

    pub fn iter(&self) -> impl Iterator<Item = (Var, Id)> + '_ {
        self.vec.iter().copied()
    }
}

/// One node of a pattern: either a language node or a hole.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ENodeOrVar<L> {
    ENode(L),
    Var(Var),
}

impl<L: Language> Language for ENodeOrVar<L> {
    fn children(&self) -> &[Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children(),
            ENodeOrVar::Var(_) => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children_mut(),
            ENodeOrVar::Var(_) => &mut [],
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (ENodeOrVar::ENode(a), ENodeOrVar::ENode(b)) => a.matches(b),
            (ENodeOrVar::Var(a), ENodeOrVar::Var(b)) => a == b,
            _ => false,
        }
    }

    fn op_display(&self) -> String {
        match self {
            ENodeOrVar::ENode(n) => n.op_display(),
            ENodeOrVar::Var(v) => v.to_string(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        if let Some(rest) = op.strip_prefix('?') {
            if !children.is_empty() {
                return Err(format!("pattern variable ?{rest} cannot have children"));
            }
            Ok(ENodeOrVar::Var(Var::new(rest)))
        } else {
            L::from_op(op, children).map(ENodeOrVar::ENode)
        }
    }

    fn op_key(&self) -> OpKey {
        match self {
            // Delegate so a pattern head keys identically to the e-nodes
            // it matches (the default would hash ENodeOrVar's own
            // discriminant instead of the inner language's).
            ENodeOrVar::ENode(n) => n.op_key(),
            // Variables never consult the op index; any stable key works.
            ENodeOrVar::Var(v) => {
                use std::hash::{Hash, Hasher};
                let mut h = crate::hash::FxHasher::default();
                v.hash(&mut h);
                OpKey::from_raw(h.finish())
            }
        }
    }
}

/// One instruction of the compiled pattern machine. Registers hold
/// e-class ids; `Bind` is the only backtracking point.
#[derive(Clone, Debug)]
enum Insn<L> {
    /// For each e-node of the class in register `reg` whose head matches
    /// `node`, write its children into registers `out..out + arity` and
    /// continue; exhausting the nodes backtracks.
    Bind { reg: usize, node: L, out: usize },
    /// Backtrack unless registers `a` and `b` hold the same class
    /// (non-linear patterns such as `(* ?x ?x)`).
    Compare { a: usize, b: usize },
}

/// A pattern lowered once into a flat instruction sequence, executed
/// directly against each candidate class's node vector. Replaces the
/// per-match recursive interpretation of the AST: no recursion over
/// pattern nodes, no re-canonicalization of already-canonical children,
/// and head tests against pre-extracted operator templates.
#[derive(Clone, Debug)]
struct Program<L> {
    insns: Vec<Insn<L>>,
    /// Register holding each pattern variable's binding, in first-occurrence order.
    subst_regs: Vec<(Var, usize)>,
    n_regs: usize,
}

impl<L: Language> Program<L> {
    /// Lower `ast` breadth-first: register 0 is the candidate root class;
    /// every `Bind` allocates a contiguous block for its children, so all
    /// registers are written before any instruction reads them.
    fn compile(ast: &RecExpr<ENodeOrVar<L>>) -> Program<L> {
        let mut insns = Vec::new();
        let mut subst_regs: Vec<(Var, usize)> = Vec::new();
        let mut n_regs = 1usize;
        let mut work: VecDeque<(Id, usize)> = VecDeque::from([(ast.root(), 0)]);
        while let Some((pat, reg)) = work.pop_front() {
            match ast.node(pat) {
                ENodeOrVar::Var(v) => match subst_regs.iter().find(|(u, _)| u == v) {
                    Some(&(_, bound)) => insns.push(Insn::Compare { a: bound, b: reg }),
                    None => subst_regs.push((*v, reg)),
                },
                ENodeOrVar::ENode(n) => {
                    let out = n_regs;
                    n_regs += n.children().len();
                    insns.push(Insn::Bind {
                        reg,
                        node: n.clone(),
                        out,
                    });
                    for (i, &child) in n.children().iter().enumerate() {
                        work.push_back((child, out + i));
                    }
                }
            }
        }
        Program {
            insns,
            subst_regs,
            n_regs,
        }
    }

    /// Run the program with `eclass` (canonical) in the root register,
    /// collecting one [`Subst`] per successful execution path.
    fn run<A: Analysis<L>>(&self, egraph: &EGraph<L, A>, eclass: Id) -> Vec<Subst> {
        let mut regs = Vec::new();
        let mut out = Vec::new();
        self.run_into(egraph, eclass, &mut regs, &mut out);
        out
    }

    /// Like [`Program::run`], but reusing caller-provided scratch
    /// buffers: the search loop visits thousands of candidate classes
    /// per iteration and most produce no match, so allocating a fresh
    /// register file (and output vector) per class dominates the cheap
    /// executions. `out` must be empty on entry; matches are appended.
    fn run_into<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        eclass: Id,
        regs: &mut Vec<Id>,
        out: &mut Vec<Subst>,
    ) {
        debug_assert!(out.is_empty());
        regs.clear();
        regs.resize(self.n_regs, eclass);
        self.exec(egraph, 0, regs, out);
    }

    fn exec<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        pc: usize,
        regs: &mut [Id],
        out: &mut Vec<Subst>,
    ) {
        let Some(insn) = self.insns.get(pc) else {
            let mut subst = Subst::default();
            for &(var, reg) in &self.subst_regs {
                subst.insert(var, regs[reg]);
            }
            out.push(subst);
            return;
        };
        match insn {
            Insn::Bind { reg, node, out: o } => {
                // Every register is canonical on a clean graph: the root
                // comes from a canonical candidate stream, and bound
                // children are canonical after rebuild — so the per-Bind
                // union-find lookup is skipped entirely.
                let class = egraph.class_canonical(regs[*reg]);
                let arity = node.children().len();
                for enode in class.iter() {
                    if !node.matches(enode) {
                        continue;
                    }
                    debug_assert_eq!(enode.children().len(), arity);
                    regs[*o..*o + arity].copy_from_slice(enode.children());
                    self.exec(egraph, pc + 1, regs, out);
                }
            }
            Insn::Compare { a, b } => {
                debug_assert_eq!(regs[*a], egraph.find(regs[*a]));
                debug_assert_eq!(regs[*b], egraph.find(regs[*b]));
                if regs[*a] == regs[*b] {
                    self.exec(egraph, pc + 1, regs, out);
                }
            }
        }
    }
}

/// A compiled pattern: the s-expression AST plus its lowered [`Program`].
///
/// Both fields are private so they cannot drift apart: the only way to
/// build a `Pattern` is [`Pattern::new`]/[`Pattern::parse`], which
/// compile the program from the AST.
#[derive(Clone, Debug)]
pub struct Pattern<L> {
    ast: RecExpr<ENodeOrVar<L>>,
    program: Program<L>,
    /// The same pattern lowered for the relational (generic-join)
    /// backend; which lowering runs is the caller's [`MatchingMode`].
    relational: RelQuery<L>,
}

/// All matches of a pattern inside one e-class.
#[derive(Clone, Debug)]
pub struct SearchMatches {
    pub eclass: Id,
    pub substs: Vec<Subst>,
}

impl<L: Language> Pattern<L> {
    pub fn new(ast: RecExpr<ENodeOrVar<L>>) -> Self {
        let program = Program::compile(&ast);
        let relational = RelQuery::compile(&ast);
        Pattern {
            ast,
            program,
            relational,
        }
    }

    /// The pattern's abstract syntax tree.
    pub fn ast(&self) -> &RecExpr<ENodeOrVar<L>> {
        &self.ast
    }

    /// Parse a pattern from s-expression syntax, e.g. `(* ?a (+ ?b ?c))`.
    pub fn parse(src: &str) -> Result<Self, String> {
        let sexp = spores_ir::parse_sexp(src).map_err(|e| e.to_string())?;
        let mut ast = RecExpr::default();
        add_pattern_sexp::<L>(&sexp, &mut ast)?;
        Ok(Pattern::new(ast))
    }

    /// The variables appearing in this pattern.
    pub fn vars(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        for node in self.ast.nodes() {
            if let ENodeOrVar::Var(v) = node {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        vars
    }

    /// The candidate classes the op-head index yields for this pattern:
    /// classes containing a node with the pattern root's head, or every
    /// class when the root is a variable. Sorted (deterministic order).
    fn candidates<'g, A: Analysis<L>>(&self, egraph: &'g EGraph<L, A>) -> Cow<'g, [Id]> {
        match self.ast.node(self.ast.root()) {
            ENodeOrVar::ENode(n) => Cow::Borrowed(egraph.classes_with_op(n.op_key())),
            ENodeOrVar::Var(_) => Cow::Owned(egraph.class_ids()),
        }
    }

    /// Search for matches, visiting only the classes the op-head index
    /// proposes for the pattern root instead of every e-class.
    pub fn search<A: Analysis<L>>(&self, egraph: &EGraph<L, A>) -> Vec<SearchMatches> {
        self.search_with_stats(egraph).0
    }

    /// Like [`Pattern::search`], also reporting how many candidate
    /// classes the op-head index proposed (the classes actually visited).
    pub fn search_with_stats<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
    ) -> (Vec<SearchMatches>, usize) {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let candidates = self.candidates(egraph);
        self.search_candidates(egraph, candidates.iter().copied())
    }

    /// Delta search: like [`Pattern::search_with_stats`] but restricted
    /// to the classes in `dirty` — the op-head candidates for the
    /// pattern root intersected with the dirty set.
    ///
    /// Because the e-graph closes the dirty set over the parent
    /// relation ([`EGraph::dirty_classes`]), a match is new only if its
    /// *root* class is dirty — a change at any bound child position
    /// dirties every ancestor, so the root-level intersection already
    /// covers sub-term changes and no per-child dirty test is needed.
    /// Matches rooted in clean classes are exactly the matches the
    /// previous full sweep already returned (modulo id canonicalization),
    /// which is the property `tests/proptest_delta.rs` checks
    /// differentially against [`Pattern::naive_search`].
    pub fn search_delta_with_stats<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        dirty: &crate::hash::FxHashSet<Id>,
    ) -> (Vec<SearchMatches>, usize) {
        let mut sorted: Vec<Id> = dirty.iter().copied().collect();
        sorted.sort_unstable();
        let ids = self.delta_candidate_ids(egraph, &sorted);
        self.search_ids_with_stats(egraph, &ids)
    }

    /// The exact candidate list delta search visits: the op-head
    /// candidates for the pattern root intersected with the dirty set,
    /// in ascending id order. `dirty_sorted` must be sorted and
    /// deduplicated; the saturation driver sorts each iteration's dirty
    /// snapshot once and shares it across every rule, and the parallel
    /// search phase shards the returned list across its pool —
    /// [`Pattern::search_ids_with_stats`] over the whole list is
    /// exactly [`Pattern::search_delta_with_stats`].
    pub fn delta_candidate_ids<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        dirty_sorted: &[Id],
    ) -> Vec<Id> {
        debug_assert!(dirty_sorted.windows(2).all(|w| w[0] < w[1]));
        match self.ast.node(self.ast.root()) {
            ENodeOrVar::ENode(n) => {
                let bucket = egraph.classes_with_op(n.op_key());
                // Intersect from the smaller side; either way the
                // candidates come out in ascending id order, so match
                // order is deterministic and mode-independent.
                if dirty_sorted.len() < bucket.len() {
                    dirty_sorted
                        .iter()
                        .copied()
                        .filter(|id| bucket.binary_search(id).is_ok())
                        .collect()
                } else {
                    bucket
                        .iter()
                        .copied()
                        .filter(|id| dirty_sorted.binary_search(id).is_ok())
                        .collect()
                }
            }
            ENodeOrVar::Var(_) => {
                // Canonicalize + dedup: a banked dirty set can hold a
                // merged-away id alongside its canonical survivor (the
                // ENode arm is screened by the rebuilt op-index, this
                // arm is not), and visiting both would duplicate the
                // class's matches.
                let mut ids: Vec<Id> = dirty_sorted.iter().map(|&id| egraph.find(id)).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
        }
    }

    /// Like [`Pattern::search_with_stats`] but skipping the classes in
    /// `excluded` (workload mode's frozen regions). With an empty
    /// exclusion set this is exactly a full sweep.
    pub fn search_except_with_stats<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        excluded: &crate::hash::FxHashSet<Id>,
    ) -> (Vec<SearchMatches>, usize) {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let candidates = self.candidates(egraph);
        self.search_candidates(
            egraph,
            candidates
                .iter()
                .copied()
                .filter(|id| !excluded.contains(id)),
        )
    }

    /// The exact candidate list a frozen-filtered full sweep visits
    /// (ascending class ids): [`Pattern::search_ids_with_stats`] over
    /// the returned list is exactly
    /// [`Pattern::search_except_with_stats`].
    pub fn except_candidate_ids<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        excluded: &crate::hash::FxHashSet<Id>,
    ) -> Vec<Id> {
        let candidates = self.candidates(egraph);
        if excluded.is_empty() {
            return candidates.into_owned();
        }
        candidates
            .iter()
            .copied()
            .filter(|id| !excluded.contains(id))
            .collect()
    }

    /// Run the compiled machine over an explicit candidate id list —
    /// the shard form of the search entry points. The ids must be
    /// canonical and on a clean graph, as produced by
    /// [`Pattern::delta_candidate_ids`] /
    /// [`Pattern::except_candidate_ids`].
    pub fn search_ids_with_stats<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        ids: &[Id],
    ) -> (Vec<SearchMatches>, usize) {
        self.search_candidates(egraph, ids.iter().copied())
    }

    /// [`Pattern::search_ids_with_stats`] with an explicit backend —
    /// the funnel the saturation driver's search phase goes through.
    /// Both modes visit exactly the ids given (identical `visited`
    /// counts) and return bit-identical matches; see
    /// `tests/proptest_relational.rs`.
    pub fn search_ids_with_stats_mode<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        ids: &[Id],
        mode: MatchingMode,
    ) -> (Vec<SearchMatches>, usize) {
        match mode {
            MatchingMode::Structural => self.search_candidates(egraph, ids.iter().copied()),
            MatchingMode::Relational => self.search_candidates_relational(egraph, ids),
        }
    }

    /// Full sweep on the relational backend (the generic-join analogue
    /// of [`Pattern::search`]).
    pub fn search_relational<A: Analysis<L>>(&self, egraph: &EGraph<L, A>) -> Vec<SearchMatches> {
        self.search_relational_with_stats(egraph).0
    }

    /// Like [`Pattern::search_with_stats`] but executing the
    /// generic-join plan instead of the structural machine.
    pub fn search_relational_with_stats<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
    ) -> (Vec<SearchMatches>, usize) {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let candidates = self.candidates(egraph);
        self.search_candidates_relational(egraph, &candidates)
    }

    /// The relational twin of [`Pattern::search_candidates`]: build one
    /// generic-join plan for the sweep (the candidate count picks lazy
    /// vs eager guard columns), then run it per candidate with the same
    /// visited accounting, scratch reuse, and `finish_matches`
    /// normalization. A plan with an empty guard column proves no
    /// candidate can match: the executor returns immediately, but every
    /// id still counts as visited — `candidates_visited` must stay
    /// comparable across modes.
    fn search_candidates_relational<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        ids: &[Id],
    ) -> (Vec<SearchMatches>, usize) {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        // Adaptive planning: sweeps too small to amortize per-sweep
        // selectivity planning run the query's precompiled static plan.
        // Purely a cost decision — both paths accept identical bindings
        // (see `relational::PLANNED_SWEEP_MIN`).
        let plan = if ids.len() >= crate::relational::PLANNED_SWEEP_MIN {
            let plan = RelPlan::build(&self.relational, egraph, ids.len());
            if plan.is_impossible() {
                return (Vec::new(), ids.len());
            }
            Some(plan)
        } else {
            // Semi-join precheck against the index columns: an
            // inapplicable pattern skips the sweep after O(#atoms) hash
            // lookups, while still reporting every candidate as visited.
            if self.relational.sweep_is_impossible(egraph) {
                return (Vec::new(), ids.len());
            }
            None
        };
        let mut visited = 0;
        let mut matches = Vec::new();
        let mut regs: Vec<Id> = Vec::new();
        let mut raw: Vec<Subst> = Vec::new();
        for &id in ids {
            visited += 1;
            debug_assert_eq!(id, egraph.find(id), "candidate ids are canonical");
            match &plan {
                Some(plan) => plan.run_into(egraph, id, &mut regs, &mut raw),
                None => self
                    .relational
                    .run_static_into(egraph, id, &mut regs, &mut raw),
            }
            if raw.is_empty() {
                continue;
            }
            if let Some(m) = Self::finish_matches(id, std::mem::take(&mut raw)) {
                matches.push(m);
            }
        }
        (matches, visited)
    }

    /// Run the compiled machine over `candidates`, reporting the matches
    /// and how many classes were visited. All search entry points funnel
    /// through here so `visited` counts identically in full, delta, and
    /// frozen-filtered sweeps (satellite: `candidates_visited` stays
    /// comparable across modes).
    fn search_candidates<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        candidates: impl Iterator<Item = Id>,
    ) -> (Vec<SearchMatches>, usize) {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let mut visited = 0;
        let mut matches = Vec::new();
        // One register file and one raw-subst buffer for the whole
        // sweep: most candidates produce no match, and those executions
        // must not pay any allocation.
        let mut regs: Vec<Id> = Vec::new();
        let mut raw: Vec<Subst> = Vec::new();
        for id in candidates {
            visited += 1;
            debug_assert_eq!(id, egraph.find(id), "candidate ids are canonical");
            self.program.run_into(egraph, id, &mut regs, &mut raw);
            if raw.is_empty() {
                continue;
            }
            if let Some(m) = Self::finish_matches(id, std::mem::take(&mut raw)) {
                matches.push(m);
            }
        }
        (matches, visited)
    }

    /// Search one e-class for matches by executing the compiled program.
    /// The graph must be clean (rebuilt) — the machine relies on
    /// canonical class node vectors.
    pub fn search_eclass<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let eclass = egraph.find(eclass);
        let substs = self.program.run(egraph, eclass);
        Self::finish_matches(eclass, substs)
    }

    /// Search every e-class with the interpreted matcher — the reference
    /// implementation the compiled machine is differentially tested (and
    /// benchmarked) against. Prefer [`Pattern::search`].
    pub fn naive_search<A: Analysis<L>>(&self, egraph: &EGraph<L, A>) -> Vec<SearchMatches> {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let mut out = Vec::new();
        for id in egraph.class_ids() {
            if let Some(m) = self.naive_search_eclass(egraph, id) {
                out.push(m);
            }
        }
        out
    }

    /// Search one e-class by interpreting the pattern AST (see
    /// [`Pattern::naive_search`]).
    pub fn naive_search_eclass<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        let substs = self.match_id(egraph, self.ast.root(), eclass, Subst::default());
        Self::finish_matches(egraph.find(eclass), substs)
    }

    /// Normalize, order, and dedup raw substitutions into a
    /// [`SearchMatches`] (shared by both matchers so their outputs are
    /// directly comparable).
    fn finish_matches(eclass: Id, mut substs: Vec<Subst>) -> Option<SearchMatches> {
        for s in &mut substs {
            s.normalize();
        }
        substs.sort_unstable_by(|a, b| a.vec.cmp(&b.vec));
        substs.dedup();
        if substs.is_empty() {
            None
        } else {
            Some(SearchMatches { eclass, substs })
        }
    }

    fn match_id<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        pat: Id,
        eclass: Id,
        subst: Subst,
    ) -> Vec<Subst> {
        let eclass = egraph.find(eclass);
        match self.ast.node(pat) {
            ENodeOrVar::Var(v) => match subst.get(*v) {
                Some(bound) => {
                    if egraph.find(bound) == eclass {
                        vec![subst]
                    } else {
                        vec![]
                    }
                }
                None => {
                    let mut s = subst;
                    s.insert(*v, eclass);
                    vec![s]
                }
            },
            ENodeOrVar::ENode(pnode) => {
                let mut out = Vec::new();
                for enode in egraph.class(eclass).iter() {
                    if !pnode.matches(enode) {
                        continue;
                    }
                    debug_assert_eq!(pnode.children().len(), enode.children().len());
                    let mut partial = vec![subst.clone()];
                    for (&pc, &ec) in pnode.children().iter().zip(enode.children()) {
                        let mut next = Vec::new();
                        for s in partial {
                            next.extend(self.match_id(egraph, pc, ec, s));
                        }
                        partial = next;
                        if partial.is_empty() {
                            break;
                        }
                    }
                    out.extend(partial);
                }
                out
            }
        }
    }

    /// Instantiate the pattern under `subst`, inserting it into the graph.
    /// Returns the class of the instantiated root.
    pub fn apply<A: Analysis<L>>(&self, egraph: &mut EGraph<L, A>, subst: &Subst) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(self.ast.len());
        for node in self.ast.nodes() {
            let id = match node {
                ENodeOrVar::Var(v) => subst
                    .get(*v)
                    .unwrap_or_else(|| panic!("unbound pattern variable {v}")),
                ENodeOrVar::ENode(n) => {
                    let n = n.clone().map_children(|c| ids[c.index()]);
                    egraph.add(n)
                }
            };
            ids.push(id);
        }
        *ids.last().expect("non-empty pattern")
    }

    /// Instantiate the pattern into a concrete [`RecExpr`] using a mapping
    /// from variables to concrete sub-expressions.
    pub fn instantiate(&self, bindings: &dyn Fn(Var) -> RecExpr<L>) -> RecExpr<L> {
        let mut out = RecExpr::default();
        let mut ids: Vec<Id> = Vec::with_capacity(self.ast.len());
        for node in self.ast.nodes() {
            let id = match node {
                ENodeOrVar::Var(v) => {
                    let sub = bindings(*v);
                    let mut map = Vec::with_capacity(sub.len());
                    for n in sub.nodes() {
                        let n = n.clone().map_children(|c| map[c.index()]);
                        map.push(out.add(n));
                    }
                    *map.last().expect("non-empty binding")
                }
                ENodeOrVar::ENode(n) => {
                    let n = n.clone().map_children(|c| ids[c.index()]);
                    out.add(n)
                }
            };
            ids.push(id);
        }
        out
    }
}

impl<L: Language> fmt::Display for Pattern<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ast)
    }
}

impl<L: Language> std::str::FromStr for Pattern<L> {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pattern::parse(s)
    }
}

fn add_pattern_sexp<L: Language>(
    sexp: &SExp,
    ast: &mut RecExpr<ENodeOrVar<L>>,
) -> Result<Id, String> {
    match sexp {
        SExp::Atom(a) => {
            let node = ENodeOrVar::from_op(a, vec![])?;
            Ok(ast.add(node))
        }
        SExp::List(items) => {
            let (op, rest) = items
                .split_first()
                .ok_or_else(|| "empty list in pattern".to_owned())?;
            let op = op
                .as_atom()
                .ok_or_else(|| format!("operator must be an atom, got {op}"))?;
            let children = rest
                .iter()
                .map(|c| add_pattern_sexp(c, ast))
                .collect::<Result<Vec<_>, _>>()?;
            let node = ENodeOrVar::from_op(op, children)?;
            Ok(ast.add(node))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    type EG = EGraph<Arith, ()>;

    fn add_str(eg: &mut EG, s: &str) -> Id {
        eg.add_expr(&parse_rec_expr(s).unwrap())
    }

    #[test]
    fn parse_and_vars() {
        let p: Pattern<Arith> = "(* ?a (+ ?b ?a))".parse().unwrap();
        assert_eq!(p.to_string(), "(* ?a (+ ?b ?a))");
        assert_eq!(p.vars().len(), 2);
    }

    #[test]
    fn simple_match() {
        let mut eg = EG::default();
        let root = add_str(&mut eg, "(* x (+ y 2))");
        eg.rebuild();
        let p: Pattern<Arith> = "(* ?a (+ ?b ?c))".parse().unwrap();
        let matches = p.search(&eg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].eclass, eg.find(root));
        assert_eq!(matches[0].substs.len(), 1);
    }

    #[test]
    fn nonlinear_pattern_requires_same_class() {
        let mut eg = EG::default();
        add_str(&mut eg, "(* x x)");
        add_str(&mut eg, "(* x y)");
        eg.rebuild();
        let p: Pattern<Arith> = "(* ?a ?a)".parse().unwrap();
        let matches = p.search(&eg);
        assert_eq!(matches.len(), 1, "only (* x x) matches (* ?a ?a)");
    }

    #[test]
    fn nonlinear_matches_after_union() {
        let mut eg = EG::default();
        let x = add_str(&mut eg, "x");
        let y = add_str(&mut eg, "y");
        add_str(&mut eg, "(* x y)");
        let p: Pattern<Arith> = "(* ?a ?a)".parse().unwrap();
        eg.rebuild();
        assert_eq!(p.search(&eg).len(), 0);
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(p.search(&eg).len(), 1, "x=y makes (* x y) match (* ?a ?a)");
    }

    #[test]
    fn multiple_substs_in_one_class() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(+ x y)");
        let b = add_str(&mut eg, "(+ y x)");
        eg.union(a, b);
        eg.rebuild();
        let p: Pattern<Arith> = "(+ ?a ?b)".parse().unwrap();
        let m = p.search_eclass(&eg, a).unwrap();
        assert_eq!(m.substs.len(), 2);
    }

    #[test]
    fn apply_inserts_instantiation() {
        let mut eg = EG::default();
        let root = add_str(&mut eg, "(* x (+ y 2))");
        eg.rebuild();
        let lhs: Pattern<Arith> = "(* ?a (+ ?b ?c))".parse().unwrap();
        let rhs: Pattern<Arith> = "(+ (* ?a ?b) (* ?a ?c))".parse().unwrap();
        let m = &lhs.search(&eg)[0];
        let new = rhs.apply(&mut eg, &m.substs[0]);
        eg.union(root, new);
        eg.rebuild();
        let want = parse_rec_expr::<Arith>("(+ (* x y) (* x 2))").unwrap();
        assert_eq!(eg.lookup_expr(&want), Some(eg.find(root)));
        eg.check_invariants();
    }

    #[test]
    fn leaf_patterns_match_constants() {
        let mut eg = EG::default();
        add_str(&mut eg, "(+ 1 x)");
        eg.rebuild();
        let p: Pattern<Arith> = "(+ 1 ?x)".parse().unwrap();
        assert_eq!(p.search(&eg).len(), 1);
        let p2: Pattern<Arith> = "(+ 2 ?x)".parse().unwrap();
        assert_eq!(p2.search(&eg).len(), 0);
    }

    #[test]
    fn instantiate_to_recexpr() {
        let p: Pattern<Arith> = "(+ ?a (* ?a 2))".parse().unwrap();
        let x: RecExpr<Arith> = parse_rec_expr("(neg z)").unwrap();
        let e = p.instantiate(&|_| x.clone());
        assert_eq!(e.to_string(), "(+ (neg z) (* (neg z) 2))");
    }

    /// The patterns the compiled/indexed matcher is checked against the
    /// interpreted reference on, across all unit-test graph shapes.
    fn differential_patterns() -> Vec<Pattern<Arith>> {
        [
            "?a",
            "(+ ?a ?b)",
            "(+ ?a ?a)",
            "(* ?a (+ ?b ?c))",
            "(+ (neg ?a) ?b)",
            "(neg (neg ?a))",
            "(+ 1 ?x)",
            "(* ?a 2)",
            "x",
            "7",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
    }

    #[test]
    fn compiled_matcher_agrees_with_naive() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(* x (+ y 2))");
        let b = add_str(&mut eg, "(+ (neg x) (* x 2))");
        add_str(&mut eg, "(+ 1 (neg (neg y)))");
        eg.union(a, b);
        eg.rebuild();
        let x = add_str(&mut eg, "x");
        let y = add_str(&mut eg, "y");
        eg.union(x, y);
        eg.rebuild();
        for p in differential_patterns() {
            let (indexed, candidates) = p.search_with_stats(&eg);
            let naive = p.naive_search(&eg);
            assert_eq!(indexed.len(), naive.len(), "pattern {p}");
            for (i, n) in indexed.iter().zip(&naive) {
                assert_eq!(i.eclass, n.eclass, "pattern {p}");
                assert_eq!(i.substs, n.substs, "pattern {p}");
            }
            assert!(candidates <= eg.number_of_classes(), "pattern {p}");
        }
    }

    #[test]
    fn index_narrows_candidates_for_nonvar_roots() {
        let mut eg = EG::default();
        add_str(&mut eg, "(* (+ x y) (neg z))");
        eg.rebuild();
        // exactly one class holds a `+` node; the index must propose
        // only that class, not all six
        let p: Pattern<Arith> = "(+ ?a ?b)".parse().unwrap();
        let (matches, candidates) = p.search_with_stats(&eg);
        assert_eq!(candidates, 1);
        assert_eq!(matches.len(), 1);
        // a variable root cannot be narrowed: every class is a candidate
        let pv: Pattern<Arith> = "?a".parse().unwrap();
        let (_, all) = pv.search_with_stats(&eg);
        assert_eq!(all, eg.number_of_classes());
        // a head that occurs nowhere proposes nothing
        let pm: Pattern<Arith> = "(* (* ?a ?b) ?c)".parse().unwrap();
        let (none, multiplies) = pm.search_with_stats(&eg);
        assert_eq!(multiplies, 1, "one class holds a `*` node");
        assert!(none.is_empty());
    }

    #[test]
    fn index_stays_consistent_across_union_rebuild() {
        let mut eg = EG::default();
        let a = add_str(&mut eg, "(+ x y)");
        let b = add_str(&mut eg, "(* x y)");
        let p: Pattern<Arith> = "(+ ?a ?b)".parse().unwrap();
        eg.rebuild();
        assert_eq!(p.search(&eg).len(), 1);
        // merging the + class into the * class must leave the + head
        // discoverable under the merged class id
        eg.union(a, b);
        eg.rebuild();
        let m = p.search(&eg);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].eclass, eg.find(a));
        assert_eq!(m[0].eclass, eg.find(b));
        eg.check_invariants();
    }
}
