//! The LA plan interpreter.
//!
//! Evaluates [`spores_ir::ExprArena`] DAGs over [`spores_matrix::Matrix`]
//! values with:
//!
//! * DAG-aware memoization (shared subexpressions computed once, like
//!   SystemML's common-subexpression reuse),
//! * representation-aware kernels (sparse paths where the inputs allow),
//! * **fused operators** detected structurally before generic dispatch,
//!   mirroring SystemML's runtime operator selection (§3.3, §4.2):
//!   - `wsloss`: `sum((X ± U %*% t(V))^2)` streams without materializing
//!     the dense `U Vᵀ` intermediate,
//!   - `mmchain`: matrix-multiply chains are associated by the classic
//!     dynamic program over dimensions before execution,
//!   - `sprop`: `P * (1 - P)` / `P - P*P` in one pass,
//!   - `sigmoid`: `1/(1+exp(-X))` in one pass,
//! * FLOP / allocation accounting ([`crate::stats::ExecStats`]).

use crate::stats::ExecStats;
use spores_ir::{BinOp, ExprArena, LaNode, NodeId, Symbol, UnOp};
use spores_matrix::Matrix;
use std::collections::HashMap;

/// Executor configuration.
#[derive(Copy, Clone, Debug)]
pub struct ExecConfig {
    /// Detect and run fused operators (disable to model SystemML's
    /// level-1 "base" configuration).
    pub fusion: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { fusion: true }
    }
}

/// Executes LA plans; accumulates [`ExecStats`] across calls.
#[derive(Debug, Default)]
pub struct Executor {
    pub config: ExecConfig,
    pub stats: ExecStats,
}

/// Execution failure (unbound variable / shape mismatch).
#[derive(Clone, Debug)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// Memoized sub-DAG re-reads across all executors in the process — the
/// work `run_many`'s shared memo table saves (one registry entry; the
/// handle is a no-op while telemetry is disabled).
static MEMO_HITS: spores_telemetry::CounterHandle =
    spores_telemetry::CounterHandle::new("exec.memo_hits");

impl Executor {
    pub fn new(config: ExecConfig) -> Executor {
        Executor {
            config,
            stats: ExecStats::default(),
        }
    }

    /// Evaluate the DAG rooted at `root`.
    pub fn run(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
        env: &HashMap<Symbol, Matrix>,
    ) -> Result<Matrix, ExecError> {
        let mut memo: HashMap<NodeId, Matrix> = HashMap::new();
        self.eval(arena, root, env, &mut memo)
    }

    /// Evaluate a multi-root shared plan: the roots are evaluated in
    /// order with ONE memo table, so subplans shared across roots (the
    /// workload optimizer binds them once in the arena) are computed
    /// exactly once per pass; each root's value is inserted into `env`
    /// under its name before the next root runs, so later statements can
    /// read earlier results as leaf variables.
    ///
    /// The bundle must be in SSA form (no root's name read at or before
    /// its own definition) — the shape `spores_ir::WorkloadExpr`
    /// validates — or earlier memoized leaf reads would go stale.
    ///
    /// The per-root values are left bound in `env` under the root names
    /// (no extra copies; callers that need them read `env`).
    pub fn run_many(
        &mut self,
        arena: &ExprArena,
        roots: &[(Symbol, NodeId)],
        env: &mut HashMap<Symbol, Matrix>,
    ) -> Result<(), ExecError> {
        let mut memo: HashMap<NodeId, Matrix> = HashMap::new();
        for &(name, root) in roots {
            let mut span = spores_telemetry::span!("exec.root", root = name.to_string());
            let value = self.eval(arena, root, env, &mut memo)?;
            span.arg("memo_entries", memo.len());
            drop(span);
            env.insert(name, value);
        }
        Ok(())
    }

    fn alloc(&mut self, m: &Matrix) {
        self.stats.intermediates += 1;
        self.stats.cells_allocated += match m {
            Matrix::Dense(d) => (d.rows * d.cols) as u64,
            Matrix::Sparse(s) => 2 * s.nnz() as u64,
        };
    }

    fn eval(
        &mut self,
        arena: &ExprArena,
        id: NodeId,
        env: &HashMap<Symbol, Matrix>,
        memo: &mut HashMap<NodeId, Matrix>,
    ) -> Result<Matrix, ExecError> {
        if let Some(v) = memo.get(&id) {
            MEMO_HITS.add(1);
            return Ok(v.clone());
        }
        if self.config.fusion {
            if let Some(v) = self.try_fused(arena, id, env, memo)? {
                memo.insert(id, v.clone());
                return Ok(v);
            }
        }
        let value = match arena.node(id) {
            LaNode::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| ExecError(format!("unbound variable {v}")))?,
            LaNode::Scalar(n) => Matrix::scalar(n.get()),
            LaNode::Fill(n, r, c) => {
                let m = Matrix::filled(*r as usize, *c as usize, n.get());
                self.alloc(&m);
                m
            }
            LaNode::Un(op, a) => {
                let a = self.eval(arena, *a, env, memo)?;
                self.unary(*op, &a)
            }
            LaNode::Bin(op, a, b) => {
                let a = self.eval(arena, *a, env, memo)?;
                let b = self.eval(arena, *b, env, memo)?;
                self.binary(*op, &a, &b)?
            }
        };
        memo.insert(id, value.clone());
        Ok(value)
    }

    fn unary(&mut self, op: UnOp, a: &Matrix) -> Matrix {
        let work_cells = if a.is_sparse() {
            a.nnz() as u64
        } else {
            (a.rows() * a.cols()) as u64
        };
        let out = match op {
            UnOp::T => {
                self.stats.flops += work_cells;
                a.transpose()
            }
            UnOp::RowSums => {
                self.stats.flops += work_cells;
                a.row_sums()
            }
            UnOp::ColSums => {
                self.stats.flops += work_cells;
                a.col_sums()
            }
            UnOp::Sum => {
                self.stats.flops += work_cells;
                Matrix::scalar(a.sum())
            }
            UnOp::Neg => {
                self.stats.flops += work_cells;
                a.scale(-1.0)
            }
            UnOp::Sqrt => self.map_stats(a, true, f64::sqrt),
            UnOp::Abs => self.map_stats(a, true, f64::abs),
            UnOp::Sign => self.map_stats(a, true, f64::signum),
            UnOp::Sprop => {
                self.stats.fused_ops += 1;
                self.map_stats(a, true, |x| x * (1.0 - x))
            }
            UnOp::Exp => self.map_stats(a, false, f64::exp),
            UnOp::Log => self.map_stats(a, false, f64::ln),
            UnOp::Sigmoid => {
                self.stats.fused_ops += 1;
                self.map_stats(a, false, |x| 1.0 / (1.0 + (-x).exp()))
            }
        };
        self.alloc(&out);
        out
    }

    fn map_stats(&mut self, a: &Matrix, zero_preserving: bool, f: impl Fn(f64) -> f64) -> Matrix {
        let cells = if a.is_sparse() && zero_preserving {
            a.nnz() as u64
        } else {
            (a.rows() * a.cols()) as u64
        };
        self.stats.flops += cells;
        a.map(zero_preserving, f)
    }

    fn binary(&mut self, op: BinOp, a: &Matrix, b: &Matrix) -> Result<Matrix, ExecError> {
        let out = match op {
            BinOp::MatMul => {
                if a.cols() != b.rows() {
                    return Err(ExecError(format!(
                        "matmul shape mismatch {}x{} vs {}x{}",
                        a.rows(),
                        a.cols(),
                        b.rows(),
                        b.cols()
                    )));
                }
                self.stats.flops += self.matmul_flops(a, b);
                a.matmul(b)
            }
            BinOp::Mul => {
                self.stats.flops += a.nnz().min(b.nnz()) as u64;
                a.mul(b)
            }
            BinOp::Add => {
                self.stats.flops += (a.nnz() + b.nnz()) as u64;
                a.add(b)
            }
            BinOp::Sub => {
                self.stats.flops += (a.nnz() + b.nnz()) as u64;
                a.sub(b)
            }
            BinOp::Div => {
                self.stats.flops += a.nnz() as u64;
                a.div(b)
            }
            BinOp::Pow => {
                self.stats.flops += a.nnz() as u64;
                // x^k with scalar k: zero-preserving for k > 0
                if b.is_scalar() {
                    let k = b.as_scalar();
                    if k > 0.0 {
                        a.map(true, |x| x.powf(k))
                    } else {
                        a.map(false, |x| x.powf(k))
                    }
                } else {
                    a.zip(b, f64::powf)
                }
            }
            BinOp::Min => {
                self.stats.flops += (a.rows().max(b.rows()) * a.cols().max(b.cols())) as u64;
                a.zip(b, f64::min)
            }
            BinOp::Max => {
                self.stats.flops += (a.rows().max(b.rows()) * a.cols().max(b.cols())) as u64;
                a.zip(b, f64::max)
            }
            BinOp::Gt => self.compare(a, b, |x, y| f64::from(x > y)),
            BinOp::Lt => self.compare(a, b, |x, y| f64::from(x < y)),
            BinOp::Ge => self.compare(a, b, |x, y| f64::from(x >= y)),
            BinOp::Le => self.compare(a, b, |x, y| f64::from(x <= y)),
        };
        self.alloc(&out);
        Ok(out)
    }

    fn compare(&mut self, a: &Matrix, b: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.stats.flops += (a.rows().max(b.rows()) * a.cols().max(b.cols())) as u64;
        a.zip(b, f)
    }

    fn matmul_flops(&self, a: &Matrix, b: &Matrix) -> u64 {
        match (a, b) {
            (Matrix::Sparse(s), _) => 2 * (s.nnz() * b.cols()) as u64,
            (_, Matrix::Sparse(s)) => 2 * (s.nnz() * a.rows()) as u64,
            _ => 2 * (a.rows() * a.cols() * b.cols()) as u64,
        }
    }

    // ----- fused operators ------------------------------------------------

    fn try_fused(
        &mut self,
        arena: &ExprArena,
        id: NodeId,
        env: &HashMap<Symbol, Matrix>,
        memo: &mut HashMap<NodeId, Matrix>,
    ) -> Result<Option<Matrix>, ExecError> {
        if let Some(v) = self.try_wsloss(arena, id, env, memo)? {
            return Ok(Some(v));
        }
        if let Some(v) = self.try_wcemm(arena, id, env, memo)? {
            return Ok(Some(v));
        }
        if let Some(v) = self.try_wdivmm(arena, id, env, memo)? {
            return Ok(Some(v));
        }
        if let Some(v) = self.try_sprop(arena, id, env, memo)? {
            return Ok(Some(v));
        }
        if let Some(v) = self.try_mmchain(arena, id, env, memo)? {
            return Ok(Some(v));
        }
        Ok(None)
    }

    /// `X / (W %*% H)` with sparse X — SystemML's `wdivmm`: the dense
    /// product is never materialized; each stored cell of X divides by
    /// one rank-r dot product.
    fn try_wdivmm(
        &mut self,
        arena: &ExprArena,
        id: NodeId,
        env: &HashMap<Symbol, Matrix>,
        memo: &mut HashMap<NodeId, Matrix>,
    ) -> Result<Option<Matrix>, ExecError> {
        let LaNode::Bin(BinOp::Div, x_id, mm_id) = arena.node(id) else {
            return Ok(None);
        };
        let LaNode::Bin(BinOp::MatMul, w_id, h_id) = arena.node(*mm_id) else {
            return Ok(None);
        };
        let (x_id, w_id, h_id) = (*x_id, *w_id, *h_id);
        let x = self.eval(arena, x_id, env, memo)?;
        let Matrix::Sparse(xs) = &x else {
            return Ok(None); // dense X: generic path
        };
        let w = self.eval(arena, w_id, env, memo)?.to_dense();
        let h = self.eval(arena, h_id, env, memo)?.to_dense();
        if w.cols != h.rows || xs.rows != w.rows || xs.cols != h.cols {
            return Ok(None);
        }
        let r = w.cols;
        let out = xs.map_row_col(|i, j, v| {
            let mut dot = 0.0;
            for k in 0..r {
                dot += w.get(i, k) * h.get(k, j);
            }
            v / dot
        });
        self.stats.flops += (xs.nnz() * (2 * r + 1)) as u64;
        self.stats.fused_ops += 1;
        let out = Matrix::Sparse(out);
        self.alloc(&out);
        Ok(Some(out))
    }

    /// `sum(X * log(W %*% H))` with sparse X — SystemML's `wcemm`
    /// (weighted cross-entropy): streams over X's non-zeros.
    fn try_wcemm(
        &mut self,
        arena: &ExprArena,
        id: NodeId,
        env: &HashMap<Symbol, Matrix>,
        memo: &mut HashMap<NodeId, Matrix>,
    ) -> Result<Option<Matrix>, ExecError> {
        let LaNode::Un(UnOp::Sum, prod) = arena.node(id) else {
            return Ok(None);
        };
        let LaNode::Bin(BinOp::Mul, a, b) = arena.node(*prod) else {
            return Ok(None);
        };
        // X * log(mm) in either order
        let (x_id, log_id) = if matches!(arena.node(*b), LaNode::Un(UnOp::Log, _)) {
            (*a, *b)
        } else if matches!(arena.node(*a), LaNode::Un(UnOp::Log, _)) {
            (*b, *a)
        } else {
            return Ok(None);
        };
        let LaNode::Un(UnOp::Log, mm_id) = arena.node(log_id) else {
            return Ok(None);
        };
        let LaNode::Bin(BinOp::MatMul, w_id, h_id) = arena.node(*mm_id) else {
            return Ok(None);
        };
        let (w_id, h_id) = (*w_id, *h_id);
        let x = self.eval(arena, x_id, env, memo)?;
        let Matrix::Sparse(xs) = &x else {
            return Ok(None);
        };
        let w = self.eval(arena, w_id, env, memo)?.to_dense();
        let h = self.eval(arena, h_id, env, memo)?.to_dense();
        if w.cols != h.rows || xs.rows != w.rows || xs.cols != h.cols {
            return Ok(None);
        }
        let r = w.cols;
        let mut acc = 0.0;
        for i in 0..xs.rows {
            for (j, v) in xs.row(i) {
                let mut dot = 0.0;
                for k in 0..r {
                    dot += w.get(i, k) * h.get(k, j);
                }
                acc += v * dot.ln();
            }
        }
        self.stats.flops += (xs.nnz() * (2 * r + 2)) as u64;
        self.stats.fused_ops += 1;
        Ok(Some(Matrix::scalar(acc)))
    }

    /// `sum((X ± A %*% t(B))^2)` — weighted-squared-loss style streaming.
    fn try_wsloss(
        &mut self,
        arena: &ExprArena,
        id: NodeId,
        env: &HashMap<Symbol, Matrix>,
        memo: &mut HashMap<NodeId, Matrix>,
    ) -> Result<Option<Matrix>, ExecError> {
        let LaNode::Un(UnOp::Sum, sq) = arena.node(id) else {
            return Ok(None);
        };
        let LaNode::Bin(BinOp::Pow, diff, two) = arena.node(*sq) else {
            return Ok(None);
        };
        if !matches!(arena.node(*two), LaNode::Scalar(n) if n.get() == 2.0) {
            return Ok(None);
        }
        let (x_id, mm_id, sign) = match arena.node(*diff) {
            LaNode::Bin(BinOp::Sub, a, b) => (*a, *b, -1.0),
            LaNode::Bin(BinOp::Add, a, b) => (*a, *b, 1.0),
            _ => return Ok(None),
        };
        let LaNode::Bin(BinOp::MatMul, u_id, vt_id) = arena.node(mm_id) else {
            return Ok(None);
        };
        let (u_id, vt_id) = (*u_id, *vt_id);
        let x = self.eval(arena, x_id, env, memo)?;
        let u = self.eval(arena, u_id, env, memo)?;
        let vt = self.eval(arena, vt_id, env, memo)?;
        if u.cols() != vt.rows() || x.rows() != u.rows() || x.cols() != vt.cols() {
            return Ok(None);
        }
        // stream: Σ_ij (X_ij + sign·Σ_k U_ik Vt_kj)², no m×n intermediate
        let (m, n, r) = (x.rows(), x.cols(), u.cols());
        let ud = u.to_dense();
        let vtd = vt.to_dense();
        let mut acc = 0.0;
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0;
                for k in 0..r {
                    dot += ud.get(i, k) * vtd.get(k, j);
                }
                let cell = x.get(i, j) + sign * dot;
                acc += cell * cell;
            }
        }
        self.stats.flops += (2 * m * n * r + 3 * m * n) as u64;
        self.stats.fused_ops += 1;
        Ok(Some(Matrix::scalar(acc)))
    }

    /// `P * (1 - P)` or `P - P*P` fused into one pass.
    fn try_sprop(
        &mut self,
        arena: &ExprArena,
        id: NodeId,
        env: &HashMap<Symbol, Matrix>,
        memo: &mut HashMap<NodeId, Matrix>,
    ) -> Result<Option<Matrix>, ExecError> {
        let p_id = match arena.node(id) {
            // P * (1 - P)  /  (1 - P) * P
            LaNode::Bin(BinOp::Mul, a, b) => {
                let one_minus = |arena: &ExprArena, n: NodeId, p: NodeId| -> bool {
                    matches!(arena.node(n), LaNode::Bin(BinOp::Sub, one, q)
                        if *q == p && matches!(arena.node(*one), LaNode::Scalar(v) if v.get() == 1.0))
                };
                if one_minus(arena, *b, *a) {
                    Some(*a)
                } else if one_minus(arena, *a, *b) {
                    Some(*b)
                } else {
                    None
                }
            }
            // P - P*P  /  P - P^2
            LaNode::Bin(BinOp::Sub, p, q) => match arena.node(*q) {
                LaNode::Bin(BinOp::Mul, x, y) if x == y && x == p => Some(*p),
                LaNode::Bin(BinOp::Pow, x, k)
                    if x == p && matches!(arena.node(*k), LaNode::Scalar(v) if v.get() == 2.0) =>
                {
                    Some(*p)
                }
                _ => None,
            },
            _ => None,
        };
        let Some(p_id) = p_id else { return Ok(None) };
        let p = self.eval(arena, p_id, env, memo)?;
        let out = p.map(true, |x| x * (1.0 - x));
        self.stats.flops += p.nnz() as u64;
        self.stats.fused_ops += 1;
        self.alloc(&out);
        Ok(Some(out))
    }

    /// Matrix-multiply chains: associate by the classic dynamic program
    /// before executing (SystemML's `mmchain`).
    fn try_mmchain(
        &mut self,
        arena: &ExprArena,
        id: NodeId,
        env: &HashMap<Symbol, Matrix>,
        memo: &mut HashMap<NodeId, Matrix>,
    ) -> Result<Option<Matrix>, ExecError> {
        // collect the left-leaning (or arbitrary) matmul chain
        fn collect(arena: &ExprArena, id: NodeId, out: &mut Vec<NodeId>) {
            match arena.node(id) {
                LaNode::Bin(BinOp::MatMul, a, b) => {
                    collect(arena, *a, out);
                    collect(arena, *b, out);
                }
                _ => out.push(id),
            }
        }
        if !matches!(arena.node(id), LaNode::Bin(BinOp::MatMul, _, _)) {
            return Ok(None);
        }
        let mut leaves = Vec::new();
        collect(arena, id, &mut leaves);
        if leaves.len() < 3 {
            return Ok(None); // plain matmul: generic path
        }
        let values: Vec<Matrix> = leaves
            .iter()
            .map(|&l| self.eval(arena, l, env, memo))
            .collect::<Result<_, _>>()?;
        // dims p0 x p1 x ... x pn
        let mut dims = Vec::with_capacity(values.len() + 1);
        dims.push(values[0].rows());
        for v in &values {
            dims.push(v.cols());
        }
        // matrix chain order DP
        let n = values.len();
        let mut cost = vec![vec![0u64; n]; n];
        let mut split = vec![vec![0usize; n]; n];
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                cost[i][j] = u64::MAX;
                for k in i..j {
                    let c =
                        cost[i][k] + cost[k + 1][j] + (dims[i] * dims[k + 1] * dims[j + 1]) as u64;
                    if c < cost[i][j] {
                        cost[i][j] = c;
                        split[i][j] = k;
                    }
                }
            }
        }
        fn multiply(
            exec: &mut Executor,
            values: &[Matrix],
            split: &[Vec<usize>],
            i: usize,
            j: usize,
        ) -> Matrix {
            if i == j {
                return values[i].clone();
            }
            let k = split[i][j];
            let a = multiply(exec, values, split, i, k);
            let b = multiply(exec, values, split, k + 1, j);
            exec.stats.flops += exec.matmul_flops(&a, &b);
            let out = a.matmul(&b);
            exec.alloc(&out);
            out
        }
        self.stats.fused_ops += 1;
        Ok(Some(multiply(self, &values, &split, 0, n - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spores_ir::parse_expr;
    use spores_matrix::gen;

    fn env(list: Vec<(&str, Matrix)>) -> HashMap<Symbol, Matrix> {
        list.into_iter().map(|(n, m)| (Symbol::new(n), m)).collect()
    }

    fn run(src: &str, e: &HashMap<Symbol, Matrix>) -> (Matrix, ExecStats) {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let mut exec = Executor::default();
        let out = exec.run(&arena, root, e).unwrap();
        (out, exec.stats)
    }

    fn run_unfused(src: &str, e: &HashMap<Symbol, Matrix>) -> (Matrix, ExecStats) {
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, src).unwrap();
        let mut exec = Executor::new(ExecConfig { fusion: false });
        let out = exec.run(&arena, root, e).unwrap();
        (out, exec.stats)
    }

    #[test]
    fn basic_arithmetic() {
        let mut r = gen::rng(1);
        let e = env(vec![
            ("X", gen::rand_dense(4, 5, -1.0, 1.0, &mut r)),
            ("Y", gen::rand_dense(4, 5, -1.0, 1.0, &mut r)),
        ]);
        let (out, _) = run("sum(X * Y + X)", &e);
        let x = e[&Symbol::new("X")].to_dense();
        let y = e[&Symbol::new("Y")].to_dense();
        let want: f64 = x.data.iter().zip(&y.data).map(|(a, b)| a * b + a).sum();
        assert!((out.as_scalar() - want).abs() < 1e-9);
    }

    #[test]
    fn run_many_shares_work_and_binds_roots() {
        let mut r = gen::rng(7);
        let mut e = env(vec![
            ("W", gen::rand_dense(12, 3, 0.1, 1.0, &mut r)),
            ("H", gen::rand_dense(3, 10, 0.1, 1.0, &mut r)),
        ]);
        // two roots sharing the product node, the second reading the
        // first root's binding as a leaf
        let mut arena = ExprArena::new();
        let w = arena.var("W");
        let h = arena.var("H");
        let wh = arena.matmul(w, h);
        let s1 = arena.sum(wh);
        let g = arena.var("g");
        let s2 = {
            let prod_sum = arena.row_sums(wh);
            let total = arena.sum(prod_sum);
            arena.mul(total, g)
        };
        let roots = vec![(Symbol::new("g"), s1), (Symbol::new("out"), s2)];

        let mut exec = Executor::default();
        exec.run_many(&arena, &roots, &mut e)
            .expect("workload evaluates");
        // shared product computed once: one matmul's worth of allocation
        // plus the aggregates — strictly fewer intermediates than two
        // independent runs
        let shared_intermediates = exec.stats.intermediates;
        let mut solo = Executor::default();
        let base = env(vec![
            ("W", e[&Symbol::new("W")].clone()),
            ("H", e[&Symbol::new("H")].clone()),
        ]);
        solo.run(&arena, s1, &base).unwrap();
        let mut with_g = base.clone();
        with_g.insert(Symbol::new("g"), e[&Symbol::new("g")].clone());
        solo.run(&arena, s2, &with_g).unwrap();
        assert!(
            shared_intermediates < solo.stats.intermediates,
            "shared pass must reuse the product: {} vs {}",
            shared_intermediates,
            solo.stats.intermediates
        );
        // the env now carries both bindings;
        // semantics: out = sum(WH) * g where g = sum(WH)
        let total = e[&Symbol::new("g")].as_scalar();
        assert!((e[&Symbol::new("out")].as_scalar() - total * total).abs() < 1e-9);
    }

    #[test]
    fn wsloss_fusion_matches_unfused() {
        let mut r = gen::rng(2);
        let e = env(vec![
            ("X", gen::rand_sparse(30, 20, 0.1, -1.0, 1.0, &mut r)),
            ("U", gen::rand_dense(30, 3, -1.0, 1.0, &mut r)),
            ("V", gen::rand_dense(20, 3, -1.0, 1.0, &mut r)),
        ]);
        let src = "sum((X - U %*% t(V))^2)";
        let (fused, fs) = run(src, &e);
        let (plain, ps) = run_unfused(src, &e);
        assert!((fused.as_scalar() - plain.as_scalar()).abs() < 1e-6);
        assert!(fs.fused_ops >= 1, "wsloss should fuse");
        assert!(
            fs.cells_allocated < ps.cells_allocated,
            "fusion must allocate less: {} vs {}",
            fs.cells_allocated,
            ps.cells_allocated
        );
    }

    #[test]
    fn sprop_fusion_matches_unfused() {
        let mut r = gen::rng(3);
        let e = env(vec![("P", gen::rand_dense(50, 1, 0.0, 1.0, &mut r))]);
        for src in ["P * (1 - P)", "P - P*P", "P - P^2", "sprop(P)"] {
            let (fused, fs) = run(src, &e);
            let (plain, _) = run_unfused("P * (1 - P)", &e);
            assert!(fused.approx_eq(&plain, 1e-12), "{src}");
            assert!(fs.fused_ops >= 1, "{src} should fuse");
        }
    }

    #[test]
    fn mmchain_orders_optimally() {
        // (tall × skinny) chain: A(1000×2) B(2×1000) C(1000×2) —
        // left-to-right costs 1000·2·1000 + 1000·1000·2 ≈ 4M mults;
        // optimal associates B·C first: 2·1000·2 + 1000·2·2 ≈ 8k.
        let mut r = gen::rng(4);
        let e = env(vec![
            ("A", gen::rand_dense(1000, 2, -1.0, 1.0, &mut r)),
            ("B", gen::rand_dense(2, 1000, -1.0, 1.0, &mut r)),
            ("C", gen::rand_dense(1000, 2, -1.0, 1.0, &mut r)),
        ]);
        let (out, fs) = run("A %*% B %*% C", &e);
        let (want, ps) = run_unfused("A %*% B %*% C", &e);
        assert!(out.approx_eq(&want, 1e-6));
        assert!(fs.fused_ops == 1);
        assert!(
            fs.flops * 10 < ps.flops,
            "chain DP should save flops: {} vs {}",
            fs.flops,
            ps.flops
        );
    }

    #[test]
    fn sparse_matmul_flops_scale_with_nnz() {
        let mut r = gen::rng(5);
        let sparse_env = env(vec![
            ("X", gen::rand_sparse(500, 400, 0.01, -1.0, 1.0, &mut r)),
            ("v", gen::rand_dense(400, 1, -1.0, 1.0, &mut r)),
        ]);
        let (_, s) = run("X %*% v", &sparse_env);
        let dense_env = env(vec![
            ("X", gen::rand_dense(500, 400, -1.0, 1.0, &mut r)),
            ("v", gen::rand_dense(400, 1, -1.0, 1.0, &mut r)),
        ]);
        let (_, d) = run("X %*% v", &dense_env);
        assert!(
            s.flops * 10 < d.flops,
            "sparse {} vs dense {}",
            s.flops,
            d.flops
        );
    }

    #[test]
    fn agrees_with_reference_evaluator() {
        let mut r = gen::rng(6);
        let e = env(vec![
            ("X", gen::rand_sparse(8, 6, 0.3, -2.0, 2.0, &mut r)),
            ("Y", gen::rand_dense(8, 6, -1.0, 1.0, &mut r)),
            ("u", gen::rand_dense(8, 1, -1.0, 1.0, &mut r)),
            ("v", gen::rand_dense(6, 1, -1.0, 1.0, &mut r)),
        ]);
        for src in [
            "X + Y",
            "X - Y",
            "X * Y",
            "X / (Y + 10)",
            "t(X) %*% X",
            "X %*% v",
            "t(u) %*% X",
            "rowSums(X * Y)",
            "colSums(X)",
            "sum((X - u %*% t(v))^2)",
            "sigmoid(Y)",
            "abs(X)",
            "sign(X) * abs(X)",
            "(X > 0) - (X < 0)",
            "min(X, Y)",
            "exp(Y)",
            "sum(u) * sum(v)",
            "matrix(2, 8, 6) * X",
        ] {
            let (got, _) = run(src, &e);
            let (want, _) = run_unfused(src, &e);
            assert!(got.approx_eq(&want, 1e-9), "{src}");
        }
    }

    #[test]
    fn shared_subexpressions_computed_once() {
        let mut r = gen::rng(7);
        let e = env(vec![("X", gen::rand_dense(100, 100, -1.0, 1.0, &mut r))]);
        // X %*% X used twice: memo must reuse it
        let (_, s) = run_unfused("(X %*% X) + (X %*% X)", &e);
        let (_, s1) = run_unfused("X %*% X", &e);
        // one matmul + one add, not two matmuls
        assert!(s.flops < 2 * s1.flops + 100 * 100 * 4);
    }

    #[test]
    fn unbound_variable_errors() {
        let e = env(vec![]);
        let mut arena = ExprArena::new();
        let root = parse_expr(&mut arena, "Q + 1").unwrap();
        assert!(Executor::default().run(&arena, root, &e).is_err());
    }
}
