//! # spores-ruleaudit — static analysis for the rewrite ruleset
//!
//! The SPORES optimizer's correctness rests on ~40 rewrite rules
//! (paper §3.2). Each rule is an *equation claim*: "these two
//! sum-product expressions denote the same relation". This crate
//! checks those claims statically, without running the e-graph, via
//! four passes over the declared rule metadata
//! ([`spores_egraph::Rewrite`]'s introspection surface —
//! [`ConditionMeta`](spores_egraph::ConditionMeta), `rhs_pattern()`,
//! `nonlinear_lhs_declared()`):
//!
//! 1. **Binding & linearity** ([`audit`]): every rhs variable is bound
//!    on the lhs (enforced at construction by
//!    [`Rewrite::new`](spores_egraph::Rewrite::new) returning
//!    [`RewriteError`](spores_egraph::RewriteError)), rule names are
//!    unique, and any repeated lhs variable — a non-linear pattern,
//!    which silently constrains matching to *equal e-classes* — is
//!    explicitly declared via `with_nonlinear_lhs()`.
//! 2. **Schema typing** ([`schema`]): abstract interpretation of both
//!    patterns under the relational-algebra schema algebra of the
//!    paper (Attr of a join is the union, Σ removes the summed index).
//!    The pass proves the sides have equal schemas, possibly under
//!    hypotheses (`?i ∉ Attr(?a)`, `Attr(?b) ⊆ Attr(?a)`), and
//!    cross-checks that every needed hypothesis is *declared* as a
//!    machine-readable side condition on the rule.
//! 3. **Semiring-requirement inference** ([`semiring`]): normalizes
//!    both sides to a polynomial form at increasing levels of algebraic
//!    commitment (semiring → commutative semiring → ring → field → ℝ,
//!    with an orthogonal idempotent-⊕ axis) and reports the weakest
//!    structure at which the equation holds. This is the prerequisite
//!    table for running SPORES over non-ℝ semirings (min-plus, bool).
//! 4. **Overlap & explosiveness** ([`overlap`]): pairwise critical-pair
//!    and subsumption analysis plus a per-rule explosion score
//!    (growth, permutativity, self-feeding, fan-out) exported as
//!    optional backoff priors for the runner.
//!
//! The `rule_audit` binary renders the result as a table and JSON
//! report; CI fails on any [`Violation`] and on drift of the committed
//! semiring table.

#![forbid(unsafe_code)]

pub mod overlap;
pub mod report;
pub mod schema;
pub mod semiring;

use spores_core::rules::MathRewrite;
use spores_egraph::{check_unique_names, ENodeOrVar, FxHashMap, Var};

pub use report::{AuditReport, RuleReport, Violation, Warning};
pub use semiring::{SemiringReq, Structure, Verification};

/// Knobs for [`audit_with_policy`].
#[derive(Debug, Clone, Default)]
pub struct AuditPolicy {
    /// When set, any rule whose inferred requirement exceeds this
    /// structure is a violation. Use to certify the ruleset for a
    /// weaker carrier (e.g. `CommutativeSemiring` for min-plus).
    pub max_structure: Option<Structure>,
}

/// Variables occurring more than once in the rule's lhs pattern, in
/// first-occurrence order.
fn repeated_lhs_vars(rule: &MathRewrite) -> Vec<Var> {
    let mut counts: Vec<(Var, u32)> = Vec::new();
    for node in rule.searcher.ast().nodes() {
        if let ENodeOrVar::Var(v) = node {
            match counts.iter_mut().find(|(w, _)| w == v) {
                Some((_, n)) => *n += 1,
                None => counts.push((*v, 1)),
            }
        }
    }
    counts
        .into_iter()
        .filter(|&(_, n)| n > 1)
        .map(|(v, _)| v)
        .collect()
}

/// Run all four passes over the ruleset with the default (permissive)
/// policy.
pub fn audit(rules: &[MathRewrite]) -> AuditReport {
    audit_with_policy(rules, &AuditPolicy::default())
}

/// Run all four passes over the ruleset.
pub fn audit_with_policy(rules: &[MathRewrite], policy: &AuditPolicy) -> AuditReport {
    let mut report = AuditReport::default();
    if let Err(e) = check_unique_names(rules) {
        report.violations.push(e.into());
    }

    let overlaps = overlap::analyze(rules);
    for (rule, ov) in rules.iter().zip(overlaps) {
        let name = rule.name.clone();

        // pass 1: linearity (construction already guarantees rhs ⊆ lhs)
        for var in repeated_lhs_vars(rule) {
            if !rule.nonlinear_lhs_declared() {
                report.violations.push(Violation::UndeclaredNonlinear {
                    rule: name.clone(),
                    var,
                });
            }
        }

        // pass 2: schema typing + declared-condition cross-check
        let schema = schema::check_schema(rule);
        if let Some(var) = schema.role_conflict {
            report.violations.push(Violation::RoleConflict {
                rule: name.clone(),
                var,
            });
        }
        match &schema.verdict {
            schema::SchemaVerdict::Undeclared { missing, .. } => {
                report.violations.push(Violation::UndeclaredCondition {
                    rule: name.clone(),
                    missing: missing.clone(),
                });
            }
            schema::SchemaVerdict::Mismatch { lhs, rhs } => {
                report.violations.push(Violation::SchemaMismatch {
                    rule: name.clone(),
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                });
            }
            schema::SchemaVerdict::NotAnalyzable(reason) => {
                report.warnings.push(Warning::NotAnalyzable {
                    rule: name.clone(),
                    reason: reason.clone(),
                });
            }
            _ => {}
        }
        for var in &schema.undeclared_drops {
            report.violations.push(Violation::UndeclaredDrop {
                rule: name.clone(),
                var: *var,
            });
        }
        for h in &schema.unused_conditions {
            report.warnings.push(Warning::UnusedCondition {
                rule: name.clone(),
                hypothesis: *h,
            });
        }

        // pass 3: semiring requirement
        let semiring = semiring::infer(rule);
        if let Some(req) = &semiring {
            if req.verified == Verification::Unverified {
                report
                    .warnings
                    .push(Warning::Unverified { rule: name.clone() });
            }
            if let Some(max) = policy.max_structure {
                if req.structure > max {
                    report.violations.push(Violation::StructureExceedsPolicy {
                        rule: name.clone(),
                        required: req.structure,
                        max,
                    });
                }
            }
        }

        // pass 4: overlap warnings
        if !ov.subsumed_by.is_empty() {
            report.warnings.push(Warning::SubsumedBy {
                rule: name.clone(),
                by: ov.subsumed_by.clone(),
            });
        }

        report.rules.push(RuleReport {
            lhs: rule.searcher.to_string(),
            rhs: rule
                .rhs_pattern()
                .map_or_else(|| "<dynamic applier>".to_owned(), |p| p.to_string()),
            nonlinear_lhs: rule.nonlinear_lhs_declared(),
            schema,
            semiring,
            overlap: ov,
            name,
        });
    }
    report
}

/// Backoff priors suggested by the overlap pass, keyed by rule name —
/// feed to `OptimizerConfig::rule_priors` / `Runner::with_rule_priors`.
pub fn backoff_priors(rules: &[MathRewrite]) -> FxHashMap<String, u32> {
    overlap::backoff_priors(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spores_core::rules;

    #[test]
    fn shipped_default_ruleset_audits_clean() {
        let report = audit(&rules::default_rules());
        assert!(
            report.clean(),
            "default ruleset has violations: {:#?}",
            report.violations
        );
    }

    #[test]
    fn repeated_vars_detected() {
        let rules = rules::complete();
        let factor = rules.iter().find(|r| r.name == "factor").unwrap();
        assert!(!repeated_lhs_vars(factor).is_empty());
        assert!(factor.nonlinear_lhs_declared());
    }

    #[test]
    fn priors_are_bounded_and_named() {
        let rules = rules::complete();
        let priors = backoff_priors(&rules);
        assert!(!priors.is_empty(), "some rule should score a prior");
        for (name, p) in &priors {
            assert!(rules.iter().any(|r| &r.name == name));
            assert!(*p <= 3, "prior for {name} out of range: {p}");
        }
    }
}
