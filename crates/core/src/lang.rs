//! The unified LA + RA term language of SPORES (Table 1 of the paper).
//!
//! One [`Math`] language hosts:
//!
//! * the three **RA** operators — join `*`, union `+`, aggregate `sum` —
//!   over K-relations, plus `dim` (the size of an index, rule 5 of
//!   Figure 3) and the `b`/`ub` bind/unbind conversion operators;
//! * the seven **LA** operators of Table 1 (`l+`, `l*`, `m*`, `t`,
//!   `srow`, `scol`, `sall`) plus the element-wise extensions SystemML
//!   supports (`l-`, `l/`, `pow`, comparisons);
//! * **point-wise scalar functions** (`exp`, `sqrt`, `sprop`, …) which the
//!   paper treats as custom functions with their own equations (§3.3) —
//!   they apply cell-wise in LA and multiplicity-wise on K-relations, so
//!   they are valid in both realms;
//! * leaves: literals, symbols (matrix names *and* index names — the
//!   analysis distinguishes them by context), and `_` (the missing index
//!   of a vector/scalar bind).

use spores_egraph::{Id, Language};
use spores_ir::{Num, Symbol};

/// An e-node of the unified language. See the module docs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Math {
    // ---- RA operators (the RPlan of §2.1) -------------------------------
    /// Union of K-relations (point-wise `+`): `(+ a b)`.
    Add([Id; 2]),
    /// Natural join of K-relations (point-wise `*`): `(* a b)`.
    Mul([Id; 2]),
    /// Group-by aggregate `Σ_i e`: `(sum i e)`.
    Agg([Id; 2]),
    /// The size of an index, as a scalar: `(dim i)`.
    Dim(Id),
    /// Bind a matrix into a relation: `(b i j A)` (`_` for missing dims).
    Bind([Id; 3]),
    /// Unbind a relation back into a matrix: `(ub i j A)`.
    Unbind([Id; 3]),

    // ---- LA operators (Table 1 + SystemML element-wise extensions) ------
    /// Element-wise add: `(l+ a b)` (broadcasting).
    LAdd([Id; 2]),
    /// Element-wise subtract: `(l- a b)`.
    LSub([Id; 2]),
    /// Element-wise multiply: `(l* a b)` (broadcasting).
    LMul([Id; 2]),
    /// Element-wise divide: `(l/ a b)`.
    LDiv([Id; 2]),
    /// Matrix multiply: `(m* a b)`.
    MMul([Id; 2]),
    /// Transpose: `(t a)`.
    LTrs(Id),
    /// Row aggregate `rowSums`: `(srow a)`, `M×N → M×1`.
    Srow(Id),
    /// Column aggregate `colSums`: `(scol a)`, `M×N → 1×N`.
    Scol(Id),
    /// Full aggregate `sum`: `(sall a)`, `M×N → 1×1`.
    Sall(Id),

    // ---- point-wise scalar functions (custom functions, §3.3) -----------
    /// Element-wise power `(pow a k)` with scalar exponent.
    Pow([Id; 2]),
    /// Element-wise reciprocal `1/x` (division is `a * inv(b)`).
    Inv(Id),
    Exp(Id),
    Log(Id),
    Sqrt(Id),
    Abs(Id),
    Sign(Id),
    /// `1/(1+exp(-x))`, SystemML's fused sigmoid.
    Sigmoid(Id),
    /// `p*(1-p)`, SystemML's fused sample-proportion operator.
    Sprop(Id),
    Gt([Id; 2]),
    Lt([Id; 2]),
    Ge([Id; 2]),
    Le([Id; 2]),
    BMin([Id; 2]),
    BMax([Id; 2]),

    // ---- leaves ----------------------------------------------------------
    /// Scalar constant.
    Lit(Num),
    /// A matrix variable or an index name; the analysis resolves the role
    /// from its registered environment (matrix env vs index env).
    Sym(Symbol),
    /// The missing index (`_`) in a vector/scalar bind.
    NoIdx,
}

impl Math {
    /// A literal node for `v`.
    pub fn lit(v: f64) -> Math {
        Math::Lit(Num::new(v))
    }

    /// A symbol node for `name`.
    pub fn sym(name: impl Into<Symbol>) -> Math {
        Math::Sym(name.into())
    }

    /// Is this one of the three RA operators (join/union/aggregate)?
    pub fn is_ra_op(&self) -> bool {
        matches!(self, Math::Add(_) | Math::Mul(_) | Math::Agg(_))
    }

    /// Is this one of the LA operators of Table 1?
    pub fn is_la_op(&self) -> bool {
        matches!(
            self,
            Math::LAdd(_)
                | Math::LSub(_)
                | Math::LMul(_)
                | Math::LDiv(_)
                | Math::MMul(_)
                | Math::LTrs(_)
                | Math::Srow(_)
                | Math::Scol(_)
                | Math::Sall(_)
        )
    }

    /// Point-wise scalar function applied cell-wise / multiplicity-wise?
    pub fn is_pointwise_fn(&self) -> bool {
        matches!(
            self,
            Math::Pow(_)
                | Math::Inv(_)
                | Math::Exp(_)
                | Math::Log(_)
                | Math::Sqrt(_)
                | Math::Abs(_)
                | Math::Sign(_)
                | Math::Sigmoid(_)
                | Math::Sprop(_)
                | Math::Gt(_)
                | Math::Lt(_)
                | Math::Ge(_)
                | Math::Le(_)
                | Math::BMin(_)
                | Math::BMax(_)
        )
    }
}

impl Language for Math {
    fn children(&self) -> &[Id] {
        use Math::*;
        match self {
            Add(c) | Mul(c) | Agg(c) | LAdd(c) | LSub(c) | LMul(c) | LDiv(c) | MMul(c) | Pow(c)
            | Gt(c) | Lt(c) | Ge(c) | Le(c) | BMin(c) | BMax(c) => c,
            Bind(c) | Unbind(c) => c,
            Dim(c) | LTrs(c) | Srow(c) | Scol(c) | Sall(c) | Inv(c) | Exp(c) | Log(c) | Sqrt(c)
            | Abs(c) | Sign(c) | Sigmoid(c) | Sprop(c) => std::slice::from_ref(c),
            Lit(_) | Sym(_) | NoIdx => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        use Math::*;
        match self {
            Add(c) | Mul(c) | Agg(c) | LAdd(c) | LSub(c) | LMul(c) | LDiv(c) | MMul(c) | Pow(c)
            | Gt(c) | Lt(c) | Ge(c) | Le(c) | BMin(c) | BMax(c) => c,
            Bind(c) | Unbind(c) => c,
            Dim(c) | LTrs(c) | Srow(c) | Scol(c) | Sall(c) | Inv(c) | Exp(c) | Log(c) | Sqrt(c)
            | Abs(c) | Sign(c) | Sigmoid(c) | Sprop(c) => std::slice::from_mut(c),
            Lit(_) | Sym(_) | NoIdx => &mut [],
        }
    }

    fn matches(&self, other: &Self) -> bool {
        use Math::*;
        match (self, other) {
            (Lit(a), Lit(b)) => a == b,
            (Sym(a), Sym(b)) => a == b,
            _ => std::mem::discriminant(self) == std::mem::discriminant(other),
        }
    }

    fn op_display(&self) -> String {
        use Math::*;
        match self {
            Add(_) => "+".into(),
            Mul(_) => "*".into(),
            Agg(_) => "sum".into(),
            Dim(_) => "dim".into(),
            Bind(_) => "b".into(),
            Unbind(_) => "ub".into(),
            LAdd(_) => "l+".into(),
            LSub(_) => "l-".into(),
            LMul(_) => "l*".into(),
            LDiv(_) => "l/".into(),
            MMul(_) => "m*".into(),
            LTrs(_) => "t".into(),
            Srow(_) => "srow".into(),
            Scol(_) => "scol".into(),
            Sall(_) => "sall".into(),
            Pow(_) => "pow".into(),
            Inv(_) => "inv".into(),
            Exp(_) => "exp".into(),
            Log(_) => "log".into(),
            Sqrt(_) => "sqrt".into(),
            Abs(_) => "abs".into(),
            Sign(_) => "sign".into(),
            Sigmoid(_) => "sigmoid".into(),
            Sprop(_) => "sprop".into(),
            Gt(_) => "gt".into(),
            Lt(_) => "lt".into(),
            Ge(_) => "ge".into(),
            Le(_) => "le".into(),
            BMin(_) => "bmin".into(),
            BMax(_) => "bmax".into(),
            Lit(n) => format!("{}", n.get()),
            Sym(s) => s.to_string(),
            NoIdx => "_".into(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        use Math::*;
        let c2 = |children: Vec<Id>| -> Result<[Id; 2], String> {
            <[Id; 2]>::try_from(children)
                .map_err(|c| format!("{op} expects 2 args, got {}", c.len()))
        };
        let c1 = |children: Vec<Id>| -> Result<Id, String> {
            if children.len() == 1 {
                Ok(children[0])
            } else {
                Err(format!("{op} expects 1 arg, got {}", children.len()))
            }
        };
        match op {
            "+" => Ok(Add(c2(children)?)),
            "*" => Ok(Mul(c2(children)?)),
            "sum" => Ok(Agg(c2(children)?)),
            "dim" => Ok(Dim(c1(children)?)),
            "b" | "ub" => {
                let c: [Id; 3] = <[Id; 3]>::try_from(children)
                    .map_err(|c| format!("{op} expects 3 args, got {}", c.len()))?;
                Ok(if op == "b" { Bind(c) } else { Unbind(c) })
            }
            "l+" => Ok(LAdd(c2(children)?)),
            "l-" => Ok(LSub(c2(children)?)),
            "l*" => Ok(LMul(c2(children)?)),
            "l/" => Ok(LDiv(c2(children)?)),
            "m*" => Ok(MMul(c2(children)?)),
            "t" => Ok(LTrs(c1(children)?)),
            "srow" => Ok(Srow(c1(children)?)),
            "scol" => Ok(Scol(c1(children)?)),
            "sall" => Ok(Sall(c1(children)?)),
            "pow" => Ok(Pow(c2(children)?)),
            "inv" => Ok(Inv(c1(children)?)),
            "exp" => Ok(Exp(c1(children)?)),
            "log" => Ok(Log(c1(children)?)),
            "sqrt" => Ok(Sqrt(c1(children)?)),
            "abs" => Ok(Abs(c1(children)?)),
            "sign" => Ok(Sign(c1(children)?)),
            "sigmoid" => Ok(Sigmoid(c1(children)?)),
            "sprop" => Ok(Sprop(c1(children)?)),
            "gt" => Ok(Gt(c2(children)?)),
            "lt" => Ok(Lt(c2(children)?)),
            "ge" => Ok(Ge(c2(children)?)),
            "le" => Ok(Le(c2(children)?)),
            "bmin" => Ok(BMin(c2(children)?)),
            "bmax" => Ok(BMax(c2(children)?)),
            "_" => {
                if children.is_empty() {
                    Ok(NoIdx)
                } else {
                    Err("`_` takes no children".into())
                }
            }
            _ => {
                if !children.is_empty() {
                    return Err(format!("unknown operator `{op}`"));
                }
                if let Ok(v) = op.parse::<f64>() {
                    Ok(Math::lit(v))
                } else {
                    Ok(Math::sym(op))
                }
            }
        }
    }
}

/// A [`spores_egraph::RecExpr`] over [`Math`].
pub type MathExpr = spores_egraph::RecExpr<Math>;

/// Parse an s-expression term, e.g. `(sum i (* (b i j X) (b i _ v)))`.
pub fn parse_math(src: &str) -> Result<MathExpr, String> {
    spores_egraph::parse_rec_expr(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for src in [
            "(sum i (* (b i j X) (b j _ v)))",
            "(+ (b i j X) (* -1 (b i j Y)))",
            "(l- X (m* U (t V)))",
            "(sall (pow (l- X (m* U (t V))) 2))",
            "(sigmoid (b i _ x))",
            "(dim i)",
        ] {
            let e = parse_math(src).unwrap();
            assert_eq!(e.to_string(), src);
        }
    }

    #[test]
    fn numbers_and_symbols() {
        let e = parse_math("(* 2.5 X)").unwrap();
        assert!(matches!(
            e.node(spores_egraph::Id::from(0usize)),
            Math::Lit(_)
        ));
        assert!(matches!(
            e.node(spores_egraph::Id::from(1usize)),
            Math::Sym(_)
        ));
    }

    #[test]
    fn arity_errors() {
        assert!(parse_math("(sum i)").is_err());
        assert!(parse_math("(b i X)").is_err());
        assert!(parse_math("(t X Y)").is_err());
        assert!(parse_math("(frobnicate X Y)").is_err());
    }

    #[test]
    fn realm_classification() {
        let add = Math::Add([Id::from(0usize), Id::from(0usize)]);
        let ladd = Math::LAdd([Id::from(0usize), Id::from(0usize)]);
        let exp = Math::Exp(Id::from(0usize));
        assert!(add.is_ra_op() && !add.is_la_op());
        assert!(ladd.is_la_op() && !ladd.is_ra_op());
        assert!(exp.is_pointwise_fn());
    }

    #[test]
    fn matches_distinguishes_payload() {
        use spores_egraph::Language;
        assert!(!Math::lit(1.0).matches(&Math::lit(2.0)));
        assert!(!Math::sym("X").matches(&Math::sym("Y")));
        assert!(Math::sym("X").matches(&Math::sym("X")));
    }
}
