//! Synthetic data generators.
//!
//! The paper evaluates on synthetic datasets produced by SystemML's
//! algorithm-specific generators; these are the equivalents. All
//! generators take an explicit RNG so benchmark tables regenerate
//! identically.

use crate::dense::Dense;
use crate::matrix::Matrix;
use crate::sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a named experiment.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Dense matrix with entries uniform in `[lo, hi)`.
pub fn rand_dense(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
    Matrix::Dense(Dense::new(rows, cols, data))
}

/// Sparse matrix with approximately `sparsity · rows · cols` non-zeros,
/// values uniform in `[lo, hi)`.
pub fn rand_sparse(
    rows: usize,
    cols: usize,
    sparsity: f64,
    lo: f64,
    hi: f64,
    rng: &mut StdRng,
) -> Matrix {
    assert!((0.0..=1.0).contains(&sparsity));
    let target = ((rows * cols) as f64 * sparsity).round() as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        let r = rng.random_range(0..rows);
        let c = rng.random_range(0..cols);
        let mut v = rng.random_range(lo..hi);
        if v == 0.0 {
            v = 1.0;
        }
        triplets.push((r, c, v));
    }
    Matrix::Sparse(Csr::from_triplets(rows, cols, triplets))
}

/// 0/1 label column vector.
pub fn rand_labels(rows: usize, rng: &mut StdRng) -> Matrix {
    let data = (0..rows).map(|_| f64::from(rng.random_bool(0.5))).collect();
    Matrix::Dense(Dense::new(rows, 1, data))
}

/// ±1 label column vector (SVM-style).
pub fn rand_sign_labels(rows: usize, rng: &mut StdRng) -> Matrix {
    let data = (0..rows)
        .map(|_| if rng.random_bool(0.5) { 1.0 } else { -1.0 })
        .collect();
    Matrix::Dense(Dense::new(rows, 1, data))
}

/// Non-negative sparse count data (PNMF-style document-term matrix).
pub fn rand_counts(
    rows: usize,
    cols: usize,
    sparsity: f64,
    max_count: u32,
    rng: &mut StdRng,
) -> Matrix {
    let target = ((rows * cols) as f64 * sparsity).round() as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        triplets.push((
            rng.random_range(0..rows),
            rng.random_range(0..cols),
            rng.random_range(1..=max_count) as f64,
        ));
    }
    Matrix::Sparse(Csr::from_triplets(rows, cols, triplets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_in_range() {
        let mut r = rng(1);
        let m = rand_dense(10, 10, -1.0, 1.0, &mut r);
        assert!(!m.is_sparse());
        assert!(m.to_dense().data.iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn sparse_hits_target_sparsity() {
        let mut r = rng(2);
        let m = rand_sparse(100, 100, 0.05, 0.0, 1.0, &mut r);
        let s = m.sparsity();
        assert!(s > 0.03 && s < 0.06, "sparsity {s}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = rand_sparse(50, 50, 0.1, -1.0, 1.0, &mut rng(42));
        let b = rand_sparse(50, 50, 0.1, -1.0, 1.0, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn labels_binary() {
        let mut r = rng(3);
        let y = rand_labels(100, &mut r);
        assert!(y.to_dense().data.iter().all(|&v| v == 0.0 || v == 1.0));
        let s = rand_sign_labels(100, &mut r);
        assert!(s.to_dense().data.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn counts_positive() {
        let mut r = rng(4);
        let m = rand_counts(50, 60, 0.02, 9, &mut r);
        assert!(m.is_sparse());
        if let Matrix::Sparse(s) = &m {
            assert!(s.values.iter().all(|&v| v >= 1.0));
        }
    }
}
