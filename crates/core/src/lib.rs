//! SPORES: the relational equality-saturation optimizer (paper core).
#![forbid(unsafe_code)]

pub mod analysis;
pub mod canon;
pub mod cost;
pub mod eval;
pub mod extract;
pub mod homomorphism;
pub mod lang;
pub mod lower;
pub mod optimizer;
pub mod rules;
pub mod translate;
pub mod workload;

pub use analysis::{Context, Kind, MathGraph, Meta, MetaAnalysis, Schema, VarMeta};
pub use canon::{canon_of_la, canonical_form, la_equivalent, polyterm_isomorphic, Polyterm};
pub use cost::{node_cost, NnzCost};
pub use extract::{
    dag_cost, extract_greedy, extract_greedy_multi, extract_ilp, extract_ilp_multi, IlpStats,
};
pub use homomorphism::{find_homomorphism, minimal_terms, Homomorphism};
pub use lang::{parse_math, Math, MathExpr};
pub use lower::{lower, lower_with_info, lower_workload, LowerError, Lowered, LoweredWorkload};
pub use optimizer::{
    plan_cost, ExtractorKind, Optimized, Optimizer, OptimizerConfig, PhaseTimings, SaturationStats,
};
pub use rules::{custom_rules, default_rules, req_rules, MathRewrite};
pub use spores_egraph::MatchingMode;
pub use translate::{
    translate, translate_workload, RootTranslation, Translation, WorkloadTranslation,
};
pub use workload::{workload_plan_cost, WorkloadOptimized};
