//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **sampling match-limit sweep** — convergence and e-graph size vs
//!    the per-rule match cap (§3.1's knob);
//! 2. **greedy vs ILP on a CSE-heavy plan** — the Figure 10 scenario
//!    where greedy double-counts a shared subplan;
//! 3. **custom-function equations on/off** — how many Figure 14 families
//!    still derive with bare R_EQ (run `fig14 --no-custom` for the full
//!    per-method table).

use spores_bench::Table;
use spores_core::analysis::{Context, MetaAnalysis, VarMeta};
use spores_core::{extract_greedy, extract_ilp, parse_math};
use spores_egraph::{Runner, Scheduler};
use spores_ilp::Solver;

fn sampling_sweep() {
    println!("Ablation 1: sampling match-limit sweep (ALS gradient expression)");
    println!();
    let ctx = Context::new()
        .with_var("X", VarMeta::sparse(2000, 1000, 0.01))
        .with_var("U", VarMeta::dense(2000, 10))
        .with_var("V", VarMeta::dense(1000, 10));
    // (U Vᵀ − X) V translated by hand (stable input for the sweep)
    let mut arena = spores_ir::ExprArena::new();
    let root = spores_ir::parse_expr(&mut arena, "(U %*% t(V) - X) %*% V").unwrap();
    let vars = ctx.vars.iter().map(|(&k, &v)| (k, v)).collect();
    let tr = spores_core::translate(&arena, root, &vars).unwrap();

    let mut table = Table::new(&[
        "match_limit",
        "iterations",
        "e-nodes",
        "converged",
        "saturate ms",
        "plan cost",
    ]);
    for limit in [5usize, 10, 20, 40, 80, usize::MAX] {
        let scheduler = if limit == usize::MAX {
            Scheduler::DepthFirst
        } else {
            Scheduler::Sampling {
                match_limit: limit,
                seed: 7,
            }
        };
        let t0 = std::time::Instant::now();
        let mut ctx2 = tr.ctx.clone();
        ctx2.vars = tr.ctx.vars.clone();
        let runner = Runner::new(MetaAnalysis::new(ctx2))
            .with_expr(&tr.expr)
            .with_scheduler(scheduler)
            .with_iter_limit(100)
            .with_node_limit(20_000)
            .run(&spores_core::default_rules());
        let cost = extract_greedy(&runner.egraph, runner.roots[0])
            .map_or_else(|| "-".into(), |(c, _)| format!("{c:.0}"));
        table.row(&[
            if limit == usize::MAX {
                "∞ (DFS)".into()
            } else {
                limit.to_string()
            },
            runner.iterations.len().to_string(),
            runner.egraph.total_number_of_nodes().to_string(),
            if runner.saturated() { "yes" } else { "no" }.into(),
            format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3),
            cost,
        ]);
    }
    table.print();
    println!();
}

fn greedy_vs_ilp() {
    println!("Ablation 2: greedy vs ILP extraction on a CSE-heavy plan (Figure 10)");
    println!();
    // (U⊗V) shared between a sparse-join consumer and a direct consumer:
    // greedy pays the dense outer product twice, ILP once.
    let ctx = Context::new()
        .with_var("X", VarMeta::sparse(1000, 500, 0.001))
        .with_var("U", VarMeta::dense(1000, 1))
        .with_var("V", VarMeta::dense(500, 1))
        .with_index("i", 1000)
        .with_index("j", 500);
    let outer = "(* (b i _ U) (b j _ V))";
    let src = format!("(+ (* (b i j X) {outer}) {outer})");
    let mut eg = spores_core::analysis::MathGraph::new(MetaAnalysis::new(ctx));
    let root = eg.add_expr(&parse_math(&src).unwrap());
    eg.rebuild();
    let (gc, _) = extract_greedy(&eg, root).unwrap();
    let (ic, _, stats) = extract_ilp(&eg, root, &Solver::default()).unwrap();
    let mut table = Table::new(&["extractor", "plan cost", "optimal?"]);
    table.row(&["greedy".into(), format!("{gc:.0}"), "no (tree cost)".into()]);
    table.row(&[
        "ILP".into(),
        format!("{ic:.0}"),
        if stats.optimal { "yes" } else { "incumbent" }.into(),
    ]);
    table.print();
    println!(
        "\nILP saves {:.1}% by paying the shared outer product once\n",
        (gc - ic) / gc * 100.0
    );
}

fn rules_ablation() {
    println!("Ablation 3: custom-function equations (§3.3) on/off");
    println!();
    let n_req = spores_core::req_rules().len();
    let n_all = spores_core::default_rules().len();
    println!("  R_EQ rules: {n_req}; with custom-function equations: {n_all}");
    println!("  (run `fig14 --no-custom` for the per-method derivability table)");
    println!();
}

fn main() {
    sampling_sweep();
    greedy_vs_ilp();
    rules_ablation();
}
