//! The relational equality rules R_EQ (Figure 3) and the custom-function
//! equations of §3.3.
//!
//! Each of the seven identities of Figure 3 is instantiated as one or more
//! *directed* rewrites. Directions that can only grow the e-graph without
//! enabling further matches (e.g. introducing an aggregation over a fresh
//! index, the right-to-left reading of rule 5) are kept out of the default
//! optimization set but included in [`complete`], which the completeness
//! tests exercise.
//!
//! Rules 3 and 5 carry the schema side condition `i ∉ Attr(A)`, checked
//! against the class-invariant analysis (§3.2) — this is exactly the use
//! case the paper gives for class invariants.

use crate::analysis::{index_not_in_schema, MetaAnalysis};
use crate::lang::Math;
use spores_egraph::{ConditionMeta, Rewrite, Var};

/// A rewrite over the SPORES language.
pub type MathRewrite = Rewrite<Math, MetaAnalysis>;

fn rw(name: &str, lhs: &str, rhs: &str) -> MathRewrite {
    Rewrite::new(name, lhs, rhs).unwrap_or_else(|e| panic!("bad rule {name}: {e}"))
}

/// `lhs => rhs` guarded by `?i ∉ Attr(?a)`. The guard is declared as
/// [`ConditionMeta::IndexNotInSchema`] so the static auditor can
/// cross-check it against the hypothesis the schema algebra demands.
fn rw_if_free(name: &str, lhs: &str, rhs: &str) -> MathRewrite {
    let i = Var::new("i");
    let a = Var::new("a");
    rw(name, lhs, rhs).with_declared_condition(
        ConditionMeta::IndexNotInSchema { index: i, of: a },
        move |egraph, _id, subst| {
            let (vi, va) = match (subst.get(i), subst.get(a)) {
                (Some(vi), Some(va)) => (vi, va),
                _ => return false,
            };
            index_not_in_schema(egraph, vi, va)
        },
    )
}

/// The seven relational identities of Figure 3, as directed rewrites.
/// This is the default rule set the optimizer saturates with.
pub fn req_rules() -> Vec<MathRewrite> {
    vec![
        // (1) distributivity of join over union, both directions
        rw("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
        rw("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))").with_nonlinear_lhs(),
        // (2) aggregates distribute over union, both directions
        rw(
            "push-agg-add",
            "(sum ?i (+ ?a ?b))",
            "(+ (sum ?i ?a) (sum ?i ?b))",
        ),
        rw(
            "pull-agg-add",
            "(+ (sum ?i ?a) (sum ?i ?b))",
            "(sum ?i (+ ?a ?b))",
        )
        .with_nonlinear_lhs(),
        // (3) join commutes with aggregation when the index is free of A
        rw_if_free("push-join-agg", "(* ?a (sum ?i ?b))", "(sum ?i (* ?a ?b))"),
        rw_if_free("pull-join-agg", "(sum ?i (* ?a ?b))", "(* ?a (sum ?i ?b))"),
        // (4) nested aggregates commute
        rw("swap-agg", "(sum ?i (sum ?j ?a))", "(sum ?j (sum ?i ?a))"),
        // (5) trivial aggregation scales by the dimension
        rw_if_free("agg-to-dim", "(sum ?i ?a)", "(* ?a (dim ?i))"),
        // (6) union is associative & commutative
        rw("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
        rw("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
        rw("assoc-add-rev", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        // (7) join is associative & commutative
        rw("comm-mul", "(* ?a ?b)", "(* ?b ?a)"),
        rw("assoc-mul", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"),
        rw("assoc-mul-rev", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
        // scalar-identity cleanups (sound consequences of constant
        // folding; keep plans from accumulating units)
        rw("mul-one", "(* 1 ?a)", "?a"),
        rw("add-zero", "(+ 0 ?a)", "?a"),
        // sparsity-invariant rule: adding a provably-empty relation is a
        // no-op (justifies SystemML's Empty* rewrites, §3.2/Figure 14).
        // Guards: `?b` must be the additive zero (sparsity 0), and the
        // zero side's schema must not extend the other's — declared
        // separately so the auditor can match each hypothesis.
        rw("add-zero-rel", "(+ ?a ?b)", "?a")
            .with_declared_condition(
                ConditionMeta::IsZero { var: Var::new("b") },
                |egraph, _id, subst| match subst.get(Var::new("b")) {
                    Some(b) => egraph.class(b).data.sparsity == 0.0,
                    None => false,
                },
            )
            .with_declared_condition(
                ConditionMeta::SchemaSubset {
                    sub: Var::new("b"),
                    sup: Var::new("a"),
                },
                |egraph, _id, subst| {
                    let (a, b) = match (subst.get(Var::new("a")), subst.get(Var::new("b"))) {
                        (Some(a), Some(b)) => (a, b),
                        _ => return false,
                    };
                    let (sa, sb) = match (
                        egraph.class(a).data.kind.attrs(),
                        egraph.class(b).data.kind.attrs(),
                    ) {
                        (Some(sa), Some(sb)) => (sa, sb),
                        _ => return false,
                    };
                    sb.iter().all(|s| sa.contains(s))
                },
            ),
    ]
}

/// Custom-function equations (§3.3): element-wise operators that are not
/// part of the core RA semantics, plus SystemML's fused operators, are
/// equated with their definitions so that "saturation simultaneously
/// considers all possible orderings" of rewriting and fusion.
pub fn custom_rules() -> Vec<MathRewrite> {
    vec![
        // square / powers expand into joins (and back: fusion)
        rw("pow2-expand", "(pow ?x 2)", "(* ?x ?x)"),
        rw("pow2-fuse", "(* ?x ?x)", "(pow ?x 2)").with_nonlinear_lhs(),
        rw("pow3-expand", "(pow ?x 3)", "(* ?x (* ?x ?x))"),
        // doubling
        rw("double", "(+ ?x ?x)", "(* 2 ?x)").with_nonlinear_lhs(),
        rw("double-rev", "(* 2 ?x)", "(+ ?x ?x)"),
        // reciprocal
        rw("inv-inv", "(inv (inv ?x))", "?x"),
        // sigmoid(x) = 1 / (1 + exp(-x)), both directions (fusion)
        rw(
            "sigmoid-expand",
            "(sigmoid ?x)",
            "(inv (+ 1 (exp (* -1 ?x))))",
        ),
        rw(
            "sigmoid-fuse",
            "(inv (+ 1 (exp (* -1 ?x))))",
            "(sigmoid ?x)",
        ),
        // sprop(p) = p - p², both directions (fusion). The factored form
        // p·(1-p) is reachable via distributivity.
        rw("sprop-expand", "(sprop ?p)", "(+ ?p (* -1 (* ?p ?p)))"),
        rw("sprop-fuse", "(+ ?p (* -1 (* ?p ?p)))", "(sprop ?p)").with_nonlinear_lhs(),
        // sign(x) = (x > 0) - (x < 0)
        rw("sign-def", "(+ (gt ?x 0) (* -1 (lt ?x 0)))", "(sign ?x)").with_nonlinear_lhs(),
        rw(
            "sign-def-rev",
            "(sign ?x)",
            "(+ (gt ?x 0) (* -1 (lt ?x 0)))",
        ),
        // |x| = sign(x) · x
        rw("abs-def", "(* (sign ?x) ?x)", "(abs ?x)").with_nonlinear_lhs(),
        rw("abs-def-rev", "(abs ?x)", "(* (sign ?x) ?x)"),
    ]
}

/// The default optimization rule set: R_EQ plus custom-function equations.
pub fn default_rules() -> Vec<MathRewrite> {
    let mut rules = req_rules();
    rules.extend(custom_rules());
    rules
}

/// The full rule set including expansion-only directions needed for the
/// completeness arguments (§2.3): every rule of R_EQ is reversible.
pub fn complete() -> Vec<MathRewrite> {
    let mut rules = default_rules();
    rules.push(rw_if_free("dim-to-agg", "(* ?a (dim ?i))", "(sum ?i ?a)"));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Context, MathGraph, MetaAnalysis, VarMeta};
    use crate::lang::parse_math;
    use spores_egraph::{Runner, Scheduler};

    fn ctx() -> Context {
        Context::new()
            .with_var("X", VarMeta::sparse(100, 50, 0.01))
            .with_var("Y", VarMeta::dense(100, 50))
            .with_var("U", VarMeta::dense(100, 1))
            .with_var("V", VarMeta::dense(50, 1))
            .with_index("i", 100)
            .with_index("j", 50)
            .with_index("k", 100)
    }

    fn saturate(src: &str) -> (spores_egraph::Id, MathGraph) {
        let expr = parse_math(src).unwrap();
        let runner = Runner::new(MetaAnalysis::new(ctx()))
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_node_limit(20_000)
            .with_iter_limit(20)
            .run(&default_rules());
        (runner.roots[0], runner.egraph)
    }

    fn assert_derives(from: &str, to: &str) {
        let (root, eg) = saturate(from);
        let want = parse_math(to).unwrap();
        let found = eg.lookup_expr(&want);
        assert_eq!(
            found.map(|id| eg.find(id)),
            Some(eg.find(root)),
            "expected `{from}` to derive `{to}`"
        );
    }

    #[test]
    fn distributivity_both_ways() {
        assert_derives(
            "(* (b i _ U) (+ (b i j X) (b i j Y)))",
            "(+ (* (b i _ U) (b i j X)) (* (b i _ U) (b i j Y)))",
        );
        assert_derives(
            "(+ (* (b i _ U) (b i j X)) (* (b i _ U) (b i j Y)))",
            "(* (b i _ U) (+ (b i j X) (b i j Y)))",
        );
    }

    #[test]
    fn rule3_pulls_factor_out_of_agg() {
        // Σ_j (U(i) * X(i,j)) = U(i) * Σ_j X(i,j) since j ∉ Attr(U)
        assert_derives(
            "(sum j (* (b i _ U) (b i j X)))",
            "(* (b i _ U) (sum j (b i j X)))",
        );
    }

    #[test]
    fn rule3_respects_schema_condition() {
        // Σ_j (V(j) * X(i,j)) must NOT factor V out of the aggregate
        let (_, eg) = saturate("(sum j (* (b j _ V) (b i j X)))");
        let bad = parse_math("(* (b j _ V) (sum j (b i j X)))").unwrap();
        // the factored form may exist in the graph (added by other rules
        // for other classes) but must not be equal to the root
        let root = eg
            .lookup_expr(&parse_math("(sum j (* (b j _ V) (b i j X)))").unwrap())
            .unwrap();
        if let Some(id) = eg.lookup_expr(&bad) {
            assert_ne!(eg.find(id), eg.find(root));
        }
    }

    #[test]
    fn nested_aggregates_commute() {
        assert_derives("(sum i (sum j (b i j X)))", "(sum j (sum i (b i j X)))");
    }

    #[test]
    fn agg_of_closed_term_scales() {
        // Σ_i V(j) = V(j) * dim(i)
        assert_derives("(sum i (b j _ V))", "(* (b j _ V) (dim i))");
    }

    #[test]
    fn headline_sum_of_square_of_product() {
        // §2.1: Σ_ij (U(i)V(j))² = (Σ_i U(i)²) * (Σ_j V(j)²)
        assert_derives(
            "(sum i (sum j (pow (* (b i _ U) (b j _ V)) 2)))",
            "(* (sum i (* (b i _ U) (b i _ U))) (sum j (* (b j _ V) (b j _ V))))",
        );
    }

    #[test]
    fn sprop_fusion_from_factored_form() {
        // P - P² ≡ sprop(P): the MLR optimization of §4.2
        assert_derives(
            "(+ (b i _ U) (* -1 (* (b i _ U) (b i _ U))))",
            "(sprop (b i _ U))",
        );
    }

    #[test]
    fn sigmoid_fusion() {
        assert_derives("(inv (+ 1 (exp (* -1 (b i _ U)))))", "(sigmoid (b i _ U))");
    }

    #[test]
    fn sign_definition() {
        assert_derives(
            "(+ (gt (b i j X) 0) (* -1 (lt (b i j X) 0)))",
            "(sign (b i j X))",
        );
    }

    #[test]
    fn constant_folding_interacts_with_rules() {
        // (3 - 2) / (1 + exp(-x)) should become sigmoid(x) — the paper's
        // phase-ordering example (§3, "ORDER OF REWRITES")
        assert_derives(
            "(* (+ 3 (* -1 2)) (inv (+ 1 (exp (* -1 (b i _ U))))))",
            "(sigmoid (b i _ U))",
        );
    }

    #[test]
    fn indexed_matching_agrees_with_naive_on_real_rules() {
        // Every default rule, run against a saturated graph of the
        // paper's headline shape: the op-head-indexed compiled matcher
        // must produce exactly the interpreted all-classes result.
        let (_, eg) =
            saturate("(sum i (sum j (pow (+ (b i j X) (* -1 (* (b i _ U) (b j _ V)))) 2)))");
        for rule in default_rules() {
            let (indexed, candidates) = rule.search_with_stats(&eg);
            let naive = rule.searcher.naive_search(&eg);
            assert_eq!(indexed.len(), naive.len(), "rule {}", rule.name);
            for (a, b) in indexed.iter().zip(&naive) {
                assert_eq!(a.eclass, b.eclass, "rule {}", rule.name);
                assert_eq!(a.substs, b.substs, "rule {}", rule.name);
            }
            assert!(
                candidates <= eg.number_of_classes(),
                "rule {} visited more candidates than classes",
                rule.name
            );
        }
    }

    #[test]
    fn saturation_converges_on_small_exprs() {
        let expr = parse_math("(sum j (* (b i _ U) (b i j X)))").unwrap();
        let runner = Runner::new(MetaAnalysis::new(ctx()))
            .with_expr(&expr)
            .with_scheduler(Scheduler::DepthFirst)
            .with_node_limit(50_000)
            .run(&default_rules());
        assert!(runner.saturated(), "{:?}", runner.stop_reason);
    }
}
