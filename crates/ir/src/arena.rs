//! Hash-consed linear-algebra expression DAGs.
//!
//! SystemML compiles DML scripts into HOP DAGs where common subexpressions
//! are shared; the SPORES optimizer receives such DAGs (paper §3.5). The
//! [`ExprArena`] reproduces that: inserting a structurally-identical node
//! returns the existing [`NodeId`], so sharing is by construction.

use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// Index of a node in an [`ExprArena`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Unary LA operators (Table 1 plus SystemML element-wise maps).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// `t(X)` — transpose.
    T,
    /// `rowSums(X)` — row aggregate, `M×N → M×1`.
    RowSums,
    /// `colSums(X)` — column aggregate, `M×N → 1×N`.
    ColSums,
    /// `sum(X)` — full aggregate, `M×N → 1×1`.
    Sum,
    /// `-X`.
    Neg,
    Exp,
    Log,
    Sqrt,
    Abs,
    Sign,
    /// `1/(1+exp(-x))` element-wise.
    Sigmoid,
    /// `x*(1-x)` element-wise (SystemML's fused sample-proportion op).
    Sprop,
}

impl UnOp {
    /// True for operators that apply a scalar function cell-wise.
    pub fn is_elementwise(self) -> bool {
        !matches!(self, UnOp::T | UnOp::RowSums | UnOp::ColSums | UnOp::Sum)
    }

    /// Surface (DML-like) function name.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::T => "t",
            UnOp::RowSums => "rowSums",
            UnOp::ColSums => "colSums",
            UnOp::Sum => "sum",
            UnOp::Neg => "-",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sqrt => "sqrt",
            UnOp::Abs => "abs",
            UnOp::Sign => "sign",
            UnOp::Sigmoid => "sigmoid",
            UnOp::Sprop => "sprop",
        }
    }
}

/// Binary LA operators. All but [`BinOp::MatMul`] are element-wise with
/// broadcasting (see [`crate::shape::broadcast`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `X^k` element-wise power.
    Pow,
    /// `X %*% Y`.
    MatMul,
    Min,
    Max,
    Gt,
    Lt,
    Ge,
    Le,
}

impl BinOp {
    pub fn is_elementwise(self) -> bool {
        !matches!(self, BinOp::MatMul)
    }

    /// Surface syntax for the operator.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::MatMul => "%*%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Gt => ">",
            BinOp::Lt => "<",
            BinOp::Ge => ">=",
            BinOp::Le => "<=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A scalar literal with `Eq`/`Hash` (bit-based, `-0.0` normalized, NaN
/// rejected) so [`LaNode`] can key the hash-cons table.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Num(f64);

impl Num {
    pub fn new(v: f64) -> Num {
        assert!(!v.is_nan(), "NaN literals are not representable");
        Num(if v == 0.0 { 0.0 } else { v })
    }

    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for Num {}

impl std::hash::Hash for Num {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for Num {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Num {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // NaN is rejected at construction, so total_cmp agrees with the
        // usual order on the values we store.
        self.0.total_cmp(&other.0)
    }
}

/// One node of the LA DAG.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LaNode {
    /// A free matrix (or vector/scalar) variable.
    Var(Symbol),
    /// A scalar constant.
    Scalar(Num),
    /// A constant-filled matrix: `matrix(v, rows, cols)` in DML.
    Fill(Num, u64, u64),
    Un(UnOp, NodeId),
    Bin(BinOp, NodeId, NodeId),
}

impl LaNode {
    /// Child node ids, in order.
    pub fn children(&self) -> Vec<NodeId> {
        match self {
            LaNode::Var(_) | LaNode::Scalar(_) | LaNode::Fill(..) => vec![],
            LaNode::Un(_, a) => vec![*a],
            LaNode::Bin(_, a, b) => vec![*a, *b],
        }
    }
}

/// Hash-consed arena of [`LaNode`]s.
#[derive(Default, Clone, Debug)]
pub struct ExprArena {
    nodes: Vec<LaNode>,
    memo: HashMap<LaNode, NodeId>,
}

impl ExprArena {
    pub fn new() -> ExprArena {
        ExprArena::default()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: NodeId) -> &LaNode {
        &self.nodes[id.index()]
    }

    /// Insert a node, returning the id of the structurally-identical
    /// existing node when there is one (hash-consing).
    pub fn insert(&mut self, node: LaNode) -> NodeId {
        if let Some(&id) = self.memo.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.memo.insert(node, id);
        id
    }

    // --- convenience constructors -------------------------------------

    pub fn var(&mut self, name: impl Into<Symbol>) -> NodeId {
        self.insert(LaNode::Var(name.into()))
    }

    pub fn lit(&mut self, v: f64) -> NodeId {
        self.insert(LaNode::Scalar(Num::new(v)))
    }

    /// `matrix(v, rows, cols)` — a constant-filled matrix.
    pub fn fill(&mut self, v: f64, rows: u64, cols: u64) -> NodeId {
        self.insert(LaNode::Fill(Num::new(v), rows, cols))
    }

    pub fn un(&mut self, op: UnOp, a: NodeId) -> NodeId {
        self.insert(LaNode::Un(op, a))
    }

    pub fn bin(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        self.insert(LaNode::Bin(op, a, b))
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Add, a, b)
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Sub, a, b)
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Mul, a, b)
    }

    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Div, a, b)
    }

    pub fn pow(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Pow, a, b)
    }

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::MatMul, a, b)
    }

    pub fn t(&mut self, a: NodeId) -> NodeId {
        self.un(UnOp::T, a)
    }

    pub fn sum(&mut self, a: NodeId) -> NodeId {
        self.un(UnOp::Sum, a)
    }

    pub fn row_sums(&mut self, a: NodeId) -> NodeId {
        self.un(UnOp::RowSums, a)
    }

    pub fn col_sums(&mut self, a: NodeId) -> NodeId {
        self.un(UnOp::ColSums, a)
    }

    // --- traversal ------------------------------------------------------

    /// Nodes reachable from `root` in post order (children before parents),
    /// each exactly once.
    pub fn postorder(&self, root: NodeId) -> Vec<NodeId> {
        self.postorder_multi(&[root])
    }

    /// Nodes reachable from any of `roots` in post order, each exactly
    /// once. Earlier roots' sub-DAGs are visited first, so the order is
    /// canonical for a given root sequence — the property the multi-root
    /// workload fingerprint relies on.
    pub fn postorder_multi(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        for &root in roots {
            // explicit stack: (node, children_pushed)
            let mut stack = vec![(root, false)];
            while let Some((id, expanded)) = stack.pop() {
                if visited[id.index()] {
                    continue;
                }
                if expanded {
                    visited[id.index()] = true;
                    order.push(id);
                } else {
                    stack.push((id, true));
                    for c in self.node(id).children() {
                        if !visited[c.index()] {
                            stack.push((c, false));
                        }
                    }
                }
            }
        }
        order
    }

    /// Number of distinct nodes reachable from `root`.
    pub fn dag_size(&self, root: NodeId) -> usize {
        self.postorder(root).len()
    }

    /// Number of nodes of the fully-expanded tree rooted at `root`
    /// (shared nodes counted once per occurrence).
    pub fn tree_size(&self, root: NodeId) -> usize {
        let order = self.postorder(root);
        let mut size: HashMap<NodeId, usize> = HashMap::new();
        for id in order {
            let s = 1 + self
                .node(id)
                .children()
                .iter()
                .map(|c| size[c])
                .sum::<usize>();
            size.insert(id, s);
        }
        size[&root]
    }

    /// Free variables of the expression rooted at `root`.
    pub fn free_vars(&self, root: NodeId) -> Vec<Symbol> {
        let mut vars = Vec::new();
        for id in self.postorder(root) {
            if let LaNode::Var(v) = self.node(id) {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        vars
    }

    /// Render `root` in DML-like surface syntax.
    pub fn display(&self, root: NodeId) -> String {
        let mut s = String::new();
        self.fmt_node(root, 0, &mut s);
        s
    }

    // Precedence levels: 0 outermost, higher binds tighter.
    fn fmt_node(&self, id: NodeId, parent_prec: u8, out: &mut String) {
        use std::fmt::Write;
        match self.node(id) {
            LaNode::Var(v) => {
                write!(out, "{v}").unwrap();
            }
            LaNode::Scalar(n) => {
                write!(out, "{}", n.get()).unwrap();
            }
            LaNode::Fill(n, r, c) => {
                write!(out, "matrix({}, {}, {})", n.get(), r, c).unwrap();
            }
            LaNode::Un(op, a) => match op {
                UnOp::Neg => {
                    let prec = 5;
                    if parent_prec > prec {
                        out.push('(');
                    }
                    out.push('-');
                    self.fmt_node(*a, prec + 1, out);
                    if parent_prec > prec {
                        out.push(')');
                    }
                }
                _ => {
                    write!(out, "{}(", op.name()).unwrap();
                    self.fmt_node(*a, 0, out);
                    out.push(')');
                }
            },
            LaNode::Bin(op, a, b) => {
                if matches!(op, BinOp::Min | BinOp::Max) {
                    write!(out, "{}(", op.token()).unwrap();
                    self.fmt_node(*a, 0, out);
                    out.push_str(", ");
                    self.fmt_node(*b, 0, out);
                    out.push(')');
                    return;
                }
                let prec = match op {
                    BinOp::Gt | BinOp::Lt | BinOp::Ge | BinOp::Le => 1,
                    BinOp::Add | BinOp::Sub => 2,
                    BinOp::Mul | BinOp::Div => 3,
                    BinOp::MatMul => 4,
                    BinOp::Pow => 6,
                    BinOp::Min | BinOp::Max => unreachable!(),
                };
                if parent_prec > prec {
                    out.push('(');
                }
                // left-assoc: left child may share prec, right child must bind tighter
                self.fmt_node(*a, prec, out);
                if matches!(op, BinOp::Pow) {
                    write!(out, "{}", op.token()).unwrap();
                } else {
                    write!(out, " {} ", op.token()).unwrap();
                }
                self.fmt_node(*b, prec + 1, out);
                if parent_prec > prec {
                    out.push(')');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut a = ExprArena::new();
        let x = a.var("X");
        let y = a.var("Y");
        let m1 = a.mul(x, y);
        let m2 = a.mul(x, y);
        assert_eq!(m1, m2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn postorder_is_children_first() {
        let mut a = ExprArena::new();
        let x = a.var("X");
        let t = a.t(x);
        let m = a.matmul(t, x);
        let order = a.postorder(m);
        let pos = |id: NodeId| order.iter().position(|&o| o == id).unwrap();
        assert!(pos(x) < pos(t));
        assert!(pos(t) < pos(m));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn tree_vs_dag_size() {
        let mut a = ExprArena::new();
        let x = a.var("X");
        let xx = a.mul(x, x); // shared X
        assert_eq!(a.dag_size(xx), 2);
        assert_eq!(a.tree_size(xx), 3);
    }

    #[test]
    fn display_precedence() {
        let mut a = ExprArena::new();
        let x = a.var("X");
        let y = a.var("Y");
        let z = a.var("Z");
        let s = a.add(x, y);
        let m = a.mul(s, z);
        assert_eq!(a.display(m), "(X + Y) * Z");
        let m2 = a.matmul(x, y);
        let p = a.add(m2, z);
        assert_eq!(a.display(p), "X %*% Y + Z");
        let two = a.lit(2.0);
        let sq = a.pow(s, two);
        let agg = a.sum(sq);
        assert_eq!(a.display(agg), "sum((X + Y)^2)");
    }

    #[test]
    fn neg_zero_literal_normalized() {
        let mut a = ExprArena::new();
        assert_eq!(a.lit(0.0), a.lit(-0.0));
    }

    #[test]
    fn free_vars_in_first_occurrence_order() {
        let mut a = ExprArena::new();
        let u = a.var("U");
        let v = a.var("V");
        let m = a.matmul(u, v);
        let m2 = a.mul(m, u);
        assert_eq!(a.free_vars(m2), vec![Symbol::new("U"), Symbol::new("V")]);
    }
}
