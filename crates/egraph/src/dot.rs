//! GraphViz export of e-graphs, for debugging and documentation.
//!
//! Renders each e-class as a dashed cluster (as in Figure 7 of the paper)
//! with edges from operators to the clusters of their children.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::Language;

impl<L: Language, A: Analysis<L>> EGraph<L, A> {
    /// Render the e-graph in GraphViz dot format.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "digraph egraph {{").unwrap();
        writeln!(s, "  compound=true; clusterrank=local;").unwrap();
        for class in self.classes() {
            let id = self.find(class.id);
            writeln!(s, "  subgraph cluster_{id} {{").unwrap();
            writeln!(s, "    style=dashed; label=\"{id}\";").unwrap();
            for (i, node) in class.nodes.iter().enumerate() {
                let label = node.op_display().replace('"', "\\\"");
                writeln!(s, "    n_{id}_{i} [label=\"{label}\"];").unwrap();
            }
            writeln!(s, "  }}").unwrap();
        }
        for class in self.classes() {
            let id = self.find(class.id);
            for (i, node) in class.nodes.iter().enumerate() {
                for (arg, &child) in node.children().iter().enumerate() {
                    let child = self.find(child);
                    // point at the first node of the child cluster
                    writeln!(
                        s,
                        "  n_{id}_{i} -> n_{child}_0 [lhead=cluster_{child}, label=\"{arg}\"];"
                    )
                    .unwrap();
                }
            }
        }
        writeln!(s, "}}").unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::parse_rec_expr;
    use crate::language::test_lang::Arith;

    #[test]
    fn dot_contains_clusters_and_edges() {
        let mut eg: EGraph<Arith, ()> = EGraph::default();
        eg.add_expr(&parse_rec_expr("(* (+ x y) 2)").unwrap());
        eg.rebuild();
        let dot = eg.to_dot();
        assert!(dot.starts_with("digraph egraph {"));
        assert!(dot.contains("subgraph cluster_"));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
