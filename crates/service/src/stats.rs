//! Service counters and the request-latency histogram, backed by a
//! private `spores_telemetry::Registry`.
//!
//! The counters used to be loose `AtomicU64` fields and the histogram a
//! hand-rolled log2 array; both now live in one per-service metrics
//! registry so the same instruments drive the snapshot API *and* the
//! Prometheus-style text exposition
//! ([`crate::OptimizerService::metrics_text`]). The registry is owned
//! per [`ServiceStats`] (not the process-global one), so concurrent
//! services in one process never mix their counters.

use crate::cache::CacheInstruments;
use spores_telemetry::{Counter, Gauge, Log2Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Number of power-of-two latency buckets (µs) in [`LatencyHistogram`]
/// snapshots: bucket `k` counts requests with `latency_us` in
/// `[2^k, 2^(k+1))` (bucket 0 also takes sub-µs requests, the last
/// bucket everything beyond).
pub const LATENCY_BUCKETS: usize = 32;

/// Histogram over request latencies, log₂-spaced in microseconds — a
/// view over the registry's [`Log2Histogram`] that keeps the historical
/// 32-bucket snapshot shape (the underlying instrument spans all 64
/// power-of-two buckets; the text exposition renders those directly).
pub struct LatencyHistogram {
    inner: Arc<Log2Histogram>,
}

impl LatencyHistogram {
    pub fn record(&self, latency: Duration) {
        self.inner.record_duration(latency);
    }

    /// Bucket counts, index `k` covering `[2^k, 2^(k+1))` µs; counts
    /// beyond the last bucket's range fold into it.
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let full = self.inner.snapshot();
        let mut out = [0u64; LATENCY_BUCKETS];
        for (k, &c) in full.iter().enumerate() {
            out[k.min(LATENCY_BUCKETS - 1)] += c;
        }
        out
    }

    /// Explicit inclusive `(lower, upper)` µs bounds of snapshot bucket
    /// `k` — the semantics the text exposition's `le="..."` labels use.
    pub fn bucket_bounds_us(k: usize) -> (u64, u64) {
        assert!(k < LATENCY_BUCKETS);
        if k == LATENCY_BUCKETS - 1 {
            // the fold-in tail bucket is unbounded above
            (1u64 << k, u64::MAX)
        } else {
            Log2Histogram::bucket_bounds(k)
        }
    }

    /// Human-readable bound label for snapshot bucket `k`, e.g.
    /// `"512..1023us"`.
    pub fn bucket_label(k: usize) -> String {
        let (lo, hi) = Self::bucket_bounds_us(k);
        if hi == u64::MAX {
            format!("{lo}..+Infus")
        } else {
            format!("{lo}..{hi}us")
        }
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.inner.quantile(q)
    }
}

/// Live counters of an [`crate::OptimizerService`].
pub struct ServiceStats {
    registry: Registry,
    /// Requests served from the cache (template instantiated).
    pub hits: Arc<Counter>,
    /// Requests that ran the full pipeline.
    pub misses: Arc<Counter>,
    /// Requests that piggybacked on an identical in-flight optimization.
    pub coalesced: Arc<Counter>,
    /// Cache hits rejected by the cost re-check (the cached template
    /// priced worse than the caller's own plan at their sizes) and
    /// re-optimized from scratch.
    pub cost_rejections: Arc<Counter>,
    /// `try_optimize` submissions rejected because the bounded miss
    /// queue was full (explicit backpressure).
    pub rejections: Arc<Counter>,
    /// Blocking `optimize` calls that found the queue full and ran the
    /// pipeline inline on the caller's thread (caller-runs throttling).
    pub inline_runs: Arc<Counter>,
    /// Pipeline runs that panicked on a worker thread (the worker
    /// survived; every waiter got a typed `WorkerPanic` error).
    pub worker_panics: Arc<Counter>,
    /// Cache probes that found their shard's read lock contended
    /// (`try_read` would have blocked). A rising rate under a warm
    /// workload is the early-warning sign of the scaling collapse this
    /// instrument was added to catch.
    pub probe_contended: Arc<Counter>,
    /// Time spent blocked on a contended cache-shard lock, µs.
    pub shard_lock_wait: Arc<Log2Histogram>,
    /// Cache probes that found their shard poisoned and degraded to a
    /// miss instead of crashing.
    pub shard_poisoned: Arc<Counter>,
    /// End-to-end request latencies (hits and misses alike).
    pub latency: LatencyHistogram,
    /// Evictions live on the caches, not here; this gauge mirrors their
    /// sum into the exposition at render time.
    evictions: Arc<Gauge>,
    /// Jobs waiting in the bounded miss queue; mirrored from the worker
    /// pool at render/snapshot time like `evictions`.
    queue_depth: Arc<Gauge>,
}

impl Default for ServiceStats {
    fn default() -> Self {
        let registry = Registry::new();
        let hits = registry.counter("spores.service.hits");
        let misses = registry.counter("spores.service.misses");
        let coalesced = registry.counter("spores.service.coalesced");
        let cost_rejections = registry.counter("spores.service.cost_rejections");
        let rejections = registry.counter("spores.service.rejections");
        let inline_runs = registry.counter("spores.service.inline_runs");
        let worker_panics = registry.counter("spores.service.worker_panics");
        let probe_contended = registry.counter("spores.service.cache_probe_contended");
        let shard_lock_wait = registry.histogram("spores.service.shard_lock_wait_us");
        let shard_poisoned = registry.counter("spores.service.cache_shard_poisoned");
        let evictions = registry.gauge("spores.service.evictions");
        let queue_depth = registry.gauge("spores.service.queue_depth");
        let latency = LatencyHistogram {
            inner: registry.histogram("spores.service.latency_us"),
        };
        ServiceStats {
            registry,
            hits,
            misses,
            coalesced,
            cost_rejections,
            rejections,
            inline_runs,
            worker_panics,
            probe_contended,
            shard_lock_wait,
            shard_poisoned,
            latency,
            evictions,
            queue_depth,
        }
    }
}

impl ServiceStats {
    /// The instrument handles the sharded caches record into — same
    /// registry, so contention shows up in `metrics_text()`.
    pub fn cache_instruments(&self) -> CacheInstruments {
        CacheInstruments {
            contended: self.probe_contended.clone(),
            lock_wait_us: self.shard_lock_wait.clone(),
            poisoned: self.shard_poisoned.clone(),
        }
    }

    /// Point-in-time copy of the counters. Evictions live on the caches
    /// and queue depth on the worker pool, not here — both are filled in
    /// by the snapshot's caller ([`crate::OptimizerService::stats`]).
    pub fn snapshot(&self, evictions: u64, queue_depth: usize) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
            evictions,
            cost_rejections: self.cost_rejections.get(),
            rejections: self.rejections.get(),
            inline_runs: self.inline_runs.get(),
            worker_panics: self.worker_panics.get(),
            probe_contended: self.probe_contended.get(),
            shard_poisoned: self.shard_poisoned.get(),
            queue_depth: queue_depth as u64,
            latency_p50_us: self.latency.quantile_us(0.5),
            latency_p99_us: self.latency.quantile_us(0.99),
        }
    }

    /// Prometheus-style text exposition of every service metric:
    /// `spores_service_{hits,misses,coalesced,cost_rejections,evictions}`,
    /// the backpressure instruments (`spores_service_rejections`,
    /// `spores_service_inline_runs`, `spores_service_queue_depth`), the
    /// contention/robustness instruments
    /// (`spores_service_cache_probe_contended`,
    /// `spores_service_shard_lock_wait_us`,
    /// `spores_service_cache_shard_poisoned`,
    /// `spores_service_worker_panics`) plus the
    /// `spores_service_latency_us` histogram with explicit `le="<µs>"`
    /// bucket bounds (the same log2 bounds
    /// [`LatencyHistogram::bucket_bounds_us`] documents).
    pub fn render_text(&self, evictions: u64, queue_depth: usize) -> String {
        self.evictions.set(evictions as i64);
        self.queue_depth.set(queue_depth as i64);
        self.registry.render_text()
    }
}

/// Plain-value view of [`ServiceStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
    pub cost_rejections: u64,
    /// Backpressure rejections issued by `try_optimize`.
    pub rejections: u64,
    /// Blocking `optimize` calls that ran the pipeline inline on a full
    /// queue.
    pub inline_runs: u64,
    /// Pipeline panics contained on worker threads.
    pub worker_panics: u64,
    /// Cache probes that found their shard's lock contended.
    pub probe_contended: u64,
    /// Cache probes degraded to a miss by a poisoned shard.
    pub shard_poisoned: u64,
    /// Bounded miss-queue depth at snapshot time.
    pub queue_depth: u64,
    pub latency_p50_us: u64,
    pub latency_p99_us: u64,
}

impl StatsSnapshot {
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of requests that avoided the full pipeline.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_us() {
        let s = ServiceStats::default();
        let h = &s.latency;
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap[0], 1); // [1, 2) µs
        assert_eq!(snap[1], 1); // [2, 4) µs
        assert_eq!(snap[9], 1); // [512, 1024) µs
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_are_monotone() {
        let s = ServiceStats::default();
        let h = &s.latency;
        for us in [1u64, 2, 4, 8, 16, 500, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert!(h.quantile_us(0.5) <= h.quantile_us(0.99));
        assert!(h.quantile_us(0.99) >= 100_000);
    }

    #[test]
    fn bucket_bounds_match_snapshot_semantics() {
        assert_eq!(LatencyHistogram::bucket_bounds_us(0), (0, 1));
        assert_eq!(LatencyHistogram::bucket_bounds_us(9), (512, 1023));
        assert_eq!(
            LatencyHistogram::bucket_bounds_us(LATENCY_BUCKETS - 1),
            (1 << (LATENCY_BUCKETS - 1), u64::MAX),
            "the tail bucket absorbs everything beyond"
        );
        assert_eq!(LatencyHistogram::bucket_label(9), "512..1023us");
        // A sample beyond the 32-bucket range folds into the tail bucket
        // of the snapshot view.
        let s = ServiceStats::default();
        s.latency.record(Duration::from_secs(1 << 40));
        assert_eq!(s.latency.snapshot()[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn hit_rate() {
        let s = ServiceStats::default();
        s.hits.add(3);
        s.misses.add(1);
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.requests(), 4);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_text_exposes_all_counters_with_labeled_buckets() {
        let s = ServiceStats::default();
        s.hits.add(5);
        s.misses.add(2);
        s.coalesced.add(1);
        s.cost_rejections.add(1);
        s.rejections.add(4);
        s.inline_runs.add(2);
        s.worker_panics.add(1);
        s.probe_contended.add(3);
        s.shard_poisoned.add(1);
        s.latency.record(Duration::from_micros(700));
        let text = s.render_text(9, 6);
        for line in [
            "spores_service_hits 5",
            "spores_service_misses 2",
            "spores_service_coalesced 1",
            "spores_service_cost_rejections 1",
            "spores_service_rejections 4",
            "spores_service_inline_runs 2",
            "spores_service_worker_panics 1",
            "spores_service_cache_probe_contended 3",
            "spores_service_cache_shard_poisoned 1",
            "spores_service_queue_depth 6",
            "spores_service_evictions 9",
            "spores_service_latency_us_bucket{le=\"1023\"} 1",
            "spores_service_latency_us_bucket{le=\"+Inf\"} 1",
            "spores_service_latency_us_count 1",
        ] {
            assert!(text.contains(line), "missing '{line}' in:\n{text}");
        }
    }

    #[test]
    fn stats_registries_are_isolated_per_service() {
        let a = ServiceStats::default();
        let b = ServiceStats::default();
        a.hits.add(7);
        assert_eq!(b.snapshot(0, 0).hits, 0);
        assert!(b.render_text(0, 0).contains("spores_service_hits 0"));
    }
}
