//! The five evaluation workloads of §4.2: ALS, GLM, SVM, MLR, PNMF.
//!
//! Each workload is a small iterative ML program written as a sequence of
//! DML-like assignment statements over synthetic data (the paper uses
//! SystemML's algorithm-specific generators; `spores_matrix::gen` is our
//! equivalent). The statements carry exactly the inner-loop expressions
//! the paper's analysis discusses:
//!
//! * **ALS** — `(U %*% t(V) - X) %*% V`, which SPORES expands to
//!   `U Vᵀ V − X V` to exploit X's sparsity (up to 5× in the paper);
//! * **PNMF** — `sum(W %*% H)` shared with `sum(X * log(W %*% H))`, where
//!   SystemML's CSE-preservation heuristics block the rewrite (3×);
//! * **MLR** — `P*X − P*rowSums(P)*X`, which factors to `sprop(P)*X`;
//! * **GLM/SVM** — inner loops whose gains come from fusion, where
//!   SPORES finds the same plans SystemML does.

use spores_ir::{ExprArena, NodeId, Shape, Symbol};
use spores_matrix::{gen, Matrix};
use std::collections::HashMap;

/// One assignment `target = expr;` of the per-iteration program.
#[derive(Clone, Debug)]
pub struct Statement {
    pub target: Symbol,
    pub src: String,
}

impl Statement {
    fn new(target: &str, src: impl Into<String>) -> Statement {
        Statement {
            target: Symbol::new(target),
            src: src.into(),
        }
    }
}

/// A workload: initial data + per-iteration statements.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    /// Human-readable data size, e.g. `"2Kx1K"`.
    pub size_label: String,
    pub statements: Vec<Statement>,
    pub inputs: HashMap<Symbol, Matrix>,
    pub iterations: usize,
}

impl Workload {
    /// Shape + sparsity of every input variable.
    pub fn input_meta(&self) -> HashMap<Symbol, (Shape, f64)> {
        self.inputs
            .iter()
            .map(|(&s, m)| {
                (
                    s,
                    (Shape::new(m.rows() as u64, m.cols() as u64), m.sparsity()),
                )
            })
            .collect()
    }

    /// Parse all statements into one arena; returns (arena, roots).
    pub fn parse(&self) -> (ExprArena, Vec<(Symbol, NodeId)>) {
        let mut arena = ExprArena::new();
        let roots = self
            .statements
            .iter()
            .map(|st| {
                let root = spores_ir::parse_expr(&mut arena, &st.src)
                    .unwrap_or_else(|e| panic!("{}: {} — {e}", self.name, st.src));
                (st.target, root)
            })
            .collect();
        (arena, roots)
    }
}

fn label(rows: usize, cols: usize) -> String {
    fn fmt(n: usize) -> String {
        if n >= 1_000_000 {
            format!("{}M", n / 1_000_000)
        } else if n >= 1_000 {
            format!("{}K", n / 1_000)
        } else {
            n.to_string()
        }
    }
    format!("{}x{}", fmt(rows), fmt(cols))
}

/// Alternating least squares (rank-`rank` factorization of sparse X).
pub fn als(rows: usize, cols: usize, rank: usize, seed: u64) -> Workload {
    let mut r = gen::rng(seed);
    let x = gen::rand_sparse(rows, cols, 0.01, 1.0, 5.0, &mut r);
    let u = gen::rand_dense(rows, rank, 0.0, 1.0, &mut r);
    let v = gen::rand_dense(cols, rank, 0.0, 1.0, &mut r);
    Workload {
        name: "ALS",
        size_label: label(rows, cols),
        statements: vec![
            // the §4.2 expression: SPORES expands (U Vᵀ − X) V
            Statement::new("GU", "(U %*% t(V) - X) %*% V"),
            Statement::new("U", "U - 0.0001 * GU"),
            Statement::new("GV", "t(t(U) %*% (U %*% t(V) - X))"),
            Statement::new("V", "V - 0.0001 * GV"),
            // tracked training loss — the §1 headline expression
            Statement::new("loss", "sum((X - U %*% t(V))^2)"),
        ],
        inputs: HashMap::from([
            (Symbol::new("X"), x),
            (Symbol::new("U"), u),
            (Symbol::new("V"), v),
        ]),
        iterations: 3,
    }
}

/// Generalized linear model (logistic link), gradient descent.
pub fn glm(rows: usize, cols: usize, seed: u64) -> Workload {
    let mut r = gen::rng(seed);
    let x = gen::rand_sparse(rows, cols, 0.01, -1.0, 1.0, &mut r);
    let y = gen::rand_labels(rows, &mut r);
    let w = gen::rand_dense(cols, 1, -0.1, 0.1, &mut r);
    Workload {
        name: "GLM",
        size_label: label(rows, cols),
        statements: vec![
            Statement::new("P", "1 / (1 + exp(-(X %*% w)))"),
            Statement::new("G", "t(X) %*% (P - y) + 0.01 * w"),
            Statement::new("w", "w - 0.1 * G"),
            Statement::new("obj", "sum((P - y)^2) + 0.01 * sum(w^2)"),
        ],
        inputs: HashMap::from([
            (Symbol::new("X"), x),
            (Symbol::new("y"), y),
            (Symbol::new("w"), w),
        ]),
        iterations: 3,
    }
}

/// L2-regularized support vector machine, (sub)gradient descent.
pub fn svm(rows: usize, cols: usize, seed: u64) -> Workload {
    let mut r = gen::rng(seed);
    let x = gen::rand_sparse(rows, cols, 0.01, -1.0, 1.0, &mut r);
    let y = gen::rand_sign_labels(rows, &mut r);
    let w = gen::rand_dense(cols, 1, -0.1, 0.1, &mut r);
    Workload {
        name: "SVM",
        size_label: label(rows, cols),
        statements: vec![
            Statement::new("out", "1 - y * (X %*% w)"),
            Statement::new("sv", "out > 0"),
            Statement::new("G", "0.01 * w - t(X) %*% (sv * out * y)"),
            Statement::new("w", "w - 0.1 * G"),
            Statement::new("obj", "0.5 * sum((sv * out)^2) + 0.01 * sum(w^2)"),
        ],
        inputs: HashMap::from([
            (Symbol::new("X"), x),
            (Symbol::new("y"), y),
            (Symbol::new("w"), w),
        ]),
        iterations: 3,
    }
}

/// Multinomial (here: binary) logistic regression with the paper's
/// `P*X − P*rowSums(P)*X` inner-loop shape.
pub fn mlr(rows: usize, cols: usize, seed: u64) -> Workload {
    let mut r = gen::rng(seed);
    let x = gen::rand_sparse(rows, cols, 0.01, -1.0, 1.0, &mut r);
    let y = gen::rand_labels(rows, &mut r);
    let w = gen::rand_dense(cols, 1, -0.1, 0.1, &mut r);
    Workload {
        name: "MLR",
        size_label: label(rows, cols),
        statements: vec![
            Statement::new("P", "1 / (1 + exp(-(X %*% w)))"),
            // §4.2: factors to sprop(P) * X = (P * (1 - P)) * X
            Statement::new("D", "P * X - P * rowSums(P) * X"),
            Statement::new("G", "t(colSums(D)) + 0.01 * w"),
            Statement::new("w", "w - 0.1 * G"),
            Statement::new("obj", "sum((P - y)^2)"),
        ],
        inputs: HashMap::from([
            (Symbol::new("X"), x),
            (Symbol::new("y"), y),
            (Symbol::new("w"), w),
        ]),
        iterations: 3,
    }
}

/// Poisson non-negative matrix factorization.
pub fn pnmf(rows: usize, cols: usize, rank: usize, seed: u64) -> Workload {
    let mut r = gen::rng(seed);
    let x = gen::rand_counts(rows, cols, 0.01, 9, &mut r);
    let w = gen::rand_dense(rows, rank, 0.1, 1.0, &mut r);
    let h = gen::rand_dense(rank, cols, 0.1, 1.0, &mut r);
    Workload {
        name: "PNMF",
        size_label: label(rows, cols),
        statements: vec![
            // multiplicative updates
            Statement::new("H", "H * (t(W) %*% (X / (W %*% H))) / t(colSums(W))"),
            Statement::new("W", "W * ((X / (W %*% H)) %*% t(H)) / t(rowSums(H))"),
            // §4.2: the objective shares W %*% H between both sums;
            // SystemML's CSE guard blocks its own sum(WH) rewrite here
            Statement::new("obj", "sum(W %*% H) - sum(X * log(W %*% H))"),
        ],
        inputs: HashMap::from([
            (Symbol::new("X"), x),
            (Symbol::new("W"), w),
            (Symbol::new("H"), h),
        ]),
        iterations: 3,
    }
}

/// The Figure 15/17 size ladders, scaled down ~100× from the paper's
/// cluster sizes so a laptop regenerates the tables in minutes
/// (documented in EXPERIMENTS.md).
pub fn figure15_suite(scale: Scale) -> Vec<Workload> {
    let s = scale.factor();
    vec![
        als(2_000 * s / 10, 1_000, 10, 101),
        glm(1_000 * s, 100, 102),
        svm(1_000 * s, 100, 103),
        mlr(2_000 * s, 20, 104),
        pnmf(100 * s, 1_000, 10, 105),
    ]
}

/// Data-size rungs for the run-time figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Medium,
    Large,
}

impl Scale {
    pub fn factor(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Medium => 10,
            Scale::Large => 100,
        }
    }

    pub fn all() -> [Scale; 3] {
        [Scale::Small, Scale::Medium, Scale::Large]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_parse_and_shape_check() {
        for w in [
            als(100, 50, 5, 1),
            glm(100, 20, 2),
            svm(100, 20, 3),
            mlr(100, 10, 4),
            pnmf(60, 50, 4, 5),
        ] {
            let (arena, roots) = w.parse();
            // every statement must shape-check against the accumulated env
            let mut env: spores_ir::ShapeEnv = w
                .input_meta()
                .into_iter()
                .map(|(s, (sh, _))| (s, sh))
                .collect();
            for (target, root) in roots {
                let shape = arena
                    .shape_of(root, &env)
                    .unwrap_or_else(|e| panic!("{} / {target}: {e}", w.name));
                env.insert(target, shape);
            }
        }
    }

    #[test]
    fn size_labels() {
        assert_eq!(als(2_000, 1_000, 10, 1).size_label, "2Kx1K");
        assert_eq!(pnmf(1_000_000, 1_000, 10, 1).size_label, "1Mx1K");
    }

    #[test]
    fn suite_has_five_workloads() {
        let suite = figure15_suite(Scale::Small);
        let names: Vec<_> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["ALS", "GLM", "SVM", "MLR", "PNMF"]);
    }
}
