//! Worker-panic containment: a panicking pipeline run must surface a
//! typed [`ServiceError::WorkerPanic`] to every waiter (submitter and
//! coalescers alike), drain its inflight entry, leave the worker thread
//! alive, and leave the service fully usable — no leaked senders, no
//! permanently wedged fingerprint.

use spores_core::{OptimizerConfig, VarMeta};
use spores_ir::{parse_expr, ExprArena, Symbol};
use spores_service::{
    OptimizerService, PlanSource, Request, ServiceConfig, ServiceError, TryOptimize,
};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

fn vars(list: &[(&str, (u64, u64), f64)]) -> HashMap<Symbol, VarMeta> {
    list.iter()
        .map(|&(n, (r, c), s)| (Symbol::new(n), VarMeta::sparse(r, c, s)))
        .collect()
}

fn request(src: &str, vs: &HashMap<Symbol, VarMeta>) -> Request {
    let mut arena = ExprArena::new();
    let root = parse_expr(&mut arena, src).unwrap();
    Request::new(arena, root, vs.clone())
}

fn als_request(rows: u64) -> Request {
    request(
        "sum((X - u %*% t(v))^2)",
        &vars(&[
            ("X", (rows, 500), 0.001),
            ("u", (rows, 1), 1.0),
            ("v", (500, 1), 1.0),
        ]),
    )
}

fn service(workers: usize) -> OptimizerService {
    OptimizerService::new(ServiceConfig {
        optimizer: OptimizerConfig {
            node_limit: 4_000,
            iter_limit: 8,
            ..OptimizerConfig::default()
        },
        workers,
        ..ServiceConfig::default()
    })
}

#[test]
fn blocking_caller_gets_a_typed_error_when_its_worker_panics() {
    let svc = service(1);
    svc.inject_pipeline_panics(1);
    let err = svc.optimize(als_request(1000)).unwrap_err();
    assert!(
        matches!(err, ServiceError::WorkerPanic(_)),
        "expected WorkerPanic, got {err:?}"
    );
    assert_eq!(svc.stats().worker_panics, 1);

    // the fingerprint is not wedged and the (sole) worker survived: an
    // immediate retry of the same shape runs a fresh flight and succeeds
    let served = svc.optimize(als_request(1000)).expect("retry after panic");
    assert_eq!(served.source, PlanSource::Miss);
    // and the cache works again from here on
    assert_eq!(
        svc.optimize(als_request(1000)).unwrap().source,
        PlanSource::Hit
    );
}

#[test]
fn coalesced_waiters_are_drained_with_a_typed_error() {
    let svc = Arc::new(service(1));
    // enough injections that both requests fail even if they race into
    // two sequential flights instead of coalescing onto one
    svc.inject_pipeline_panics(2);

    let barrier = Arc::new(Barrier::new(2));
    let blocking = {
        let svc = svc.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            barrier.wait();
            svc.optimize(als_request(2000))
        })
    };
    barrier.wait();
    // same fingerprint through the non-blocking door: either we coalesce
    // onto the blocking caller's flight or lead our own — both must end
    // in a typed WorkerPanic, never a hang on a leaked sender
    let mine = match svc.try_optimize(als_request(2000)) {
        Ok(TryOptimize::Ready(_)) => panic!("cold request cannot be a hit"),
        Ok(TryOptimize::Pending(ticket)) => ticket.wait(),
        Err(e) => Err(e),
    };
    let theirs = blocking.join().expect("blocking thread");

    svc.inject_pipeline_panics(0); // clear any unconsumed injection
    for (who, result) in [("ticket", mine), ("blocking", theirs)] {
        let err = result.unwrap_err();
        assert!(
            matches!(err, ServiceError::WorkerPanic(_)),
            "{who}: expected WorkerPanic, got {err:?}"
        );
    }
    assert!(svc.stats().worker_panics >= 1);

    // the inflight entry was removed: the same shape optimizes cleanly
    let served = svc.optimize(als_request(2000)).expect("post-panic flight");
    assert_eq!(served.source, PlanSource::Miss);
}

#[test]
fn panics_do_not_poison_unrelated_requests() {
    let svc = service(2);
    svc.inject_pipeline_panics(1);
    let err = svc.optimize(als_request(3000)).unwrap_err();
    assert!(matches!(err, ServiceError::WorkerPanic(_)));
    // a different shape flows through the same pool untouched
    let other = request(
        "sum(W %*% H)",
        &vars(&[("W", (400, 8), 1.0), ("H", (8, 300), 1.0)]),
    );
    assert_eq!(
        svc.optimize(other).expect("unrelated request").source,
        PlanSource::Miss
    );
    let stats = svc.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.misses, 1);
}
