//! Negative suite: deliberately broken rules must be rejected with
//! typed diagnostics, and the shipped ruleset must audit clean.

use spores_core::rules::{self, MathRewrite};
use spores_egraph::{PatternSide, Rewrite, RewriteError, Var};
use spores_ruleaudit::{audit, audit_with_policy, AuditPolicy, Structure, Verification, Violation};

fn rule(name: &str, lhs: &str, rhs: &str) -> MathRewrite {
    Rewrite::new(name, lhs, rhs).unwrap_or_else(|e| panic!("{e}"))
}

// ------------------------------------------------------------------
// construction-time rejections (pass 1, enforced by Rewrite::new)
// ------------------------------------------------------------------

#[test]
fn unbound_rhs_var_is_a_typed_error() {
    let r: Result<MathRewrite, _> = Rewrite::new("bad-unbound", "(+ ?a ?b)", "(+ ?a ?c)");
    let err = r.unwrap_err();
    assert_eq!(
        err,
        RewriteError::UnboundVar {
            rule: "bad-unbound".to_owned(),
            var: Var::new("c"),
        }
    );
    assert!(err.to_string().contains("?c"), "{err}");
}

#[test]
fn malformed_pattern_is_a_typed_parse_error() {
    let r: Result<MathRewrite, _> = Rewrite::new("bad-parse", "(+ ?a ?b)", "(+ ?a");
    let err = r.unwrap_err();
    match err {
        RewriteError::Parse { rule, side, .. } => {
            assert_eq!(rule, "bad-parse");
            assert_eq!(side, PatternSide::Rhs);
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn duplicate_rule_names_are_an_audit_violation() {
    let rules = vec![
        rule("same-name", "(+ ?a ?b)", "(+ ?b ?a)"),
        rule("same-name", "(* ?a ?b)", "(* ?b ?a)"),
    ];
    let report = audit(&rules);
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::Rewrite(RewriteError::DuplicateName { name }) if name == "same-name"
    )));
}

// ------------------------------------------------------------------
// linearity (pass 1)
// ------------------------------------------------------------------

#[test]
fn undeclared_nonlinear_lhs_is_flagged() {
    let rules = vec![rule("sq", "(* ?x ?x)", "(pow ?x 2)")];
    let report = audit(&rules);
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::UndeclaredNonlinear { rule, var }
            if rule == "sq" && *var == Var::new("x")
    )));

    // the same rule with the declaration audits clean
    let declared = vec![rule("sq", "(* ?x ?x)", "(pow ?x 2)").with_nonlinear_lhs()];
    assert!(audit(&declared).clean());
}

// ------------------------------------------------------------------
// schema typing (pass 2)
// ------------------------------------------------------------------

#[test]
fn schema_widening_rhs_needs_declared_conditions() {
    // Dropping a Σ without knowing ?i ∉ Attr(?a), ?i ∉ Attr(?b)
    // widens the schema. Legal only with declared conditions.
    let rules = vec![rule("drop-agg", "(sum ?i (* ?a ?b))", "(* ?a ?b)")];
    let report = audit(&rules);
    let missing = report.violations.iter().find_map(|v| match v {
        Violation::UndeclaredCondition { rule, missing } if rule == "drop-agg" => Some(missing),
        _ => None,
    });
    let missing = missing.expect("drop-agg must report undeclared conditions");
    assert_eq!(missing.len(), 2, "needs ?i ∉ ?a and ?i ∉ ?b: {missing:?}");
}

#[test]
fn sigma_bound_index_escaping_its_binder_is_a_mismatch() {
    // The rhs mentions bound index ?i outside any Σ — no hypothesis in
    // the schema vocabulary can repair that.
    let rules = vec![rule("escape", "(sum ?i (b ?i ?j ?x))", "(b ?i ?j ?x)")];
    let report = audit(&rules);
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::SchemaMismatch { rule, .. } if rule == "escape"
    )));
}

#[test]
fn dropping_a_value_without_iszero_is_flagged() {
    // `(+ ?a ?b) → ?a` deletes ?b: sound only when ?b is declared zero
    // (and its schema absorbed). The shipped add-zero-rel declares both.
    let rules = vec![rule("eat-term", "(+ ?a ?b)", "?a")];
    let report = audit(&rules);
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::UndeclaredDrop { rule, var }
            if rule == "eat-term" && *var == Var::new("b")
    )));
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::UndeclaredCondition { rule, .. } if rule == "eat-term"
    )));
}

#[test]
fn index_value_role_conflict_is_flagged() {
    let rules = vec![rule("confused", "(sum ?i ?i)", "(sum ?i ?i)")];
    let report = audit(&rules);
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::RoleConflict { rule, var }
            if rule == "confused" && *var == Var::new("i")
    )));
}

// ------------------------------------------------------------------
// semiring requirements (pass 3)
// ------------------------------------------------------------------

#[test]
fn ring_only_rule_rejected_under_semiring_policy() {
    // x + (−1)·x = 0·x needs additive inverses: a ring axiom. Under a
    // commutative-semiring policy cap (e.g. certifying for min-plus)
    // the audit must reject it.
    let rules = vec![rule("cancel", "(+ ?x (* -1 ?x))", "(* 0 ?x)").with_nonlinear_lhs()];
    let permissive = audit(&rules);
    assert!(permissive.clean(), "{:?}", permissive.violations);
    let req = permissive.rules[0].semiring.expect("inferred");
    assert_eq!(req.structure, Structure::Ring);
    assert_eq!(req.verified, Verification::Algebraic);

    let capped = audit_with_policy(
        &rules,
        &AuditPolicy {
            max_structure: Some(Structure::CommutativeSemiring),
        },
    );
    assert!(capped.violations.iter().any(|v| matches!(
        v,
        Violation::StructureExceedsPolicy { rule, required, max }
            if rule == "cancel"
                && *required == Structure::Ring
                && *max == Structure::CommutativeSemiring
    )));
}

#[test]
fn idempotent_only_rule_is_tagged_idempotent() {
    // x ⊕ x = x holds in min-plus / bool-or but not in ℝ: the table
    // must carry the idempotent-⊕ tag so semiring-generic workloads can
    // filter on it.
    let rules = vec![rule("idem-add", "(+ ?x ?x)", "?x").with_nonlinear_lhs()];
    let report = audit(&rules);
    assert!(report.clean(), "{:?}", report.violations);
    let req = report.rules[0].semiring.expect("inferred");
    assert_eq!(req.structure, Structure::Semiring);
    assert!(req.idempotent_add);
    assert_eq!(req.verified, Verification::Algebraic);
}

// ------------------------------------------------------------------
// golden: the shipped ruleset
// ------------------------------------------------------------------

#[test]
fn shipped_complete_ruleset_audits_clean() {
    let rules = rules::complete();
    let report = audit(&rules);
    assert!(
        report.clean(),
        "shipped ruleset has violations: {:#?}",
        report.violations
    );
    assert!(
        report.warnings.is_empty(),
        "shipped ruleset has warnings: {:#?}",
        report.warnings
    );
}

#[test]
fn semiring_snapshot_covers_every_rule() {
    let rules = rules::complete();
    let report = audit(&rules);
    for r in &report.rules {
        assert!(
            r.semiring.is_some(),
            "rule {} missing from the semiring table",
            r.name
        );
        assert_ne!(
            r.semiring.unwrap().verified,
            Verification::Unverified,
            "rule {} is unverified",
            r.name
        );
    }
    let table = report.semiring_table_json();
    for r in &rules {
        assert!(
            table.contains(&format!("\"rule\": \"{}\"", r.name)),
            "snapshot missing {}",
            r.name
        );
    }
}

#[test]
fn committed_snapshot_matches_inferred_table() {
    let committed = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/SEMIRING.json"))
        .expect("crates/ruleaudit/SEMIRING.json must be committed");
    let actual = audit(&rules::complete()).semiring_table_json();
    assert_eq!(
        committed, actual,
        "semiring table drifted; regenerate with \
         `cargo run -p spores-ruleaudit --bin rule_audit -- --write-semiring crates/ruleaudit/SEMIRING.json`"
    );
}
