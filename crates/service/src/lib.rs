//! The SPORES optimizer as a *service*: a thread-safe front-end that
//! memoizes optimization results behind shape-polymorphic plan
//! fingerprints.
//!
//! The paper's pipeline (§4.3) pays translate → saturate → extract →
//! lower on every statement, but production workloads — SystemML scripts
//! looping over epochs, model-serving fleets compiling the same script
//! per request — re-optimize the *same algebraic shapes* with only leaf
//! dimensions and sparsities drifting. This crate adds the serving layer:
//!
//! * [`OptimizerService`] — worker pool + single-flight coalescing +
//!   sharded LRU plan cache; hits skip saturation entirely and are
//!   re-checked against the cost model so they are never worse than the
//!   caller's own plan.
//! * [`ShardedCache`]/[`CachedPlan`] — the cache: canonical fingerprint →
//!   plan template (α-renamed leaves), with size-polymorphic templates
//!   reusable at any dimensions of the same shape classes and size-pinned
//!   templates keyed by exact shapes.
//! * [`ServiceStats`] — hits/misses/coalesces/evictions/cost-rejections
//!   plus a log₂ latency histogram.

pub mod cache;
pub mod service;
pub mod stats;
pub mod workload;

pub use cache::{CacheEntry, CachedPlan, PlanTemplate, ShardedCache};
pub use service::{OptimizerService, PlanSource, Request, Served, ServiceConfig, ServiceError};
pub use stats::{LatencyHistogram, ServiceStats, StatsSnapshot};
pub use workload::{CachedWorkloadPlan, ServedWorkload, WorkloadRequest};
