//! Workload-mode benchmarks: ONE shared-e-graph saturation for a whole
//! workload vs. N independent per-statement saturations, on the §4.2
//! evaluation workloads.
//!
//! Modes:
//!
//! * plain `cargo bench --bench workload` — criterion wall-time benches
//!   (shared one-pass vs per-statement compile) per workload;
//! * `-- --smoke` — one pass per workload comparing wall time and
//!   `candidates_visited` (total rule-matching work), asserting the
//!   acceptance bars: the one-pass saturation does less total matching
//!   work than the per-statement sum on ≥ 4 of the 5 workloads
//!   (including GLM and PNMF specifically) AND its wall time is within
//!   1.1× of the per-statement sum on ≥ 4 of the 5; SVM is the
//!   documented holdout for both (see `smoke`); run by CI;
//! * `-- --snapshot` / `--snapshot-only` — additionally rewrite the
//!   committed `BENCH_workload.json`, including an ALS thread-scaling
//!   table (one-pass wall time at 1/2/4/8 search threads) and the
//!   `host_cores` it was measured on (a 1-core host's scaling rows only
//!   measure fan-out overhead — record that instead of presenting it as
//!   scaling data);
//! * `-- --threads N` — run any of the above with N search threads
//!   instead of the `SPORES_THREADS`/host default.
//!
//! `--smoke` additionally guards the telemetry layer: an ALS one-pass
//! with collection enabled must stay within 10% of the disabled run,
//! and the estimated cost of the disabled hooks themselves within 2%,
//! plus a thread-scaling assertion that is skipped (with a logged
//! reason) on single-core hosts.

use criterion::{criterion_group, Criterion};
use spores_core::{Optimizer, SaturationStats, WorkloadOptimized};
use spores_egraph::ParallelConfig;
use spores_ml::workloads::{self, Workload};
use spores_ml::{workload_bundle, workload_optimizer_config, WorkloadBundle};
use std::hint::black_box;
use std::time::Instant;

/// Slack on the wall-time acceptance bar: one-pass must stay within
/// this factor of the per-statement sum (per winning workload).
const WALL_SLACK: f64 = 1.1;

/// Telemetry acceptance: an ALS one-pass with collection enabled must
/// stay within this factor of the disabled run's wall time.
const TELEMETRY_ON_SLACK: f64 = 1.10;

/// Telemetry acceptance: the *disabled* hooks (one relaxed atomic load
/// each) must cost at most this fraction of the off wall time,
/// estimated as micro-benchmarked per-hook cost × recorded event volume.
const TELEMETRY_OFF_BUDGET: f64 = 0.02;

/// Thread-scaling acceptance: on a multi-core host the parallel search
/// fan-out must not make the ALS one-pass slower than serial beyond
/// this factor (scaling *wins* vary with load; pathological slowdowns
/// are what this guards).
const SCALING_SLACK: f64 = 1.25;

/// Physical parallelism actually available to this process.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The benchmark roster: all five §4.2 workloads at bench-scale sizes.
fn roster() -> Vec<Workload> {
    vec![
        workloads::als(200, 100, 8, 51),
        workloads::glm(200, 40, 52),
        workloads::svm(200, 40, 53),
        workloads::mlr(200, 20, 54),
        workloads::pnmf(150, 120, 8, 55),
    ]
}

fn optimizer(parallel: ParallelConfig) -> Optimizer {
    let mut cfg = workload_optimizer_config();
    cfg.parallel = parallel;
    Optimizer::new(cfg)
}

/// One shared-e-graph pass over the whole bundle.
fn run_shared(bundle: &WorkloadBundle, parallel: ParallelConfig) -> WorkloadOptimized {
    optimizer(parallel)
        .optimize_workload(&bundle.expr, &bundle.vars)
        .expect("workload optimizes")
}

/// N independent per-statement passes; returns the summed stats.
fn run_per_statement(bundle: &WorkloadBundle, parallel: ParallelConfig) -> SaturationStats {
    let mut total = SaturationStats {
        iterations: 0,
        e_nodes: 0,
        e_classes: 0,
        converged: true,
        stop_reason: None,
        candidates_visited: 0,
        matches_found: 0,
        region_frozen_iters: 0,
    };
    for ix in 0..bundle.expr.len() {
        let single = bundle.expr.single_statement(ix);
        let got = optimizer(parallel)
            .optimize_workload(&single, &bundle.vars)
            .expect("statement optimizes");
        total.iterations += got.saturation.iterations;
        total.e_nodes += got.saturation.e_nodes;
        total.e_classes += got.saturation.e_classes;
        total.converged &= got.saturation.converged;
        total.candidates_visited += got.saturation.candidates_visited;
        total.matches_found += got.saturation.matches_found;
    }
    total
}

fn bench_shared_vs_per_statement(c: &mut Criterion) {
    let parallel = ParallelConfig::default();
    for w in roster() {
        let bundle = workload_bundle(&w);
        let mut group = c.benchmark_group(&format!("workload/{}", w.name.to_lowercase()));
        group.sample_size(10);
        group.bench_function("one_pass", |b| {
            b.iter(|| black_box(run_shared(&bundle, parallel)));
        });
        group.bench_function("per_statement", |b| {
            b.iter(|| black_box(run_per_statement(&bundle, parallel)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_shared_vs_per_statement);

struct SmokeRow {
    name: &'static str,
    statements: usize,
    shared_ns: u64,
    per_statement_ns: u64,
    shared_candidates: usize,
    per_statement_candidates: usize,
    shared_cost: f64,
}

/// Best-of-two wall time for `f` (damps one-off scheduler noise; the
/// saturations themselves are deterministic, so only the clock varies).
fn min_of_two<T>(mut f: impl FnMut() -> T) -> (u64, T) {
    let t0 = Instant::now();
    let out = f();
    let first = t0.elapsed().as_nanos() as u64;
    let t0 = Instant::now();
    black_box(f());
    let second = t0.elapsed().as_nanos() as u64;
    (first.min(second), out)
}

fn smoke_rows(parallel: ParallelConfig) -> Vec<SmokeRow> {
    roster()
        .into_iter()
        .map(|w| {
            let bundle = workload_bundle(&w);
            let (shared_ns, shared) = min_of_two(|| run_shared(&bundle, parallel));
            let (per_statement_ns, per) = min_of_two(|| run_per_statement(&bundle, parallel));
            assert!(!shared.fell_back, "{}: workload mode fell back", w.name);
            SmokeRow {
                name: w.name,
                statements: bundle.expr.len(),
                shared_ns,
                per_statement_ns,
                shared_candidates: shared.saturation.candidates_visited,
                per_statement_candidates: per.candidates_visited,
                shared_cost: shared.cost_after,
            }
        })
        .collect()
}

fn smoke(parallel: ParallelConfig) {
    let rows = smoke_rows(parallel);
    let mut fewer_candidates = 0usize;
    let mut wall_ok = 0usize;
    let mut winners = Vec::new();
    for row in &rows {
        let wins = row.shared_candidates < row.per_statement_candidates;
        let wall_wins = (row.shared_ns as f64) <= (row.per_statement_ns as f64) * WALL_SLACK;
        fewer_candidates += usize::from(wins);
        wall_ok += usize::from(wall_wins);
        if wins {
            winners.push(row.name);
        }
        println!(
            "workload smoke {:>5}: {} statements  one-pass {:>11} ns / {:>7} candidates  per-statement {:>11} ns / {:>7} candidates  {}{}",
            row.name,
            row.statements,
            row.shared_ns,
            row.shared_candidates,
            row.per_statement_ns,
            row.per_statement_candidates,
            if wins { "one-pass does less matching" } else { "-" },
            if wall_wins { "" } else { "  [wall-time holdout]" },
        );
    }
    // Acceptance (dirty-class delta search + per-region convergence
    // freezing): one-pass must beat the per-statement candidate sum on
    // ≥ 4 of 5 workloads, and specifically on GLM and PNMF — the two
    // the PR-3 shared-cap workload mode lost.
    //
    // Documented holdout — SVM, which this PR flips from a narrow win
    // (4,437 vs 5,008 under the PR-3 pooled cap) to a narrow loss
    // (~5.6k vs ~4.8k). The cause is the per-region budget itself: the
    // pooled cap spread 40×N applications across whatever was hot,
    // starving SVM's five nearly-disjoint statements just enough that
    // the union run stalled (and stopped) early; per-region budgets
    // give every live statement the per-statement application rate, so
    // the union run now explores as deeply as the five solo runs
    // combined — but SVM is the smallest §4.2 workload, its
    // per-statement runs converge within a handful of iterations each,
    // and its statements share little beyond input leaves, so there is
    // almost no converged-region waste for freezing to reclaim against
    // the union-sweep overhead of the hot phase. The trade buys the
    // ALS/GLM/MLR flips (tens of thousands of candidate visits each)
    // at the cost of a few hundred visits here.
    assert!(
        fewer_candidates >= 4,
        "acceptance: one-pass saturation must do less total rule-matching work \
         (candidates_visited) than the per-statement sum on ≥ 4 of the 5 §4.2 \
         workloads, got {fewer_candidates}"
    );
    for required in ["GLM", "PNMF"] {
        assert!(
            winners.contains(&required),
            "acceptance: {required} (a PR-3 workload-mode regression) must be a \
             one-pass win, winners: {winners:?}"
        );
    }
    // Wall-time acceptance: less matching work must show up on the
    // clock too. One-pass must land within 1.1× of the per-statement
    // sum on ≥ 4 of 5 workloads (best-of-two runs each, damping
    // scheduler noise). SVM is again the expected holdout: it does
    // ~17% more matching work one-pass (see above), so its wall time
    // trails by the same margin.
    assert!(
        wall_ok >= 4,
        "acceptance: one-pass wall time must be within {WALL_SLACK}x of the \
         per-statement sum on ≥ 4 of the 5 §4.2 workloads, got {wall_ok}"
    );
    scaling_guard();
    telemetry_guard(parallel);
    println!(
        "workload smoke OK: one-pass matching work wins on {fewer_candidates}/5, wall time within {WALL_SLACK}x on {wall_ok}/5 (bar: 4 each, candidates incl. GLM+PNMF) at {} search threads",
        parallel.threads
    );
}

/// Wall time of one ALS pass with parallel search vs serial. Skipped on
/// single-core hosts, where "parallel" timings only measure the fan-out
/// overhead (the footgun the snapshot's `host_cores` field documents).
fn scaling_guard() {
    let cores = host_cores();
    if cores == 1 {
        println!(
            "workload smoke: SKIP thread-scaling assertion: host_cores == 1, \
             multi-thread wall time would only measure fan-out overhead, not scaling"
        );
        return;
    }
    let bundle = workload_bundle(&workloads::als(200, 100, 8, 51));
    let serial = ParallelConfig {
        threads: 1,
        ..ParallelConfig::serial()
    };
    let threads = cores.min(4);
    let fanned = ParallelConfig {
        threads,
        ..ParallelConfig::serial()
    };
    let (serial_ns, _) = min_of_two(|| run_shared(&bundle, serial));
    let (fanned_ns, _) = min_of_two(|| run_shared(&bundle, fanned));
    assert!(
        (fanned_ns as f64) <= (serial_ns as f64) * SCALING_SLACK,
        "acceptance: ALS one-pass at {threads} search threads took {fanned_ns} ns vs \
         {serial_ns} ns serial — more than {SCALING_SLACK}x on a {cores}-core host"
    );
    println!(
        "workload smoke: ALS thread scaling OK: {threads} threads {fanned_ns} ns vs serial {serial_ns} ns ({cores} host cores)"
    );
}

/// Telemetry overhead guard on the ALS one-pass: enabled collection must
/// cost ≤ 10% end-to-end, and the disabled hooks (the permanent cost
/// every build pays) an estimated ≤ 2%.
fn telemetry_guard(parallel: ParallelConfig) {
    let bundle = workload_bundle(&workloads::als(200, 100, 8, 51));
    // The enabled run goes through `OptimizerConfig::telemetry` like a
    // real caller would.
    let mut cfg = workload_optimizer_config();
    cfg.parallel = parallel;
    cfg.telemetry = true;
    // Interleave off/on runs and take the min of three each: a slow
    // system phase (this can run on a loaded single-core CI box) then
    // hits both sides instead of skewing whichever was measured second.
    let mut off_ns = u64::MAX;
    let mut on_ns = u64::MAX;
    const ROUNDS: usize = 3;
    for _ in 0..ROUNDS {
        spores_telemetry::set_enabled(false);
        let t0 = Instant::now();
        black_box(run_shared(&bundle, parallel));
        off_ns = off_ns.min(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        black_box(
            Optimizer::new(cfg.clone())
                .optimize_workload(&bundle.expr, &bundle.vars)
                .expect("workload optimizes"),
        );
        on_ns = on_ns.min(t0.elapsed().as_nanos() as u64);
    }
    spores_telemetry::set_enabled(false);
    let events = spores_telemetry::drain();
    spores_telemetry::global().registry().zero();
    let per_run_events = (events.len() / ROUNDS).max(1) as f64;
    assert!(
        (on_ns as f64) <= (off_ns as f64) * TELEMETRY_ON_SLACK,
        "acceptance: ALS one-pass with telemetry enabled took {on_ns} ns vs {off_ns} ns \
         disabled — more than {TELEMETRY_ON_SLACK}x"
    );
    // Disabled overhead can't be measured against a hook-free build from
    // inside this binary; estimate it as the micro-benchmarked cost of
    // one disabled hook (a relaxed load + branch) times the hook volume
    // the enabled run actually recorded (each span is one hook firing
    // two events, so events/2 undercounts by the unrecorded counter
    // hooks — the /2 and the uncounted sites roughly cancel; the 2%
    // budget has orders of magnitude of headroom regardless).
    let hook_ns = disabled_hook_cost_ns();
    let est_ns = hook_ns * per_run_events;
    assert!(
        est_ns <= (off_ns as f64) * TELEMETRY_OFF_BUDGET,
        "acceptance: estimated disabled-telemetry overhead {est_ns:.0} ns \
         ({per_run_events:.0} hooks × {hook_ns:.2} ns) exceeds {TELEMETRY_OFF_BUDGET:.0?} \
         of the {off_ns} ns off wall time"
    );
    println!(
        "workload smoke: ALS telemetry overhead OK: enabled {on_ns} ns vs disabled {off_ns} ns \
         (bar {TELEMETRY_ON_SLACK}x); disabled hooks ≈ {est_ns:.0} ns \
         ({per_run_events:.0} hooks × {hook_ns:.2} ns, budget {:.0} ns)",
        (off_ns as f64) * TELEMETRY_OFF_BUDGET
    );
}

/// Micro-benchmark one disabled `span!` hook: the relaxed atomic load +
/// branch every instrumented site pays when collection is off.
fn disabled_hook_cost_ns() -> f64 {
    const N: u64 = 1_000_000;
    spores_telemetry::set_enabled(false);
    let t0 = Instant::now();
    for i in 0..N {
        let s = spores_telemetry::span!("bench.disabled.hook", i = black_box(i));
        black_box(&s);
    }
    t0.elapsed().as_nanos() as f64 / N as f64
}

/// ALS one-pass wall time at 1/2/4/8 search threads (best of two runs
/// each), mirroring `BENCH_service.json`'s `warm_scaling` table.
fn thread_scaling() -> Vec<(usize, u64)> {
    let bundle = workload_bundle(&workloads::als(200, 100, 8, 51));
    [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let parallel = ParallelConfig {
                threads,
                ..ParallelConfig::serial()
            };
            let (ns, _) = min_of_two(|| run_shared(&bundle, parallel));
            (threads, ns)
        })
        .collect()
}

/// Write the `BENCH_workload.json` snapshot to the repo root.
fn emit_snapshot(parallel: ParallelConfig) {
    let rows = smoke_rows(parallel);
    let mut entries = Vec::new();
    for row in &rows {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"statements\": {},\n",
                "      \"one_pass_ns\": {},\n",
                "      \"per_statement_ns\": {},\n",
                "      \"one_pass_candidates\": {},\n",
                "      \"per_statement_candidates\": {},\n",
                "      \"one_pass_dag_cost\": {:.0}\n",
                "    }}"
            ),
            row.name,
            row.statements,
            row.shared_ns,
            row.per_statement_ns,
            row.shared_candidates,
            row.per_statement_candidates,
            row.shared_cost,
        ));
    }
    let scaling: Vec<String> = thread_scaling()
        .iter()
        .map(|&(threads, ns)| format!("    {{ \"threads\": {threads}, \"one_pass_ns\": {ns} }}"))
        .collect();
    // `host_cores` qualifies the scaling table: on a 1-core host the
    // multi-thread rows measure fan-out overhead, not scaling.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"workload/one_pass_vs_per_statement\",\n",
            "  \"host_cores\": {},\n",
            "  \"parallel\": {{ \"threads\": {}, \"min_shard_size\": {} }},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"als_thread_scaling\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cores(),
        parallel.threads,
        parallel.min_shard_size,
        entries.join(",\n"),
        scaling.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workload.json");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let mut parallel = ParallelConfig::default();
    if let Some(ix) = args.iter().position(|a| a == "--threads") {
        parallel.threads = args
            .get(ix + 1)
            .and_then(|s| s.parse().ok())
            .expect("--threads takes a positive integer");
    }
    if has("--smoke") {
        smoke(parallel);
        return;
    }
    if has("--snapshot") || has("--snapshot-only") {
        emit_snapshot(parallel);
    }
    if has("--snapshot-only") {
        return;
    }
    benches();
}
